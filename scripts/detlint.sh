#!/bin/bash
# Runs the workspace determinism linter (crates/detlint, DESIGN.md §11,
# §16) over the live tree. Exit 0 means no violations (stale-suppression
# warnings are exit-0); exit 1 lists rustc-style diagnostics; exit 2 is a
# usage/IO failure.
#
# Extra flags are passed straight through, e.g.:
#   ./scripts/detlint.sh --json          machine-readable report
#   ./scripts/detlint.sh --list-allows   audit every suppression + reason
set -e
cd "$(dirname "$0")/.."
cargo run -q --release -p totoro-detlint -- "$@"
# Bare runs also guard the JSON artifact schema: CI's detlint job consumes
# the per-rule `rule_counts` summary block, so its disappearance must fail
# the script, not silently produce a schema-less artifact.
if [ "$#" -eq 0 ]; then
  cargo run -q --release -p totoro-detlint -- --json | grep -q '"rule_counts"'
fi
