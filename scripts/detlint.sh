#!/bin/bash
# Runs the workspace determinism linter (crates/detlint, DESIGN.md §11)
# over the live tree. Exit 0 means no violations; exit 1 lists rustc-style
# diagnostics; exit 2 is a usage/IO failure.
#
# Extra flags are passed straight through, e.g.:
#   ./scripts/detlint.sh --json          machine-readable report
#   ./scripts/detlint.sh --list-allows   audit every suppression + reason
set -e
cd "$(dirname "$0")/.."
cargo run -q --release -p totoro-detlint -- "$@"
