#!/usr/bin/env bash
# Guards the simulator hot path against observability overhead: a fresh
# simcore run (NoopSink — tracing statically compiled out) must stay
# within TOLERANCE_PCT of the committed BENCH_simcore.json events/sec on
# every workload. Usage:
#
#   scripts/check_simcore_guard.sh FRESH.json... [BASELINE.json]
#
# Multiple FRESH files may be given (repeat runs); the best rate per
# workload is compared, which keeps the guard stable on noisy machines.
# The last argument is taken as the baseline when more than one file is
# given and it differs from the first; otherwise BENCH_simcore.json.
# TOLERANCE_PCT defaults to 5 (the PR-4 acceptance bound).
#
# On top of the relative floors, `timer_storm` must clear an absolute
# rate: the timer-wheel queue landed at >=8M events/sec (vs ~3.45M on the
# reference heap), and TIMER_STORM_FLOOR (default 8000000) pins that so
# the wheel can never silently degrade back to heap-era throughput while
# staying within the 5%-per-PR ratchet.
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: check_simcore_guard.sh FRESH.json... [BASELINE.json]" >&2
  exit 2
fi
if [ "$#" -ge 2 ]; then
  fresh=("${@:1:$#-1}")
  baseline="${!#}"
else
  fresh=("$1")
  baseline="BENCH_simcore.json"
fi
tolerance="${TOLERANCE_PCT:-5}"

# Extracts `name events_per_sec` pairs from a simcore JSON file.
rates() {
  sed -n 's/.*"name":"\([a-z0-9_]*\)".*"events_per_sec":\([0-9]*\).*/\1 \2/p' "$1"
}

# Best observed rate for a workload across all fresh files.
best_fresh() {
  local name="$1" f
  for f in "${fresh[@]}"; do rates "$f"; done |
    awk -v n="$name" '$1 == n { print $2 }' | sort -n | tail -1
}

fail=0
while read -r name base_rate; do
  fresh_rate=$(best_fresh "$name")
  if [ -z "$fresh_rate" ]; then
    echo "FAIL $name: missing from ${fresh[*]}"
    fail=1
    continue
  fi
  ok=$(awk -v f="$fresh_rate" -v b="$base_rate" -v t="$tolerance" \
    'BEGIN { print (f >= b * (1 - t / 100)) ? 1 : 0 }')
  delta=$(awk -v f="$fresh_rate" -v b="$base_rate" \
    'BEGIN { printf "%+.1f", (f / b - 1) * 100 }')
  if [ "$ok" = 1 ]; then
    echo "ok   $name: $fresh_rate ev/s vs baseline $base_rate (${delta}%)"
  else
    echo "FAIL $name: $fresh_rate ev/s vs baseline $base_rate (${delta}%, tolerance -${tolerance}%)"
    fail=1
  fi
done < <(rates "$baseline" | grep -v '^million_node')
# million_node_s* rates are excluded from the relative floors above: they
# time a threaded sweep, so their events/sec depends on the host's core
# count, not just the code. They get their own machine-independent checks
# below (memory ceiling always; speedup floor only on multi-core hosts).

# Absolute floor for the timer wheel's flagship workload.
floor="${TIMER_STORM_FLOOR:-8000000}"
ts_rate=$(best_fresh "timer_storm")
if [ -z "$ts_rate" ]; then
  echo "FAIL timer_storm: missing from ${fresh[*]} (absolute floor unchecked)"
  fail=1
elif [ "$ts_rate" -lt "$floor" ]; then
  echo "FAIL timer_storm: $ts_rate ev/s below absolute floor $floor"
  fail=1
else
  echo "ok   timer_storm: $ts_rate ev/s clears absolute floor $floor"
fi

# million_node memory diet: per-node simulator state is deterministic
# (heap reservations, not wall-clock), so the ceiling holds on any host.
bytes_ceiling="${MILLION_NODE_BYTES_CEILING:-640}"
mn_bytes=$(for f in "${fresh[@]}"; do
  sed -n 's/.*"name":"million_node_s1".*"state_bytes_per_node":\([0-9]*\).*/\1/p' "$f"
done | sort -n | tail -1)
if [ -z "$mn_bytes" ]; then
  echo "FAIL million_node_s1: state_bytes_per_node missing from ${fresh[*]}"
  fail=1
elif [ "$mn_bytes" -gt "$bytes_ceiling" ]; then
  echo "FAIL million_node_s1: $mn_bytes bytes/node above ceiling $bytes_ceiling"
  fail=1
else
  echo "ok   million_node_s1: $mn_bytes bytes/node within ceiling $bytes_ceiling"
fi

# million_node shard-sweep speedup: only meaningful when the host can run
# the shards in parallel, so the floor is enforced on >=4-core hosts and
# reported (but not enforced) elsewhere. The key itself must exist: its
# absence means the sweep silently stopped running.
speedup_floor="${MILLION_NODE_SPEEDUP_FLOOR:-1.5}"
mn_speedup=$(for f in "${fresh[@]}"; do
  sed -n 's/.*"million_node_speedup_[0-9]*_over_1": \([0-9.]*\).*/\1/p' "$f"
done | sort -n | tail -1)
host_cores=$(sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p' "${fresh[0]}")
if [ -z "$mn_speedup" ]; then
  echo "FAIL million_node: speedup key missing from ${fresh[*]}"
  fail=1
elif [ "${host_cores:-1}" -lt 4 ]; then
  echo "ok   million_node: speedup ${mn_speedup}x (floor ${speedup_floor}x not enforced on ${host_cores:-1}-core host)"
else
  su_ok=$(awk -v s="$mn_speedup" -v f="$speedup_floor" 'BEGIN { print (s >= f) ? 1 : 0 }')
  if [ "$su_ok" = 1 ]; then
    echo "ok   million_node: speedup ${mn_speedup}x clears floor ${speedup_floor}x"
  else
    echo "FAIL million_node: speedup ${mn_speedup}x below floor ${speedup_floor}x"
    fail=1
  fi
fi

# Engine self-profile sanity: fresh runs must carry the deterministic
# profile block, and its batched-delivery singleton ratio must be a real
# ratio. A value outside 0..=1 (or a missing block) means the profiling
# counters desynced from the event loop.
ratio=$(sed -n 's/.*"engine_profile":.*"singleton_ratio":\([0-9.]*\).*/\1/p' "${fresh[0]}")
if [ -z "$ratio" ]; then
  echo "FAIL engine_profile: batch.singleton_ratio missing from ${fresh[0]}"
  fail=1
else
  ratio_ok=$(awk -v r="$ratio" 'BEGIN { print (r >= 0 && r <= 1) ? 1 : 0 }')
  if [ "$ratio_ok" = 1 ]; then
    echo "ok   engine_profile: singleton_ratio $ratio within 0..=1"
  else
    echo "FAIL engine_profile: singleton_ratio $ratio outside 0..=1"
    fail=1
  fi
fi

if [ "$fail" != 0 ]; then
  echo "simcore guard failed: hot-path throughput regressed beyond ${tolerance}%"
  exit 1
fi
echo "simcore guard passed (tolerance ${tolerance}%)"
