#!/bin/bash
# Regenerates every table and figure of the paper's evaluation (§7) plus
# the in-network-aggregation ablation, writing one report per artifact
# into results/. Build first: cargo build --release --workspace
set -ex
cd "$(dirname "$0")/.."
mkdir -p results
B=target/release
$B/fig5_scalability       > results/fig5.txt    2>&1
$B/fig6_dissemination     > results/fig6.txt    2>&1
$B/fig7_traffic           > results/fig7.txt    2>&1
$B/table3_speedup         > results/table3.txt  2>&1
$B/fig8_fig9_tta --dataset speech  --apps 1,5,10,20 > results/fig8.txt 2>&1
$B/fig8_fig9_tta --dataset femnist --apps 1,5,10,20 > results/fig9.txt 2>&1
$B/fig10_regret           > results/fig10.txt   2>&1
$B/fig11_path_freq        > results/fig11.txt   2>&1
$B/fig12_recovery         > results/fig12.txt   2>&1
$B/fig13_overhead         > results/fig13.txt   2>&1
$B/ablation_aggregation   > results/ablation.txt 2>&1
echo ALL-EXPERIMENTS-DONE
