#!/bin/bash
# Regenerates every table and figure of the paper's evaluation (§7) plus
# the in-network-aggregation ablation, writing one report per artifact
# into results/. Build first: cargo build --release --workspace
#
# JOBS controls the per-scenario worker count (independent trials run in
# parallel; output is bit-identical regardless): JOBS=8 ./run_all_experiments.sh
set -ex
cd "$(dirname "$0")/.."
# Preflight: refuse to burn hours of simulation on a tree that violates
# the static determinism contract (DESIGN.md §11).
./scripts/detlint.sh
mkdir -p results
B=target/release/totoro-bench
JOBS="${JOBS:-$(nproc)}"
$B fig5     --jobs "$JOBS" > results/fig5.txt    2>&1
$B fig6     --jobs "$JOBS" > results/fig6.txt    2>&1
$B fig7     --jobs "$JOBS" > results/fig7.txt    2>&1
$B table3   --jobs "$JOBS" > results/table3.txt  2>&1
$B fig8     --jobs "$JOBS" --apps 1,5,10,20 > results/fig8.txt 2>&1
$B fig9     --jobs "$JOBS" --apps 1,5,10,20 > results/fig9.txt 2>&1
$B fig10    --jobs "$JOBS" > results/fig10.txt   2>&1
$B fig11    --jobs "$JOBS" > results/fig11.txt   2>&1
$B fig12    --jobs "$JOBS" > results/fig12.txt   2>&1
$B fig13    --jobs "$JOBS" > results/fig13.txt   2>&1
$B ablation --jobs "$JOBS" > results/ablation.txt 2>&1
echo ALL-EXPERIMENTS-DONE
