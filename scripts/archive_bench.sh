#!/usr/bin/env bash
# Archives a simcore benchmark JSON as a timestamped snapshot so the perf
# trajectory accumulates per commit instead of overwriting one file.
#
#   scripts/archive_bench.sh [SRC.json] [DEST_DIR]
#
# Defaults: SRC = BENCH_simcore.json, DEST_DIR = results/bench_history.
# The snapshot name embeds the UTC timestamp and the current git short
# SHA (or "nogit" outside a checkout), e.g.
# results/bench_history/simcore_20260809T120000Z_98b20ad.json.
set -euo pipefail

src="${1:-BENCH_simcore.json}"
dest_dir="${2:-results/bench_history}"

if [ ! -s "$src" ]; then
  echo "archive_bench: $src missing or empty" >&2
  exit 1
fi

sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
stamp=$(date -u +%Y%m%dT%H%M%SZ)
mkdir -p "$dest_dir"
dest="$dest_dir/simcore_${stamp}_${sha}.json"
cp "$src" "$dest"
echo "archive_bench: archived $src -> $dest"
