//! Workspace-level integration test crate: all tests live in `tests/`.

#![forbid(unsafe_code)]
