//! Cross-crate tests of the benchmark trial engine: the `Scenario` API must
//! produce byte-identical results no matter how trials are scheduled.
//!
//! These drive *real* scenarios (at deliberately tiny parameter points, so
//! they stay fast in debug builds) rather than synthetic ones — the point is
//! to catch nondeterminism anywhere in the stack underneath a scenario
//! (simulator, DHT, forest, ML), not just in the worker pool.

use totoro_bench::scenario::{execute, run_trials, Params, Scenario};
use totoro_bench::scenarios;

/// A tiny fig13 parameter point: two trials (totoro + openfl), each a full
/// deploy-train-report cycle, in well under a second.
fn tiny_fig13() -> (Box<dyn Scenario>, Params) {
    let scenario = scenarios::find("fig13").expect("fig13 registered");
    let mut params = scenario.default_params();
    params.nodes = 6;
    params.extra.push(("samples".into(), "20".into()));
    params.extra.push(("rounds".into(), "4".into()));
    (scenario, params)
}

/// A tiny fig11 parameter point: four path-planning trials.
fn tiny_fig11() -> (Box<dyn Scenario>, Params) {
    let scenario = scenarios::find("fig11").expect("fig11 registered");
    let mut params = scenario.default_params();
    params.extra.push(("packets".into(), "60".into()));
    params.extra.push(("runs".into(), "2".into()));
    (scenario, params)
}

#[test]
fn registry_names_are_unique_and_resolvable() {
    let all = scenarios::all();
    // Eleven evaluation artifacts plus the `simcore` perf baseline and the
    // chaos sweep.
    assert_eq!(all.len(), 13, "all registered scenarios present");
    let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 13, "scenario names are unique");
    for name in names {
        assert!(scenarios::find(name).is_some(), "find({name}) resolves");
    }
    assert!(scenarios::find("no-such-figure").is_none());
}

#[test]
fn same_trial_run_twice_is_byte_identical() {
    let (scenario, params) = tiny_fig13();
    for trial in scenario.trials(&params) {
        let a = scenario.run(&trial).to_json();
        let b = scenario.run(&trial).to_json();
        assert_eq!(a, b, "trial {} reruns bit-identically", trial.label());
    }
}

#[test]
fn worker_count_does_not_change_rendered_output() {
    let (scenario, params) = tiny_fig13();
    let serial = execute(scenario.as_ref(), &params);
    let mut parallel = params.clone();
    parallel.jobs = 4;
    let threaded = execute(scenario.as_ref(), &parallel);
    assert_eq!(serial, threaded, "--jobs 1 and --jobs 4 render identically");
}

#[test]
fn worker_count_does_not_change_json_output() {
    let (scenario, params) = tiny_fig11();
    let mut serial = params.clone();
    serial.json = true;
    let mut parallel = serial.clone();
    parallel.jobs = 3;
    assert_eq!(
        execute(scenario.as_ref(), &serial),
        execute(scenario.as_ref(), &parallel),
        "serialized sweep is byte-identical across worker counts"
    );
}

#[test]
fn merged_sweep_preserves_trial_order() {
    let (scenario, params) = tiny_fig11();
    let trials = totoro_bench::scenario::Trial::seal(scenario.trials(&params));
    assert!(trials.len() >= 3, "sweep has enough trials to interleave");
    let reports = run_trials(scenario.as_ref(), &trials, 3);
    assert_eq!(reports.len(), trials.len());
    for (i, (report, trial)) in reports.iter().zip(&trials).enumerate() {
        assert_eq!(report.index, i, "report {i} sits at its trial's slot");
        assert_eq!(report.setup, trial.setup, "report {i} matches its trial");
    }
}
