//! Workspace-level tests of the chaos harness: determinism of a full
//! chaos trial, live invariant checking over a churn plan, and the
//! planted-bug drill (the oracle must catch it and shrinking must reduce
//! the plan to a minimal fault set).

use totoro_bench::chaos::{run_chaos_trial, shrink, BugKind, ChaosOutcome, ChaosSpec};

fn spec(plan: &str, nodes: usize, seed: u64, bug: Option<BugKind>) -> ChaosSpec {
    ChaosSpec {
        nodes,
        trees: 2,
        plan: plan.to_string(),
        seed,
        bug,
    }
}

/// Everything a trial reports, flattened for equality comparison.
fn fingerprint(o: &ChaosOutcome) -> (String, Vec<String>, u64, u64, u64, u64, u64, u64) {
    (
        format!("{:?}", o.violations),
        o.atoms.clone(),
        o.rounds,
        o.sim.events,
        o.sim.dropped(),
        o.chaos.dropped,
        o.chaos.duplicated,
        o.chaos.delayed,
    )
}

#[test]
fn chaos_trial_is_deterministic_and_clean() {
    let s = spec("loss-spike", 60, 7, None);
    let a = run_chaos_trial(&s, None);
    let b = run_chaos_trial(&s, None);
    assert_eq!(fingerprint(&a), fingerprint(&b), "trial is not replayable");
    assert!(
        a.violations.is_empty(),
        "loss-spike plan violated an invariant: {:?}",
        a.violations
    );
    assert!(a.rounds > 0, "the driver never broadcast a round");
    assert!(
        a.chaos.dropped > 0,
        "the loss spike never dropped a message"
    );
}

#[test]
fn churn_plan_passes_live_and_quiescent_invariants() {
    // The churn+stragglers plan downs real subscribers mid-round and
    // revives them; the six oracles — aggregation conservation, DHT
    // consistency, rendezvous uniqueness, forest structure, bounded
    // recovery, and repair quiescence — must all stay green, live at every
    // checkpoint and after the quiescence settle.
    let outcome = run_chaos_trial(&spec("churn+stragglers", 60, 3, None), None);
    assert!(
        outcome.violations.is_empty(),
        "churn plan violated an invariant: {:?}",
        outcome.violations
    );
    assert!(
        outcome.atoms.iter().any(|a| a.contains("churn")),
        "plan lost its churn atoms: {:?}",
        outcome.atoms
    );
}

#[test]
fn planted_bug_is_caught_and_shrunk_to_a_minimal_plan() {
    // Drill for the whole pipeline: plant a repair-JOIN-dropping bug, let
    // the churn plan trigger it, and check an oracle fires. The same spec
    // without the bug is clean, so the oracles are blaming the bug, not
    // the faults. Shrinking must then cut the plan to at most two atoms.
    let buggy = spec("churn+stragglers", 80, 1, Some(BugKind::DropRepairJoin));
    let outcome = run_chaos_trial(&buggy, None);
    assert!(
        !outcome.violations.is_empty(),
        "the planted bug went undetected"
    );

    let clean = run_chaos_trial(&spec("churn+stragglers", 80, 1, None), None);
    assert!(
        clean.violations.is_empty(),
        "control run without the bug is not clean: {:?}",
        clean.violations
    );

    let shrunk = shrink(&buggy);
    assert!(
        !shrunk.atoms.is_empty() && shrunk.atoms.len() <= 2,
        "shrink did not minimize: {} atoms left ({:?})",
        shrunk.atoms.len(),
        shrunk.atoms
    );
    assert!(
        shrunk.runs > 1,
        "shrink claims minimality without re-running trials"
    );
}
