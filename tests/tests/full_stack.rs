//! Cross-crate integration tests: the complete Totoro stack versus the
//! centralized baselines, zone isolation end-to-end, and the bandit planner
//! plugged into realistic link statistics.

use std::sync::Arc;

use totoro::{FlAppConfig, TotoroDeployment};
use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_dht::{ids_for_zones, DhtConfig};
use totoro_ml::{text_classification_like, AggregationRule, TaskGenerator};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{assign_zones, sub_rng, BinningConfig, SimTime, Topology};

const HOUR: u64 = 3_600 * 1_000_000;

/// Identical workloads on Totoro and on a centralized engine must produce
/// comparable model quality — the architectures differ, not the learning.
#[test]
fn totoro_and_centralized_reach_similar_accuracy() {
    let n = 20;
    let seed = 31;
    let mut rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let test_set = Arc::new(generator.test_set(300, &mut rng));

    let mk_cfg = |test_set: &Arc<totoro_ml::Dataset>| {
        let mut cfg = FlAppConfig::new(
            "parity",
            vec![generator.spec.dim, 32, generator.spec.classes],
            Arc::clone(test_set),
        );
        cfg.target_accuracy = 2.0;
        cfg.max_rounds = 8;
        cfg.seed = 99;
        cfg
    };

    // Totoro.
    let mut shard_rng = sub_rng(seed, "shards");
    let shards = generator.client_shards(n, 40, 0.5, &mut shard_rng);
    let mut deploy = TotoroDeployment::new(
        Topology::uniform(n, 1_000, 5_000),
        seed,
        DhtConfig::default(),
        ForestConfig::default(),
    );
    let app = deploy.submit_app(mk_cfg(&test_set), &(0..n).collect::<Vec<_>>(), shards);
    deploy.run(SimTime::from_micros(HOUR));
    let totoro_best = deploy
        .curve(app)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);

    // Centralized.
    let mut shard_rng = sub_rng(seed, "shards");
    let shards = generator.client_shards(n, 40, 0.5, &mut shard_rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n + 1, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        seed,
    );
    let cfg = mk_cfg(&test_set);
    let spec = totoro_baselines::AppSpec {
        name: cfg.name.clone(),
        model_dims: cfg.model_dims.clone(),
        aggregation: AggregationRule::FedAvg,
        local_epochs: cfg.local_epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        target_accuracy: cfg.target_accuracy,
        max_rounds: cfg.max_rounds,
        test_set: Arc::clone(&cfg.test_set),
        seed: cfg.seed,
    };
    let capp = engine.submit_app(spec, &(1..=n).collect::<Vec<_>>(), shards);
    engine.run(SimTime::from_micros(HOUR));
    let central_best = engine
        .server()
        .curve(capp)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);

    assert!(totoro_best > 0.7, "totoro best {totoro_best}");
    assert!(central_best > 0.7, "central best {central_best}");
    assert!(
        (totoro_best - central_best).abs() < 0.15,
        "architectures diverged in quality: totoro {totoro_best} vs central {central_best}"
    );
}

/// With more concurrent apps, Totoro's completion time stays nearly flat
/// while the centralized engine's grows — the paper's core systems claim.
#[test]
fn totoro_scales_flatter_than_centralized() {
    let n = 16;
    let seed = 32;
    let rounds = 4;
    let mut rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);

    let totoro_time = |apps: usize| -> f64 {
        let mut deploy = TotoroDeployment::new(
            Topology::uniform(n, 1_000, 5_000),
            seed,
            DhtConfig::default(),
            ForestConfig::default(),
        );
        let mut rng = sub_rng(seed, "shards");
        for a in 0..apps {
            let shards = generator.client_shards(n, 30, 0.5, &mut rng);
            let mut cfg = FlAppConfig::new(
                &format!("flat-{a}"),
                vec![generator.spec.dim, 24, generator.spec.classes],
                Arc::new(generator.test_set(150, &mut rng)),
            );
            cfg.salt = a as u64;
            cfg.target_accuracy = 2.0;
            cfg.max_rounds = rounds;
            deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
        }
        deploy.run(SimTime::from_micros(HOUR));
        (0..apps)
            .filter_map(|a| deploy.curve(a).last().map(|p| p.time_secs))
            .fold(0.0, f64::max)
    };

    let central_time = |apps: usize| -> f64 {
        let mut engine = CentralizedEngine::new(
            Topology::uniform(n + 1, 1_000, 5_000),
            ServerProfile::openfl_like(),
            seed,
        );
        let mut rng = sub_rng(seed, "shards");
        for a in 0..apps {
            let shards = generator.client_shards(n, 30, 0.5, &mut rng);
            let spec = totoro_baselines::AppSpec {
                name: format!("flat-{a}"),
                model_dims: vec![generator.spec.dim, 24, generator.spec.classes],
                aggregation: AggregationRule::FedAvg,
                local_epochs: 1,
                batch_size: 20,
                lr: 0.1,
                target_accuracy: 2.0,
                max_rounds: rounds,
                test_set: Arc::new(generator.test_set(150, &mut rng)),
                seed: 1_000 + a as u64,
            };
            engine.submit_app(spec, &(1..=n).collect::<Vec<_>>(), shards);
        }
        engine.run(SimTime::from_micros(HOUR));
        let server = engine.server();
        (0..apps)
            .filter_map(|a| server.curve(a).last().map(|p| p.time_secs))
            .fold(0.0, f64::max)
    };

    let t1 = totoro_time(1);
    let t6 = totoro_time(6);
    let c1 = central_time(1);
    let c6 = central_time(6);
    let totoro_growth = t6 / t1.max(1e-9);
    let central_growth = c6 / c1.max(1e-9);
    assert!(totoro_growth < 2.0, "totoro not flat: {t1:.0}s -> {t6:.0}s");
    assert!(
        central_growth > 1.5 * totoro_growth,
        "centralized should queue: totoro x{totoro_growth:.2} vs central x{central_growth:.2}"
    );
}

/// Administrative isolation end-to-end: a zone-restricted FL application
/// trains entirely within its home zone while a global app spans zones.
#[test]
fn zone_restricted_training_never_leaves_home() {
    let n = 60;
    let seed = 33;
    let zone_bits = 4;
    let topology = Topology::uniform(n, 1_000, 5_000);
    let mut rng = sub_rng(seed, "zones");
    // Two synthetic zones split by index (binning needs geography; here we
    // assign directly to keep the test focused on routing isolation).
    let zones: Vec<u16> = (0..n).map(|i| u16::from(i >= n / 2)).collect();
    let ids = ids_for_zones(&zones, zone_bits, &mut rng);

    let mut deploy = TotoroDeployment::with_ids(
        topology,
        seed,
        DhtConfig {
            zone_bits,
            ..DhtConfig::default()
        },
        ForestConfig {
            zone_restricted: true,
            ..ForestConfig::default()
        },
        ids,
    );
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let home: Vec<usize> = (0..n / 2).collect();
    let shards = generator.client_shards(home.len(), 40, 0.5, &mut rng);
    let mut cfg = FlAppConfig::new(
        "regional",
        vec![generator.spec.dim, 24, generator.spec.classes],
        Arc::new(generator.test_set(150, &mut rng)),
    );
    cfg.zone_restricted = true;
    cfg.home_zone = Some((0, zone_bits));
    cfg.target_accuracy = 2.0;
    cfg.max_rounds = 5;
    let app = deploy.submit_app(cfg, &home, shards);
    deploy.run(SimTime::from_micros(HOUR));

    assert_eq!(
        deploy.curve(app).last().map(|p| p.round),
        Some(5),
        "restricted app failed to train"
    );
    // Nothing tree-related ever landed on a foreign-zone node.
    let topic = deploy.config(app).app_id();
    for i in n / 2..n {
        assert!(
            deploy.sim().app(i).upper.state.membership(topic).is_none(),
            "foreign node {i} touched the restricted tree"
        );
    }
    // The master is a home-zone node.
    let master = deploy.master_of(app).expect("master exists");
    assert!(master < n / 2, "master {master} is foreign");
}

/// Distributed binning + multi-ring ids + FL: an end-to-end geographic run.
#[test]
fn geographic_multi_ring_deployment_trains() {
    let seed = 34;
    let mut rng = sub_rng(seed, "geo");
    let nodes = totoro_simnet::geo::generate(&totoro_simnet::geo::eua_regions_scaled(80), &mut rng);
    let topology = Topology::from_placements(
        &nodes,
        totoro_simnet::LatencyModel::Geo {
            base_us: 500,
            per_km_us: 5.0,
        },
    );
    let n = topology.len();
    let zones = assign_zones(&topology, &BinningConfig::default(), &mut rng);
    let ids = ids_for_zones(&zones.zone_of, 4, &mut rng);
    let mut deploy = TotoroDeployment::with_ids(
        topology,
        seed,
        DhtConfig {
            zone_bits: 4,
            ..DhtConfig::default()
        },
        ForestConfig::default(),
        ids,
    );
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 30, 0.5, &mut rng);
    let mut cfg = FlAppConfig::new(
        "geo-app",
        vec![generator.spec.dim, 24, generator.spec.classes],
        Arc::new(generator.test_set(150, &mut rng)),
    );
    cfg.target_accuracy = 0.8;
    cfg.max_rounds = 20;
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
    deploy.run(SimTime::from_micros(HOUR));
    let best = deploy
        .curve(app)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);
    assert!(best >= 0.8, "geo deployment best accuracy {best}");
}

/// Secure aggregation composes with the multi-ring zone restriction: a
/// regional medical app trains privately inside its zone.
#[test]
fn secure_aggregation_inside_a_restricted_zone() {
    let n = 40;
    let seed = 35;
    let zone_bits = 4;
    let mut rng = sub_rng(seed, "zones");
    let zones: Vec<u16> = (0..n).map(|i| u16::from(i >= n / 2)).collect();
    let ids = ids_for_zones(&zones, zone_bits, &mut rng);
    let mut deploy = TotoroDeployment::with_ids(
        Topology::uniform(n, 1_000, 5_000),
        seed,
        DhtConfig {
            zone_bits,
            ..DhtConfig::default()
        },
        ForestConfig {
            zone_restricted: true,
            ..ForestConfig::default()
        },
        ids,
    );
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let home: Vec<usize> = (0..n / 2).collect();
    let shards = generator.client_shards(home.len(), 50, 0.5, &mut rng);
    let mut cfg = FlAppConfig::new(
        "regional-private",
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(200, &mut rng)),
    );
    cfg.zone_restricted = true;
    cfg.home_zone = Some((0, zone_bits));
    cfg.privacy = totoro_ml::Privacy::SecureAggregation;
    cfg.target_accuracy = 0.85;
    cfg.max_rounds = 25;
    let app = deploy.submit_app(cfg, &home, shards);
    deploy.run(SimTime::from_micros(HOUR));

    let best = deploy
        .curve(app)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);
    assert!(best >= 0.85, "masked regional training failed: {best}");
    // Isolation still holds.
    let topic = deploy.config(app).app_id();
    for i in n / 2..n {
        assert!(
            deploy.sim().app(i).upper.state.membership(topic).is_none(),
            "foreign node {i} touched the private tree"
        );
    }
}

/// The bandit planner's statistics and the DHT's failure detector agree on
/// a flaky environment: replans strictly reduce attachment time to flaky
/// parents versus hard timeouts alone.
#[test]
fn replan_ablation_attaches_faster_than_timeout_only() {
    use totoro_pubsub::{Forest, ForestConfig};

    let run = |replan: Option<f64>| -> u64 {
        let n = 40;
        let fconfig = ForestConfig {
            fanout_cap: 4,
            replan_cost_threshold: replan,
            ..ForestConfig::default()
        };
        let topology = Topology::uniform(n, 1_000, 5_000);
        let (mut sim, _ids) =
            totoro_dht::spawn_overlay(topology, 36, DhtConfig::default(), None, |_i| {
                Forest::new(EchoBlank, fconfig)
            });
        let topic = totoro_dht::app_id("flaky-ablation", "x", 1);
        for i in 0..n {
            // `with_app` silently skips downed nodes; every node is up at
            // subscribe time, so an unnoticed skip here would be a bug.
            sim.with_app(i, |node, ctx| {
                node.with_api(ctx, |forest, dht| {
                    forest.with_forest_api(dht, |_a, api| api.subscribe(topic));
                });
            })
            .expect("all nodes are up at subscribe time");
        }
        sim.run_until(SimTime::from_micros(20 * 1_000_000));
        // Blink an interior node forever.
        let flaky = (0..n)
            .find(|&i| {
                sim.app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| !m.children.is_empty() && !m.is_root)
            })
            .expect("interior node");
        let mut t = 21_000_000u64;
        while t < 200_000_000 {
            sim.schedule_down(flaky, SimTime::from_micros(t));
            sim.schedule_up(flaky, SimTime::from_micros(t + 2_400_000));
            t += 2_800_000;
        }
        sim.run_until(SimTime::from_micros(240 * 1_000_000));
        // Count how many nodes remain glued to the flaky parent.
        (0..n)
            .filter(|&i| {
                sim.app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| m.parent.map(|p| p.addr) == Some(flaky))
            })
            .count() as u64
    };
    let with_replan = run(Some(2.0));
    let without = run(None);
    assert!(
        with_replan <= without,
        "replanning left more nodes on the flaky parent: {with_replan} vs {without}"
    );
}

/// A Totoro deployment keeps training through client churn: downed members
/// contribute nothing while away (the watchdog/timeout path finalizes their
/// rounds without them), and after revival they reattach to the forest and
/// participate again.
#[test]
fn totoro_deployment_survives_mid_training_churn() {
    let n = 20;
    let seed = 37;
    let mut rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 40, 0.5, &mut rng);
    let mut deploy = TotoroDeployment::new(
        Topology::uniform(n, 1_000, 5_000),
        seed,
        DhtConfig::default(),
        ForestConfig {
            // Flush churn-stalled rounds quickly instead of waiting out the
            // default 60 s aggregation timeout.
            agg_timeout: totoro_simnet::SimDuration::from_secs(5),
            ..ForestConfig::default()
        },
    );
    let mut cfg = FlAppConfig::new(
        "churny",
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(200, &mut rng)),
    );
    cfg.target_accuracy = 2.0; // Unreachable: run exactly max_rounds.
    cfg.max_rounds = 20;
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);

    // Let the master elect and the first round land (~2 s cadence), then
    // churn three non-master members out mid-training.
    deploy.sim_mut().run_until(SimTime::from_micros(3_000_000));
    let master = deploy.master_of(app).expect("a master was elected");
    let victims: Vec<usize> = (0..n).filter(|&i| i != master).take(3).collect();
    for &v in &victims {
        deploy
            .sim_mut()
            .schedule_down(v, SimTime::from_micros(5_000_000));
        deploy
            .sim_mut()
            .schedule_up(v, SimTime::from_micros(25_000_000));
    }
    let finished = deploy.run(SimTime::from_micros(HOUR));
    assert!(finished, "churn stalled the deployment");
    assert_eq!(
        deploy.curve(app).last().map(|p| p.round),
        Some(20),
        "not all rounds completed"
    );

    // The revived members are back in the tree, bidirectionally.
    let topic = deploy.config(app).app_id();
    for &v in &victims {
        let m = deploy
            .sim()
            .app(v)
            .upper
            .state
            .membership(topic)
            .expect("membership survives churn");
        assert!(m.attached(), "revived member {v} never reattached");
        if let Some(p) = m.parent.map(|p| p.addr) {
            assert!(deploy.sim().alive(p), "member {v} hangs off a dead parent");
            assert!(
                deploy
                    .sim()
                    .app(p)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|pm| pm.children.iter().any(|c| c.addr == v)),
                "parent {p} does not list revived member {v}"
            );
        }
    }
}

/// Trivial echo app used by the replan ablation.
struct EchoBlank;

impl totoro_pubsub::ForestApp for EchoBlank {
    type Data = BlankData;

    fn on_model(
        &mut self,
        _api: &mut totoro_pubsub::ForestApi<'_, '_, '_, BlankData>,
        _topic: totoro_dht::Id,
        _round: u64,
        _data: &BlankData,
    ) -> Option<(BlankData, totoro_simnet::SimDuration)> {
        None
    }

    fn on_aggregated(
        &mut self,
        _api: &mut totoro_pubsub::ForestApi<'_, '_, '_, BlankData>,
        _topic: totoro_dht::Id,
        _round: u64,
        _data: BlankData,
        _count: u64,
    ) {
    }
}

#[derive(Clone, Debug)]
struct BlankData;

impl totoro_simnet::Payload for BlankData {
    fn size_bytes(&self) -> usize {
        4
    }
}

impl totoro_pubsub::TreeData for BlankData {
    fn combine(&mut self, _other: &Self) {}
}
