//! End-to-end tests of the centralized baseline engine.

use std::sync::Arc;

use totoro_baselines::{AppSpec, CentralizedEngine, ServerProfile};
use totoro_ml::{femnist_like, text_classification_like, AggregationRule, TaskGenerator};
use totoro_simnet::{sub_rng, SimTime, Topology};

fn mk_spec(
    name: &str,
    generator: &TaskGenerator,
    target: f64,
    max_rounds: u64,
    seed: u64,
) -> AppSpec {
    let mut rng = sub_rng(seed, "test-set");
    AppSpec {
        name: name.to_string(),
        model_dims: vec![generator.spec.dim, 32, generator.spec.classes],
        aggregation: AggregationRule::FedAvg,
        local_epochs: 1,
        batch_size: 20,
        lr: 0.15,
        target_accuracy: target,
        max_rounds,
        test_set: Arc::new(generator.test_set(200, &mut rng)),
        seed,
    }
}

#[test]
fn single_app_trains_to_target() {
    let n = 13; // server + 12 clients
    let mut rng = sub_rng(1, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        1,
    );
    let participants: Vec<usize> = (1..n).collect();
    let shards = generator.client_shards(participants.len(), 60, 0.5, &mut rng);
    let spec = mk_spec("quick", &generator, 0.80, 60, 7);
    let app = engine.submit_app(spec, &participants, shards);
    let finished = engine.run(SimTime::from_micros(3_600 * 1_000_000));
    assert!(finished, "training did not finish");
    let curve = engine.server().curve(app);
    assert!(!curve.is_empty());
    let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    assert!(best >= 0.8, "target never reached: best = {best}");
    assert!(
        engine.server().time_to_target(app).is_some(),
        "time-to-target not recorded"
    );
    // Time axis is monotone.
    assert!(curve.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
}

#[test]
fn concurrent_apps_queue_at_the_central_server() {
    // The paper's core claim about centralized engines: per-app
    // time-to-target grows with the number of concurrently trained apps.
    let n = 25;
    let mut rng = sub_rng(2, "gen");
    let generator = TaskGenerator::new(femnist_like(), &mut rng);
    let rounds = 6;

    let run_with_apps = |num_apps: usize| -> f64 {
        let mut rng = sub_rng(3, "gen-inner");
        let mut engine = CentralizedEngine::new(
            Topology::uniform(n, 1_000, 5_000),
            ServerProfile::openfl_like(),
            2,
        );
        let participants: Vec<usize> = (1..n).collect();
        for a in 0..num_apps {
            let shards = generator.client_shards(participants.len(), 30, 0.5, &mut rng);
            // Unreachable target: run exactly `rounds` rounds.
            let spec = mk_spec(&format!("app-{a}"), &generator, 2.0, rounds, 100 + a as u64);
            engine.submit_app(spec, &participants, shards);
        }
        engine.run(SimTime::from_micros(36_000 * 1_000_000));
        // Mean time to complete all rounds across apps.
        let server = engine.server();
        (0..num_apps)
            .map(|a| server.curve(a).last().unwrap().time_secs)
            .sum::<f64>()
            / num_apps as f64
    };

    let t1 = run_with_apps(1);
    let t4 = run_with_apps(4);
    assert!(
        t4 > 1.8 * t1,
        "queuing delays too small: 1 app {t1:.1}s, 4 apps {t4:.1}s"
    );
}

#[test]
fn fedscale_profile_outpaces_openfl_under_load() {
    let n = 17;
    let mut rng = sub_rng(4, "gen");
    let generator = TaskGenerator::new(femnist_like(), &mut rng);
    let run_profile = |profile: ServerProfile| -> f64 {
        let mut rng = sub_rng(5, "gen-inner");
        let mut engine = CentralizedEngine::new(Topology::uniform(n, 1_000, 5_000), profile, 3);
        let participants: Vec<usize> = (1..n).collect();
        for a in 0..3 {
            let shards = generator.client_shards(participants.len(), 30, 0.5, &mut rng);
            let spec = mk_spec(&format!("app-{a}"), &generator, 2.0, 5, 200 + a);
            engine.submit_app(spec, &participants, shards);
        }
        engine.run(SimTime::from_micros(36_000 * 1_000_000));
        let server = engine.server();
        (0..3)
            .map(|a| server.curve(a).last().unwrap().time_secs)
            .fold(0.0, f64::max)
    };
    let openfl = run_profile(ServerProfile::openfl_like());
    let fedscale = run_profile(ServerProfile::fedscale_like());
    assert!(
        fedscale < openfl,
        "fedscale {fedscale:.1}s should beat openfl {openfl:.1}s"
    );
}

#[test]
fn fedprox_also_converges() {
    let n = 9;
    let mut rng = sub_rng(6, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        4,
    );
    let participants: Vec<usize> = (1..n).collect();
    // Heavy skew is FedProx's home turf.
    let shards = generator.client_shards(participants.len(), 60, 0.1, &mut rng);
    let mut spec = mk_spec("prox", &generator, 0.75, 50, 9);
    spec.aggregation = AggregationRule::FedProx { mu: 0.05 };
    let app = engine.submit_app(spec, &participants, shards);
    engine.run(SimTime::from_micros(3_600 * 1_000_000));
    let best = engine
        .server()
        .curve(app)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);
    assert!(best > 0.5, "fedprox best accuracy {best}");
}

#[test]
fn traffic_concentrates_on_the_server() {
    let n = 11;
    let mut rng = sub_rng(7, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        5,
    );
    let participants: Vec<usize> = (1..n).collect();
    let shards = generator.client_shards(participants.len(), 40, 0.5, &mut rng);
    let spec = mk_spec("traffic", &generator, 2.0, 4, 11);
    engine.submit_app(spec, &participants, shards);
    engine.run(SimTime::from_micros(3_600 * 1_000_000));
    let server_sent = engine.sim().traffic().node(0).payload_sent;
    let client_max = (1..n)
        .map(|i| engine.sim().traffic().node(i).payload_sent)
        .max()
        .unwrap();
    // Hub-and-spoke: the server sends roughly K times one client's volume.
    assert!(
        server_sent > 5 * client_max,
        "server {server_sent} vs client max {client_max}"
    );
}

#[test]
fn dead_client_does_not_stall_the_server() {
    // Without a server-side straggler cutoff, one dead client would freeze
    // its application forever; the watchdog must finalize with the updates
    // that arrived.
    let n = 9;
    let mut rng = sub_rng(8, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        6,
    );
    let participants: Vec<usize> = (1..n).collect();
    let shards = generator.client_shards(participants.len(), 40, 0.5, &mut rng);
    let mut spec = mk_spec("stall", &generator, 2.0, 5, 13);
    spec.max_rounds = 5;
    let app = engine.submit_app(spec, &participants, shards);

    // Kill a client almost immediately.
    engine
        .sim_mut()
        .schedule_down(3, SimTime::from_micros(1_000));
    let finished = engine.run(SimTime::from_micros(7_200 * 1_000_000));
    assert!(finished, "server stalled on the dead client");
    assert_eq!(
        engine.server().curve(app).last().map(|p| p.round),
        Some(5),
        "not all rounds completed"
    );
}

#[test]
fn client_churned_out_at_submission_never_contributes() {
    // Chaos-harness regression: a client that is down when the app is
    // submitted never receives its shard or spec (churn silences a node
    // completely, driver work included). Once revived it keeps receiving
    // Downloads for in-flight rounds; it must ignore them rather than
    // upload a bogus update from nothing, and training must complete.
    let n = 9;
    let mut rng = sub_rng(10, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        7,
    );
    engine.sim_mut().schedule_down(3, SimTime::from_micros(500));
    engine.sim_mut().run_until(SimTime::from_micros(10_000));
    let participants: Vec<usize> = (1..n).collect();
    let shards = generator.client_shards(participants.len(), 40, 0.5, &mut rng);
    let spec = mk_spec("absent", &generator, 2.0, 5, 17);
    let app = engine.submit_app(spec, &participants, shards);
    // Revive mid-training: round 1 is still stalled on the watchdog.
    engine
        .sim_mut()
        .schedule_up(3, SimTime::from_micros(60 * 1_000_000));
    let finished = engine.run(SimTime::from_micros(7_200 * 1_000_000));
    assert!(finished, "server stalled on the uninstalled client");
    assert_eq!(
        engine.server().curve(app).last().map(|p| p.round),
        Some(5),
        "not all rounds completed"
    );
    // The revived client ignored every Download: it never sent a byte.
    assert_eq!(
        engine.sim().traffic().node(3).payload_sent,
        0,
        "the shard-less client uploaded something"
    );
}

#[test]
fn client_downed_mid_round_rejoins_later_rounds() {
    // Chaos-harness regression: churn a client out in the middle of
    // training. Downloads sent while it is down bounce, the watchdog
    // finalizes the affected rounds without it (no partial or duplicate
    // finalization), and after revival it participates again.
    let n = 9;
    let mut rng = sub_rng(11, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut engine = CentralizedEngine::new(
        Topology::uniform(n, 1_000, 5_000),
        ServerProfile::fedscale_like(),
        8,
    );
    let participants: Vec<usize> = (1..n).collect();
    let shards = generator.client_shards(participants.len(), 40, 0.5, &mut rng);
    let spec = mk_spec("blinker", &generator, 2.0, 8, 19);
    let app = engine.submit_app(spec, &participants, shards);
    // Healthy rounds take ~0.46 s; down at 1 s lands mid-training, and the
    // revival at 200 s lands between two watchdog-finalized rounds.
    engine
        .sim_mut()
        .schedule_down(5, SimTime::from_micros(1_000_000));
    engine
        .sim_mut()
        .schedule_up(5, SimTime::from_micros(200 * 1_000_000));
    let finished = engine.run(SimTime::from_micros(7_200 * 1_000_000));
    assert!(finished, "server stalled on the churned client");

    let curve = engine.server().curve(app);
    assert_eq!(curve.last().map(|p| p.round), Some(8));
    // Exactly one finalization per round: the dead client neither stalled
    // a round forever nor let one finalize twice.
    assert_eq!(curve.len(), 8, "round finalized twice or skipped");
    assert!(curve.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
    // The churn window really overlapped training (watchdog rounds), and
    // post-revival rounds are fast again — the client is contributing, so
    // the server no longer waits out the 120 s watchdog.
    let last_gap = curve[7].time_secs - curve[6].time_secs;
    assert!(
        curve.last().unwrap().time_secs > 200.0,
        "training ended before the churn window"
    );
    assert!(
        last_gap < 10.0,
        "revived client still absent: final round took {last_gap:.1}s"
    );
}
