//! # totoro-baselines
//!
//! The centralized "single master / many workers" federated-learning
//! engines the paper compares Totoro against: OpenFL v1.3 and FedScale
//! v0.5 (§7.1). Both rely on a logically central coordinator that admits
//! applications first-come-first-served and funnels every round-setup,
//! model-serialization, update-ingestion, and evaluation task through one
//! bounded worker pool — the queue that Totoro's per-application masters
//! eliminate. See DESIGN.md §1 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod spec;

pub use engine::{
    compute_time, CentralMsg, CentralNode, CentralizedEngine, Client, Server, WorkQueue,
    BASE_EDGE_FLOPS, SERVER_SPEEDUP,
};
pub use spec::{AppSpec, ServerProfile};
