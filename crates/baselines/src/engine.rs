//! The centralized "single master / many workers" FL engine (Figure 2).
//!
//! One node is the parameter server hosting the Coordinator, Selector, and
//! per-application Aggregators; all other nodes are clients. Every
//! server-side task — round setup, model serialization, update ingestion,
//! evaluation — flows through a bounded-concurrency work queue, which is
//! what makes the architecture queue-bound when many applications train
//! concurrently (§7.4). Clients do *real* local training on their shards,
//! with the compute charged on the simulated clock.

use std::collections::HashMap; // det: allow(unordered: import only; every declaration and construction site below carries its own proof)
use std::sync::Arc;

use totoro_ml::{accuracy, AccuracyPoint, Dataset, Mlp, ModelUpdate};
use totoro_simnet::{
    Application, ComputeKind, Ctx, NodeIdx, Payload, Shared, SimDuration, SimTime, Simulator,
    Topology,
};

use crate::spec::{AppSpec, ServerProfile};

pub use totoro_simnet::topology::BASE_EDGE_FLOPS;

/// Server compute rate multiplier relative to an edge device.
pub const SERVER_SPEEDUP: f64 = 10.0;

/// Simulated time to crunch `flops` at `speed × BASE_EDGE_FLOPS`.
pub fn compute_time(flops: u64, speed: f64) -> SimDuration {
    SimDuration::from_secs_f64(flops as f64 / (BASE_EDGE_FLOPS * speed.max(1e-6)))
}

/// Messages of the centralized engine.
#[derive(Clone, Debug)]
pub enum CentralMsg {
    /// Server → client: the round's global model.
    Download {
        /// Application index.
        app: usize,
        /// Round number.
        round: u64,
        /// Global model weights, shared across the round's whole fan-out.
        weights: Shared<Vec<f32>>,
    },
    /// Client → server: the trained update.
    Upload {
        /// Application index.
        app: usize,
        /// Round number.
        round: u64,
        /// The client's contribution.
        update: ModelUpdate,
    },
}

impl Payload for CentralMsg {
    fn size_bytes(&self) -> usize {
        match self {
            CentralMsg::Download { weights, .. } => 32 + weights.len() * 4,
            CentralMsg::Upload { update, .. } => 32 + update.wire_bytes(),
        }
    }

    fn layer(&self) -> &'static str {
        "central"
    }

    fn kind(&self) -> &'static str {
        match self {
            CentralMsg::Download { .. } => "download",
            CentralMsg::Upload { .. } => "upload",
        }
    }
}

/// A bounded-concurrency FIFO work queue (the server's worker pool).
#[derive(Clone, Debug)]
pub struct WorkQueue {
    slots: Vec<SimTime>,
}

impl WorkQueue {
    /// A queue with `concurrency` parallel slots.
    pub fn new(concurrency: usize) -> Self {
        WorkQueue {
            slots: vec![SimTime::ZERO; concurrency.max(1)],
        }
    }

    /// Enqueues a task of `cost` at `now`; returns its completion time.
    pub fn schedule(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let slot = self
            .slots
            .iter_mut()
            .min()
            .expect("queue has at least one slot");
        let start = (*slot).max(now);
        let end = start + cost;
        *slot = end;
        end
    }

    /// Current backlog: how far the most-loaded slot extends past `now`.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.slots
            .iter()
            .map(|&s| s.saturating_since(now))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// One application's server-side state.
struct AppRun {
    spec: Arc<AppSpec>,
    model: Mlp,
    participants: Vec<NodeIdx>,
    round: u64,
    acc: ModelUpdate,
    received: usize,
    last_proc: SimTime,
    curve: Vec<AccuracyPoint>,
    started_at: SimTime,
    done: bool,
}

/// The parameter-server node.
pub struct Server {
    profile: ServerProfile,
    queue: WorkQueue,
    apps: Vec<AppRun>,
}

/// Timer namespace: dispatch, finalize, and watchdog tokens per app.
const T_DISPATCH: u64 = 0;
const T_FINALIZE: u64 = 1;
const T_WATCHDOG: u64 = 2;

fn token(app: usize, kind: u64) -> u64 {
    (app as u64) * 3 + kind
}

/// A round that has not completed after this long is finalized with the
/// updates that did arrive (server-side straggler cutoff).
const ROUND_WATCHDOG: SimDuration = SimDuration::from_secs(120);

impl Server {
    fn new(profile: ServerProfile) -> Self {
        Server {
            profile,
            queue: WorkQueue::new(profile.concurrency),
            apps: Vec::new(),
        }
    }

    /// Registers an application and queues its first round. Returns the
    /// application index.
    pub fn submit_app(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg>,
        spec: Arc<AppSpec>,
        participants: Vec<NodeIdx>,
    ) -> usize {
        let mut rng = rand::SeedableRng::seed_from_u64(spec.seed);
        let model = Mlp::new(&spec.model_dims, &mut rng);
        let dim = model.num_params();
        let app = self.apps.len();
        self.apps.push(AppRun {
            spec,
            model,
            participants,
            round: 0,
            acc: ModelUpdate::zero(dim),
            received: 0,
            last_proc: ctx.now(),
            curve: Vec::new(),
            started_at: ctx.now(),
            done: false,
        });
        self.queue_round_dispatch(ctx, app);
        app
    }

    /// Time-to-accuracy curve of application `app`.
    pub fn curve(&self, app: usize) -> &[AccuracyPoint] {
        &self.apps[app].curve
    }

    /// Whether application `app` reached its target (or round cap).
    pub fn is_done(&self, app: usize) -> bool {
        self.apps[app].done
    }

    /// Seconds from submission until the target accuracy was reached.
    pub fn time_to_target(&self, app: usize) -> Option<f64> {
        let run = &self.apps[app];
        totoro_ml::time_to_accuracy(&run.curve, run.spec.target_accuracy)
            .map(|t| t - run.started_at.as_secs_f64())
    }

    fn queue_round_dispatch(&mut self, ctx: &mut Ctx<'_, CentralMsg>, app: usize) {
        let k = self.apps[app].participants.len() as u64;
        let cost = SimDuration::from_micros(
            self.profile
                .round_setup_us
                .saturating_add(k * self.profile.per_download_us),
        );
        ctx.charge_compute(ComputeKind::FlTask, cost);
        let end = self.queue.schedule(ctx.now(), cost);
        ctx.set_timer(end.saturating_since(ctx.now()), token(app, T_DISPATCH));
    }

    fn dispatch_round(&mut self, ctx: &mut Ctx<'_, CentralMsg>, app: usize) {
        let run = &mut self.apps[app];
        run.round += 1;
        // The watchdog token carries the round it guards (high bits).
        ctx.set_timer(ROUND_WATCHDOG, (run.round << 20) | token(app, T_WATCHDOG));
        run.received = 0;
        run.acc = ModelUpdate::zero(run.model.num_params());
        run.last_proc = ctx.now();
        let weights = Shared::new(run.model.to_weights());
        let round = run.round;
        for &c in &run.participants {
            ctx.send(
                c,
                CentralMsg::Download {
                    app,
                    round,
                    weights: weights.clone(),
                },
            );
        }
    }

    fn on_upload(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg>,
        app: usize,
        round: u64,
        update: ModelUpdate,
    ) {
        let cost = SimDuration::from_micros(self.profile.per_update_us);
        ctx.charge_compute(ComputeKind::FlTask, cost);
        let end = self.queue.schedule(ctx.now(), cost);
        let run = &mut self.apps[app];
        if run.done || round != run.round {
            return; // Stale (late) update from an earlier round.
        }
        run.acc.merge(&update);
        run.received += 1;
        run.last_proc = run.last_proc.max(end);
        if run.received == run.participants.len() {
            ctx.set_timer(
                run.last_proc.saturating_since(ctx.now()),
                token(app, T_FINALIZE),
            );
        }
    }

    /// Watchdog: finalize with whatever arrived if the round stalled
    /// (e.g. clients died mid-round).
    fn watchdog(&mut self, ctx: &mut Ctx<'_, CentralMsg>, app: usize, round_at_arm: u64) {
        let run = &self.apps[app];
        if run.done || run.round != round_at_arm {
            return; // The round completed (and possibly others since).
        }
        if run.received < run.participants.len() {
            self.finalize_round(ctx, app);
        }
    }

    fn finalize_round(&mut self, ctx: &mut Ctx<'_, CentralMsg>, app: usize) {
        if self.apps[app].done {
            return;
        }
        // Evaluation also occupies the server queue.
        let (eval_flops, test_len) = {
            let run = &self.apps[app];
            (
                run.model.flops_per_sample() / 6 * 2,
                run.spec.test_set.len() as u64,
            )
        };
        let eval_cost = compute_time(eval_flops * test_len, SERVER_SPEEDUP);
        ctx.charge_compute(ComputeKind::FlTask, eval_cost);
        let end = self.queue.schedule(ctx.now(), eval_cost);

        let run = &mut self.apps[app];
        if let Some(avg) = run.acc.finalize() {
            run.model.from_weights(&avg);
        }
        let acc = accuracy(&run.model, &run.spec.test_set);
        run.curve.push(AccuracyPoint {
            time_secs: end.as_secs_f64(),
            round: run.round,
            accuracy: acc,
        });
        if acc >= run.spec.target_accuracy || run.round >= run.spec.max_rounds {
            run.done = true;
        } else {
            self.queue_round_dispatch(ctx, app);
        }
    }
}

/// A client node.
pub struct Client {
    /// Per-app local shard.
    // det: allow(unordered: keyed get/insert by app id only; never iterated)
    shards: HashMap<usize, Dataset>,
    /// Per-app local model replica.
    // det: allow(unordered: keyed get/entry by app id only; never iterated)
    replicas: HashMap<usize, Mlp>,
    /// App specs, indexed by app id (installed at submission).
    specs: Vec<Arc<AppSpec>>,
    server: NodeIdx,
}

impl Client {
    fn new(server: NodeIdx) -> Self {
        Client {
            shards: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            replicas: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            specs: Vec::new(),
            server,
        }
    }

    /// Installs this client's shard for application `app`.
    pub fn install_shard(&mut self, app: usize, shard: Dataset) {
        self.shards.insert(app, shard);
    }

    fn on_download(
        &mut self,
        ctx: &mut Ctx<'_, CentralMsg>,
        spec: &AppSpec,
        app: usize,
        round: u64,
        weights: &[f32],
    ) {
        let Some(shard) = self.shards.get(&app) else {
            return;
        };
        let me = ctx.me();
        let replica = self.replicas.entry(app).or_insert_with(|| {
            let mut rng = rand::SeedableRng::seed_from_u64(spec.seed);
            Mlp::new(&spec.model_dims, &mut rng)
        });
        replica.from_weights(weights);
        let mu = spec.aggregation.mu();
        let prox = (mu > 0.0).then_some((mu, weights));
        for _ in 0..spec.local_epochs {
            match prox {
                Some((mu, global)) => {
                    replica.train_epoch(
                        &shard.xs,
                        &shard.ys,
                        spec.batch_size,
                        spec.lr,
                        Some((mu, global)),
                    );
                }
                None => {
                    replica.train_epoch(&shard.xs, &shard.ys, spec.batch_size, spec.lr, None);
                }
            }
        }
        let flops = replica.flops_per_sample() * (shard.len() * spec.local_epochs) as u64;
        let speed = ctx.topology().profile(me).compute_speed;
        let train_time = compute_time(flops, speed);
        ctx.charge_compute(ComputeKind::FlTask, train_time);
        let update = ModelUpdate::from_client(&replica.to_weights(), shard.len() as u64);
        ctx.send_after(
            self.server,
            CentralMsg::Upload { app, round, update },
            train_time,
        );
    }
}

/// A node of the centralized deployment: the server or a client.
pub enum CentralNode {
    /// The parameter server (node 0).
    Server(Server),
    /// A client device.
    Client(Client),
}

impl CentralNode {
    /// The server state, if this is the server.
    pub fn as_server(&self) -> Option<&Server> {
        match self {
            CentralNode::Server(s) => Some(s),
            CentralNode::Client(_) => None,
        }
    }
}

/// The centralized FL deployment: one server + clients on a topology.
pub struct CentralizedEngine {
    sim: Simulator<CentralNode>,
    registry: Vec<Arc<AppSpec>>,
    server: NodeIdx,
}

impl Application for CentralNode {
    type Msg = CentralMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, CentralMsg>, _from: NodeIdx, msg: CentralMsg) {
        match (self, msg) {
            (CentralNode::Server(s), CentralMsg::Upload { app, round, update }) => {
                s.on_upload(ctx, app, round, update);
            }
            (
                CentralNode::Client(c),
                CentralMsg::Download {
                    app,
                    round,
                    weights,
                },
            ) => {
                let spec = c.specs.get(app).cloned();
                if let Some(spec) = spec {
                    c.on_download(ctx, &spec, app, round, &weights);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CentralMsg>, tok: u64) {
        if let CentralNode::Server(s) = self {
            let round = tok >> 20;
            let base = tok & ((1 << 20) - 1);
            let app = (base / 3) as usize;
            match base % 3 {
                T_DISPATCH => s.dispatch_round(ctx, app),
                T_FINALIZE => s.finalize_round(ctx, app),
                _ => s.watchdog(ctx, app, round),
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            CentralNode::Server(s) => s
                .apps
                .iter()
                .map(|a| a.model.num_params() * 8 + a.participants.len() * 8 + 256)
                .sum(),
            CentralNode::Client(c) => {
                c.replicas
                    .values()
                    .map(|m| m.num_params() * 4)
                    .sum::<usize>()
                    + c.shards
                        .values()
                        .map(|s| s.len() * (s.dim() + 1) * 4)
                        .sum::<usize>()
            }
        }
    }
}

impl CentralizedEngine {
    /// Builds a deployment over `topology`; node 0 is the server.
    pub fn new(topology: Topology, profile: ServerProfile, seed: u64) -> Self {
        assert!(topology.len() >= 2, "need a server and at least one client");
        let sim = Simulator::new(topology, seed, |i| {
            if i == 0 {
                CentralNode::Server(Server::new(profile))
            } else {
                CentralNode::Client(Client::new(0))
            }
        });
        CentralizedEngine {
            sim,
            registry: Vec::new(),
            server: 0,
        }
    }

    /// Submits an application: installs one shard per participant and
    /// queues round 1 at the server. Returns the application index.
    pub fn submit_app(
        &mut self,
        spec: AppSpec,
        participants: &[NodeIdx],
        shards: Vec<Dataset>,
    ) -> usize {
        assert_eq!(participants.len(), shards.len());
        assert!(participants.iter().all(|&p| p != self.server));
        let spec = Arc::new(spec);
        self.registry.push(Arc::clone(&spec));
        let app_id = self.registry.len() - 1;
        for (&p, shard) in participants.iter().zip(shards) {
            let spec = Arc::clone(&spec);
            self.sim.with_app(p, move |node, _ctx| {
                if let CentralNode::Client(c) = node {
                    c.install_shard(app_id, shard);
                    // Specs arrive in submission order on every client.
                    while c.specs.len() < app_id {
                        c.specs.push(Arc::clone(&spec)); // Filler never read: no shard.
                    }
                    c.specs.push(spec);
                }
            });
        }
        let participants = participants.to_vec();
        let server = self.server;
        self.sim
            .with_app(server, move |node, ctx| {
                if let CentralNode::Server(s) = node {
                    s.submit_app(ctx, spec, participants)
                } else {
                    unreachable!("node 0 is the server")
                }
            })
            .expect("the server never churns")
    }

    /// Runs until every submitted application is done or `deadline` of
    /// simulated time passes. Returns `true` if all apps finished.
    pub fn run(&mut self, deadline: SimTime) -> bool {
        loop {
            let processed = self.sim.run_until(deadline);
            let server = self.sim.app(self.server).as_server().expect("server");
            let all_done = (0..server.apps.len()).all(|a| server.is_done(a));
            if all_done {
                return true;
            }
            if processed == 0 {
                return false; // Nothing left before the deadline.
            }
        }
    }

    /// Read access to the simulator (curves, ledgers, ...).
    pub fn sim(&self) -> &Simulator<CentralNode> {
        &self.sim
    }

    /// Mutable access to the simulator (churn injection).
    pub fn sim_mut(&mut self) -> &mut Simulator<CentralNode> {
        &mut self.sim
    }

    /// The server node's state.
    pub fn server(&self) -> &Server {
        self.sim.app(self.server).as_server().expect("server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_queue_serializes_at_concurrency_one() {
        let mut q = WorkQueue::new(1);
        let now = SimTime::ZERO;
        let a = q.schedule(now, SimDuration::from_secs(2));
        let b = q.schedule(now, SimDuration::from_secs(3));
        assert_eq!(a.as_micros(), 2_000_000);
        assert_eq!(b.as_micros(), 5_000_000);
        assert_eq!(q.backlog(now), SimDuration::from_secs(5));
    }

    #[test]
    fn work_queue_parallelizes_with_more_slots() {
        let mut q = WorkQueue::new(3);
        let now = SimTime::ZERO;
        let ends: Vec<u64> = (0..3)
            .map(|_| q.schedule(now, SimDuration::from_secs(2)).as_micros())
            .collect();
        assert!(ends.iter().all(|&e| e == 2_000_000));
        // Fourth task waits behind the earliest slot.
        let d = q.schedule(now, SimDuration::from_secs(1));
        assert_eq!(d.as_micros(), 3_000_000);
    }

    #[test]
    fn work_queue_idles_without_work() {
        let mut q = WorkQueue::new(2);
        let late = SimTime::from_micros(10_000_000);
        // Scheduling at a later time starts then, not at the stale slot.
        let end = q.schedule(late, SimDuration::from_secs(1));
        assert_eq!(end.as_micros(), 11_000_000);
        assert_eq!(
            q.backlog(SimTime::from_micros(11_000_000)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let fast = compute_time(2_000_000, 1.0);
        let slow = compute_time(2_000_000, 0.1);
        assert_eq!(slow.as_micros(), fast.as_micros() * 10);
        // Degenerate speed does not divide by zero.
        assert!(compute_time(1, 0.0).as_micros() > 0);
    }
}
