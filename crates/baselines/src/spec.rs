//! Shared application/work specifications for the centralized engines.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use totoro_ml::{AggregationRule, Dataset};

/// Everything the server and clients need to run one FL application.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// MLP layer dimensions `[input, hidden..., classes]`.
    pub model_dims: Vec<usize>,
    /// Aggregation rule (FedAvg / FedProx).
    pub aggregation: AggregationRule,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Minibatch size (paper: 20).
    pub batch_size: usize,
    /// Client learning rate.
    pub lr: f32,
    /// Target test accuracy; training stops when reached.
    pub target_accuracy: f64,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Held-out test set evaluated by the master every round.
    pub test_set: Arc<Dataset>,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

/// Performance envelope of a centralized parameter server.
///
/// The paper's explanation of the speedup gap (§7.4): the central
/// coordinator "needs to handle \[applications\] one by one on a first-come,
/// first-served basis, which causes large queuing delays". The envelope
/// models exactly that: a work queue with bounded concurrency and
/// per-task service times.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServerProfile {
    /// Concurrent app-round tasks the server processes (worker threads).
    pub concurrency: usize,
    /// Server CPU time to set up one application round (selector +
    /// coordinator + aggregator bookkeeping, checkpointing), microseconds.
    pub round_setup_us: u64,
    /// Server CPU time to ingest one client update, microseconds.
    pub per_update_us: u64,
    /// Server CPU time to serialize/send one model copy, microseconds.
    pub per_download_us: u64,
}

impl ServerProfile {
    /// An OpenFL-like profile: the framework runs "in a single-machine
    /// setting" (§7.1) — one worker, heavier per-round orchestration.
    pub fn openfl_like() -> Self {
        ServerProfile {
            concurrency: 1,
            round_setup_us: 600_000,
            per_update_us: 5_000,
            per_download_us: 2_500,
        }
    }

    /// A FedScale-like profile: a scalable engine with elastic aggregators
    /// and leaner per-task costs — but round orchestration still funnels
    /// through one logically central coordinator ("handle them one by one
    /// on a first-come, first-served basis", §7.4), so concurrency is 1.
    pub fn fedscale_like() -> Self {
        ServerProfile {
            concurrency: 1,
            round_setup_us: 420_000,
            per_update_us: 2_500,
            per_download_us: 1_200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedscale_is_leaner_than_openfl() {
        let o = ServerProfile::openfl_like();
        let f = ServerProfile::fedscale_like();
        assert!(o.round_setup_us > f.round_setup_us);
        assert!(o.per_update_us > f.per_update_us);
    }
}
