//! A minimal multilayer perceptron with softmax cross-entropy.
//!
//! The paper trains ResNet-34 / ShuffleNet V2 / feed-forward text models
//! through Keras; the *systems* results only need real accuracy-vs-round
//! curves from a model that learns, while the per-round compute cost is
//! charged on the simulated clock (see `totoro::timing`). A compact MLP on
//! synthetic features provides exactly that with exact reproducibility.

use rand::rngs::StdRng;
use rand::Rng;

/// One fully connected layer: `y = W x + b`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Row-major weights, `out_dim x in_dim`.
    pub w: Vec<f32>,
    /// Biases, `out_dim`.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass for one sample.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0;
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *yo += acc;
        }
        y
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// An MLP with ReLU activations and a softmax cross-entropy head.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Layer dimensions: `[input, hidden..., classes]`.
    pub dims: Vec<usize>,
    layers: Vec<Dense>,
}

/// Gradients matching an [`Mlp`]'s flattened parameter vector.
pub type Gradients = Vec<f32>;

impl Mlp {
    /// Builds an MLP with the given layer dimensions.
    pub fn new(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp {
            dims: dims.to_vec(),
            layers,
        }
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Approximate multiply-accumulate operations per forward+backward pass
    /// of one sample (used to charge simulated training time).
    pub fn flops_per_sample(&self) -> u64 {
        // ~2 MACs per weight forward, ~4 backward.
        6 * self.layers.iter().map(|l| l.w.len() as u64).sum::<u64>()
    }

    /// Forward pass returning the logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut h = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                for v in &mut h {
                    *v = v.max(0.0);
                }
            }
        }
        h
    }

    /// Predicted class for one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.forward(x))
    }

    /// Cross-entropy loss and parameter gradients for one sample,
    /// accumulated into `grads` (flattened layout, see
    /// [`Mlp::to_weights`]). Returns the loss.
    pub fn loss_grad(&self, x: &[f32], label: usize, grads: &mut [f32]) -> f32 {
        // Forward with cached activations.
        let mut acts: Vec<Vec<f32>> = vec![x.to_vec()];
        for (i, layer) in self.layers.iter().enumerate() {
            let mut h = layer.forward(acts.last().expect("non-empty"));
            if i + 1 < self.layers.len() {
                for v in &mut h {
                    *v = v.max(0.0);
                }
            }
            acts.push(h);
        }
        let logits = acts.last().expect("non-empty");
        let probs = softmax(logits);
        let loss = -(probs[label].max(1e-12)).ln();

        // Backward.
        let mut delta: Vec<f32> = probs;
        delta[label] -= 1.0;
        let mut offset_end = grads.len();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let params = layer.num_params();
            let offset = offset_end - params;
            let input = &acts[i];
            let gw = &mut grads[offset..offset + layer.w.len()];
            for o in 0..layer.out_dim {
                let d = delta[o];
                let row = &mut gw[o * layer.in_dim..(o + 1) * layer.in_dim];
                for (g, xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            let gb = &mut grads[offset + layer.w.len()..offset_end];
            for (g, d) in gb.iter_mut().zip(&delta) {
                *g += d;
            }
            if i > 0 {
                // Propagate to the previous layer through W^T and the ReLU
                // derivative of its (post-activation) output.
                let mut prev = vec![0.0f32; layer.in_dim];
                for (o, &d) in delta.iter().enumerate().take(layer.out_dim) {
                    let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (p, wi) in prev.iter_mut().zip(row) {
                        *p += d * wi;
                    }
                }
                for (p, a) in prev.iter_mut().zip(&acts[i]) {
                    if *a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
            offset_end = offset;
        }
        loss
    }

    /// Flattens all parameters into one vector (layer by layer, weights
    /// then biases).
    pub fn to_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Loads parameters from a flattened vector.
    ///
    /// # Panics
    /// Panics if the length does not match [`Mlp::num_params`].
    pub fn from_weights(&mut self, weights: &[f32]) {
        assert_eq!(weights.len(), self.num_params(), "weight length mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wlen = l.w.len();
            l.w.copy_from_slice(&weights[off..off + wlen]);
            off += wlen;
            let blen = l.b.len();
            l.b.copy_from_slice(&weights[off..off + blen]);
            off += blen;
        }
    }

    /// One epoch of plain SGD over `(xs, ys)` with minibatches of
    /// `batch_size`, optionally with a FedProx proximal term
    /// `μ (w − w_global)` (§4.3's application-specific aggregation
    /// flexibility). Returns the mean loss.
    pub fn train_epoch(
        &mut self,
        xs: &[Vec<f32>],
        ys: &[usize],
        batch_size: usize,
        lr: f32,
        prox: Option<(f32, &[f32])>,
    ) -> f32 {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let p = self.num_params();
        let mut grads = vec![0.0f32; p];
        let mut total_loss = 0.0;
        let bs = batch_size.max(1);
        let mut i = 0;
        while i < n {
            let end = (i + bs).min(n);
            grads.iter_mut().for_each(|g| *g = 0.0);
            for k in i..end {
                total_loss += self.loss_grad(&xs[k], ys[k], &mut grads);
            }
            let scale = lr / (end - i) as f32;
            let mut w = self.to_weights();
            if let Some((mu, global)) = prox {
                debug_assert_eq!(global.len(), w.len());
                for ((wi, gi), glob) in w.iter_mut().zip(&grads).zip(global) {
                    *wi -= scale * gi + lr * mu * (*wi - glob);
                }
            } else {
                for (wi, gi) in w.iter_mut().zip(&grads) {
                    *wi -= scale * gi;
                }
            }
            self.from_weights(&w);
            i = end;
        }
        total_loss / n as f32
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    // det: allow(float: f32::max is exactly commutative and associative; fold order cannot change the result)
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - m).exp()).collect();
    // det: allow(float: left-to-right over the exps Vec, whose slice order mirrors the caller's logit order — canonical, never an unordered container)
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn shapes_and_param_counts() {
        let m = Mlp::new(&[8, 16, 4], &mut rng(1));
        assert_eq!(m.num_params(), 8 * 16 + 16 + 16 * 4 + 4);
        assert_eq!(m.forward(&[0.1; 8]).len(), 4);
        assert!(m.flops_per_sample() > 0);
    }

    #[test]
    fn weights_round_trip() {
        let mut m = Mlp::new(&[5, 7, 3], &mut rng(2));
        let w = m.to_weights();
        let mut m2 = Mlp::new(&[5, 7, 3], &mut rng(99));
        m2.from_weights(&w);
        assert_eq!(m2.to_weights(), w);
        let x = vec![0.3; 5];
        assert_eq!(m.forward(&x), m2.forward(&x));
        // Mutating and restoring.
        let w0 = m.to_weights();
        let mut w1 = w0.clone();
        w1[0] += 1.0;
        m.from_weights(&w1);
        assert_ne!(m.to_weights(), w0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| x.is_finite()));
        assert!(p[0] > p[2]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = Mlp::new(&[4, 6, 3], &mut rng(3));
        // Push every hidden pre-activation well away from the ReLU kink so
        // finite differences are valid: biases = +0.6.
        let mut w = m.to_weights();
        for b in &mut w[24..30] {
            *b = 0.6;
        }
        m.from_weights(&w);
        let x: Vec<f32> = (0..4).map(|i| 0.2 * i as f32 - 0.3).collect();
        let label = 1;
        let p = m.num_params();
        let mut grads = vec![0.0f32; p];
        m.loss_grad(&x, label, &mut grads);

        let w0 = m.to_weights();
        let numeric_at = |idx: usize, eps: f32| -> f32 {
            let mut dummy = vec![0.0f32; p];
            let mut mp = m.clone();
            let mut w = w0.clone();
            w[idx] += eps;
            mp.from_weights(&w);
            let lp = mp.loss_grad(&x, label, &mut dummy);
            let mut mm = m.clone();
            let mut w = w0.clone();
            w[idx] -= eps;
            mm.from_weights(&w);
            let lm = mm.loss_grad(&x, label, &mut dummy);
            (lp - lm) / (2.0 * eps)
        };
        let mut checked = 0;
        for &idx in &[0usize, 3, 10, 24, 30, p - 4, p - 1] {
            // A ReLU kink inside the ±ε interval makes the central
            // difference unreliable; detect it by comparing two step sizes
            // and skip those parameters.
            let n1 = numeric_at(idx, 1e-3);
            let n2 = numeric_at(idx, 4e-4);
            if (n1 - n2).abs() > 0.15 * n1.abs().max(1e-3) {
                continue;
            }
            assert!(
                (n1 - grads[idx]).abs() < 2e-2,
                "param {idx}: numeric {n1} vs analytic {}",
                grads[idx]
            );
            checked += 1;
        }
        assert!(
            checked >= 4,
            "too many kinked parameters: only {checked} checked"
        );
    }

    #[test]
    fn training_reduces_loss_and_learns_xor_ish_task() {
        let mut r = rng(4);
        // Two linearly inseparable clusters per class.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a = (i % 2) as f32 * 2.0 - 1.0;
            let b = ((i / 2) % 2) as f32 * 2.0 - 1.0;
            let mut noise = || (r.gen::<f32>() - 0.5) * 0.4;
            let (na, nb) = (noise(), noise());
            xs.push(vec![a + na, b + nb]);
            ys.push(usize::from((a > 0.0) != (b > 0.0)));
        }
        let mut m = Mlp::new(&[2, 16, 2], &mut rng(5));
        let first = m.train_epoch(&xs, &ys, 20, 0.3, None);
        let mut last = first;
        for _ in 0..40 {
            last = m.train_epoch(&xs, &ys, 20, 0.3, None);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
    }

    #[test]
    fn prox_term_pulls_toward_global() {
        let mut r = rng(6);
        let xs: Vec<Vec<f32>> = (0..50).map(|_| vec![r.gen::<f32>(); 3]).collect();
        let ys: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let global = Mlp::new(&[3, 8, 2], &mut rng(7)).to_weights();

        let mut free = Mlp::new(&[3, 8, 2], &mut rng(8));
        let mut proxed = free.clone();
        for _ in 0..20 {
            free.train_epoch(&xs, &ys, 10, 0.2, None);
            proxed.train_epoch(&xs, &ys, 10, 0.2, Some((1.0, &global)));
        }
        let dist = |w: &[f32]| -> f32 {
            w.iter()
                .zip(&global)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&proxed.to_weights()) < dist(&free.to_weights()),
            "prox did not constrain drift"
        );
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut m = Mlp::new(&[3, 4, 2], &mut rng(9));
        let w = m.to_weights();
        let loss = m.train_epoch(&[], &[], 8, 0.1, None);
        assert_eq!(loss, 0.0);
        assert_eq!(m.to_weights(), w);
    }
}
