//! Synthetic non-IID federated datasets.
//!
//! Substitution (see DESIGN.md): the paper evaluates on Google Speech
//! Commands (35-way, "middle-scale") and FEMNIST (62-way, "large-scale").
//! Neither dataset's bits are available offline, and the system results
//! depend only on having (a) a learnable signal, (b) non-IID partitions
//! across clients, and (c) two task scales. We synthesize Gaussian
//! class-prototype mixtures with matching class counts and a Dirichlet
//! label-skew partitioner — the standard construction for federated
//! heterogeneity studies.

use rand::rngs::StdRng;
use rand::Rng;

/// A labeled dataset.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Feature vectors.
    pub xs: Vec<Vec<f32>>,
    /// Class labels.
    pub ys: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }
}

/// Parameters of a synthetic classification task.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Dataset family name (for reports).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Distance scale of class prototypes (higher = easier).
    pub prototype_scale: f32,
    /// Per-sample Gaussian noise (higher = harder).
    pub noise: f32,
    /// Fraction of labels randomly flipped (caps attainable accuracy).
    pub label_noise: f64,
}

/// A "Google Speech Commands"-class task: 35 classes, mid-scale, noisy
/// enough that accuracy plateaus near the paper's 53% target band.
pub fn speech_commands_like() -> TaskSpec {
    TaskSpec {
        name: "speech",
        classes: 35,
        dim: 48,
        prototype_scale: 1.0,
        noise: 1.05,
        label_noise: 0.25,
    }
}

/// A "FEMNIST"-class task: 62 classes, larger and cleaner, plateauing near
/// the paper's 75.5% target band.
pub fn femnist_like() -> TaskSpec {
    TaskSpec {
        name: "femnist",
        classes: 62,
        dim: 40,
        prototype_scale: 1.6,
        noise: 0.75,
        label_noise: 0.08,
    }
}

/// A tiny feed-forward text-classification task (the §7.6 overhead
/// workload).
pub fn text_classification_like() -> TaskSpec {
    TaskSpec {
        name: "text",
        classes: 4,
        dim: 24,
        prototype_scale: 1.5,
        noise: 0.6,
        label_noise: 0.05,
    }
}

/// The generator for one task: fixed class prototypes plus sampling.
#[derive(Clone, Debug)]
pub struct TaskGenerator {
    /// The task parameters.
    pub spec: TaskSpec,
    prototypes: Vec<Vec<f32>>,
}

impl TaskGenerator {
    /// Creates the generator, drawing class prototypes from `rng`.
    pub fn new(spec: TaskSpec, rng: &mut StdRng) -> Self {
        let prototypes = (0..spec.classes)
            .map(|_| {
                (0..spec.dim)
                    .map(|_| gaussian32(rng) * spec.prototype_scale)
                    .collect()
            })
            .collect();
        TaskGenerator { spec, prototypes }
    }

    /// Samples one example of class `y`.
    pub fn sample(&self, y: usize, rng: &mut StdRng) -> Vec<f32> {
        self.prototypes[y]
            .iter()
            .map(|&p| p + gaussian32(rng) * self.spec.noise)
            .collect()
    }

    /// Generates an IID test set with `n` samples.
    pub fn test_set(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_range(0..self.spec.classes);
            xs.push(self.sample(y, rng));
            ys.push(y);
        }
        Dataset {
            xs,
            ys,
            classes: self.spec.classes,
        }
    }

    /// Generates non-IID client shards: each client's label distribution is
    /// drawn from `Dirichlet(alpha)` (small `alpha` = heavy skew), with
    /// `samples_per_client` examples each and `label_noise` flips.
    pub fn client_shards(
        &self,
        clients: usize,
        samples_per_client: usize,
        alpha: f64,
        rng: &mut StdRng,
    ) -> Vec<Dataset> {
        (0..clients)
            .map(|_| {
                let probs = dirichlet(self.spec.classes, alpha, rng);
                let mut xs = Vec::with_capacity(samples_per_client);
                let mut ys = Vec::with_capacity(samples_per_client);
                for _ in 0..samples_per_client {
                    let y = sample_categorical(&probs, rng);
                    xs.push(self.sample(y, rng));
                    let y = if rng.gen::<f64>() < self.spec.label_noise {
                        rng.gen_range(0..self.spec.classes)
                    } else {
                        y
                    };
                    ys.push(y);
                }
                Dataset {
                    xs,
                    ys,
                    classes: self.spec.classes,
                }
            })
            .collect()
    }
}

/// Standard normal via Box–Muller.
fn gaussian32(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// Marsaglia–Tsang gamma sampler (any shape > 0, unit scale).
fn gamma(shape: f64, rng: &mut StdRng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws a probability vector from a symmetric Dirichlet(alpha).
pub fn dirichlet(k: usize, alpha: f64, rng: &mut StdRng) -> Vec<f64> {
    let raw: Vec<f64> = (0..k).map(|_| gamma(alpha, rng).max(1e-300)).collect();
    // det: allow(float: left-to-right over a Vec built in index order from the seeded RNG stream — canonical order by construction)
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / sum).collect()
}

/// Samples an index from a probability vector.
pub fn sample_categorical(probs: &[f64], rng: &mut StdRng) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn specs_match_paper_class_counts() {
        assert_eq!(speech_commands_like().classes, 35);
        assert_eq!(femnist_like().classes, 62);
    }

    #[test]
    fn test_set_shapes() {
        let generator = TaskGenerator::new(femnist_like(), &mut rng(1));
        let ds = generator.test_set(200, &mut rng(2));
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dim(), 40);
        assert!(ds.ys.iter().all(|&y| y < 62));
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng(3);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let p = dirichlet(20, alpha, &mut r);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "alpha {alpha}: sum {s}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn small_alpha_skews_harder_than_large_alpha() {
        let mut r = rng(4);
        let entropy =
            |p: &[f64]| -> f64 { p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum() };
        let trials = 50;
        let mean_entropy = |alpha: f64, r: &mut StdRng| -> f64 {
            (0..trials)
                .map(|_| entropy(&dirichlet(10, alpha, r)))
                .sum::<f64>()
                / trials as f64
        };
        let skewed = mean_entropy(0.1, &mut r);
        let uniform = mean_entropy(100.0, &mut r);
        assert!(skewed < uniform - 0.5, "{skewed} vs {uniform}");
    }

    #[test]
    fn shards_are_non_iid() {
        let generator = TaskGenerator::new(femnist_like(), &mut rng(5));
        let shards = generator.client_shards(8, 100, 0.1, &mut rng(6));
        assert_eq!(shards.len(), 8);
        // At least one client's label histogram is heavily concentrated
        // (62 classes at Dirichlet(0.1) puts most mass on a handful of
        // classes; an IID shard would top out near 100/62 ≈ 2 per class).
        let concentrated = shards.iter().any(|s| {
            let mut hist = vec![0usize; s.classes];
            for &y in &s.ys {
                hist[y] += 1;
            }
            *hist.iter().max().unwrap() > s.len() / 5
        });
        assert!(concentrated, "no shard shows label skew at alpha=0.1");
    }

    #[test]
    fn task_is_learnable_by_mlp() {
        let generator = TaskGenerator::new(femnist_like(), &mut rng(7));
        let mut r = rng(8);
        let train = generator.test_set(3_000, &mut r);
        let test = generator.test_set(500, &mut r);
        let mut m = crate::nn::Mlp::new(&[40, 64, 62], &mut rng(9));
        for _ in 0..12 {
            m.train_epoch(&train.xs, &train.ys, 20, 0.1, None);
        }
        let acc = crate::metrics::accuracy(&m, &test);
        assert!(acc > 0.6, "accuracy only {acc}");
    }

    #[test]
    fn categorical_sampler_is_consistent() {
        let mut r = rng(10);
        let probs = vec![0.7, 0.2, 0.1];
        let n = 10_000;
        let mut hist = [0usize; 3];
        for _ in 0..n {
            hist[sample_categorical(&probs, &mut r)] += 1;
        }
        assert!((hist[0] as f64 / n as f64 - 0.7).abs() < 0.03);
        assert!((hist[2] as f64 / n as f64 - 0.1).abs() < 0.02);
    }
}
