//! Gradient/weight compression (§2.2.1 "compression techniques"; Table 2:
//! "Application owner can specify her compression function").
//!
//! Two standard schemes: top-k sparsification (keep the k
//! largest-magnitude coordinates) and linear int8 quantization. Both
//! report their wire size so the simulator can charge realistic
//! transmission times.

use serde::{Deserialize, Serialize};

/// The compression an application requests for its tree traffic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Compression {
    /// Send raw f32 weights.
    None,
    /// Keep only the `k` largest-magnitude entries.
    TopK {
        /// Number of entries kept.
        k: usize,
    },
    /// Linear quantization to signed 8-bit integers with one f32 scale.
    Int8,
}

impl Compression {
    /// Wire size of a `dim`-element vector under this scheme.
    pub fn wire_bytes(self, dim: usize) -> usize {
        match self {
            Compression::None => dim * 4,
            // Index (u32) + value (f32) per kept entry.
            Compression::TopK { k } => k.min(dim) * 8,
            Compression::Int8 => dim + 4,
        }
    }
}

/// A top-k sparsified vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    /// Original dimensionality.
    pub dim: usize,
    /// Kept coordinates.
    pub indices: Vec<u32>,
    /// Values at the kept coordinates.
    pub values: Vec<f32>,
}

/// Keeps the `k` largest-magnitude entries of `v`.
///
/// # Examples
///
/// ```
/// use totoro_ml::{densify, top_k};
///
/// let sparse = top_k(&[0.1, -5.0, 0.2, 3.0], 2);
/// assert_eq!(densify(&sparse), vec![0.0, -5.0, 0.0, 3.0]);
/// ```
pub fn top_k(v: &[f32], k: usize) -> SparseVec {
    let k = k.min(v.len());
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| {
        v[b].abs()
            .partial_cmp(&v[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<usize> = order[..k].to_vec();
    kept.sort_unstable();
    SparseVec {
        dim: v.len(),
        indices: kept.iter().map(|&i| i as u32).collect(),
        values: kept.iter().map(|&i| v[i]).collect(),
    }
}

/// Reconstructs a dense vector from a [`SparseVec`] (zeros elsewhere).
pub fn densify(s: &SparseVec) -> Vec<f32> {
    let mut out = vec![0.0; s.dim];
    for (&i, &v) in s.indices.iter().zip(&s.values) {
        out[i as usize] = v;
    }
    out
}

/// An int8-quantized vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantVec {
    /// Scale such that `value ≈ q * scale`.
    pub scale: f32,
    /// Quantized entries.
    pub q: Vec<i8>,
}

/// Quantizes `v` linearly into int8.
pub fn quantize_int8(v: &[f32]) -> QuantVec {
    // det: allow(float: max over abs values is exactly commutative and associative; fold order cannot change the result)
    let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    QuantVec {
        scale,
        q: v.iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect(),
    }
}

/// Dequantizes back to f32.
pub fn dequantize_int8(q: &QuantVec) -> Vec<f32> {
    q.q.iter().map(|&x| f32::from(x) * q.scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let v = vec![0.1, -5.0, 0.2, 3.0, -0.05];
        let s = top_k(&v, 2);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 3.0]);
        let d = densify(&s);
        assert_eq!(d, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn top_k_with_k_ge_len_is_lossless() {
        let v = vec![1.0, -2.0, 3.0];
        let s = top_k(&v, 10);
        assert_eq!(densify(&s), v);
    }

    #[test]
    fn int8_round_trip_error_is_bounded() {
        let v: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 2.0).collect();
        let q = quantize_int8(&v);
        let back = dequantize_int8(&q);
        let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let bound = max / 127.0 * 0.5 + 1e-6;
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_handles_zero_vector() {
        let q = quantize_int8(&[0.0; 8]);
        assert_eq!(dequantize_int8(&q), vec![0.0; 8]);
    }

    #[test]
    fn wire_sizes_are_smaller_than_raw() {
        let dim = 10_000;
        assert!(Compression::TopK { k: 100 }.wire_bytes(dim) < Compression::None.wire_bytes(dim));
        assert!(Compression::Int8.wire_bytes(dim) < Compression::None.wire_bytes(dim));
        // Top-k never exceeds the dense representation even with huge k.
        assert!(
            Compression::TopK { k: usize::MAX }.wire_bytes(dim)
                <= 2 * Compression::None.wire_bytes(dim)
        );
    }
}
