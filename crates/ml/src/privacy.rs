//! Differential-privacy hooks (§4.4: "application owners can specify
//! various privacy techniques, such as differential privacy ... the leaf
//! nodes, serving as workers, will apply Gaussian noise to local
//! training").
//!
//! The standard Gaussian mechanism: clip the update to an L2 bound `c`,
//! then add `N(0, (σ c)^2)` noise per coordinate.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The privacy technique an application requests.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Privacy {
    /// No privacy processing.
    None,
    /// Gaussian-mechanism differential privacy.
    GaussianDp {
        /// L2 clipping bound.
        clip: f32,
        /// Noise multiplier σ (std dev = σ · clip).
        sigma: f32,
    },
    /// Pairwise-masking secure aggregation (see [`crate::secure_agg`]).
    /// Masking needs the participant roster and round number, so it is
    /// applied by the FL engine rather than by [`apply`]; requires
    /// full-participation synchronous rounds and no lossy compression.
    SecureAggregation,
}

/// Clips `v` in place to L2 norm at most `clip`. Returns the original norm.
pub fn l2_clip(v: &mut [f32], clip: f32) -> f32 {
    // det: allow(float: left-to-right over the parameter slice; slice order is the model's canonical parameter order)
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > clip && norm > 0.0 {
        let s = clip / norm;
        for x in v.iter_mut() {
            *x *= s;
        }
    }
    norm
}

/// Applies the configured mechanism to a weight/update vector in place.
pub fn apply(privacy: Privacy, v: &mut [f32], rng: &mut StdRng) {
    match privacy {
        Privacy::None | Privacy::SecureAggregation => {}
        Privacy::GaussianDp { clip, sigma } => {
            l2_clip(v, clip);
            let sd = sigma * clip;
            for x in v.iter_mut() {
                *x += gaussian32(rng) * sd;
            }
        }
    }
}

fn gaussian32(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clip_shrinks_long_vectors_only() {
        let mut long = vec![3.0, 4.0]; // norm 5
        let n = l2_clip(&mut long, 1.0);
        assert_eq!(n, 5.0);
        let new_norm = long.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((long[0] / long[1] - 0.75).abs() < 1e-5);

        let mut short = vec![0.1, 0.1];
        let orig = short.clone();
        l2_clip(&mut short, 1.0);
        assert_eq!(short, orig);
    }

    #[test]
    fn clip_handles_zero_vector() {
        let mut z = vec![0.0; 4];
        l2_clip(&mut z, 1.0);
        assert_eq!(z, vec![0.0; 4]);
    }

    #[test]
    fn gaussian_dp_perturbs_with_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let dim = 20_000;
        let mut v = vec![0.0f32; dim];
        apply(
            Privacy::GaussianDp {
                clip: 1.0,
                sigma: 0.5,
            },
            &mut v,
            &mut rng,
        );
        let mean: f32 = v.iter().sum::<f32>() / dim as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / dim as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = vec![1.0, -2.0, 3.0];
        apply(Privacy::None, &mut v, &mut rng);
        assert_eq!(v, vec![1.0, -2.0, 3.0]);
    }
}
