//! Secure aggregation by pairwise additive masking (§4.4: "application
//! owners can specify various privacy techniques, such as ... secure
//! aggregation").
//!
//! The classic Bonawitz-et-al. construction, in its dropout-free core: for
//! every *pair* of participants `(i, j)` with `i < j`, both derive the same
//! pseudorandom mask vector `m_ij` from a shared per-round seed; `i` adds
//! `+m_ij` to its update and `j` adds `-m_ij`. Any single (even partially
//! aggregated) update is statistically masked, but in the full sum every
//! mask cancels — which composes perfectly with Totoro's in-network
//! aggregation, since interior nodes only ever add vectors.
//!
//! Scope: the dropout-recovery protocol (secret-shared seeds) is not
//! implemented, so a round only unmasks correctly when *all* participants
//! contribute; the FL engine therefore discards rounds with missing
//! contributions when this technique is active (matching the construction's
//! requirement rather than silently training on masked noise).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Participant address (mirrors `totoro_simnet::NodeIdx` without coupling
/// the ML substrate to the simulator).
pub type NodeIdx = usize;

/// Scale of the uniform mask values. Large relative to typical weights so a
/// masked update reveals essentially nothing, yet small enough that the
/// f32 cancellation error stays negligible for realistic cohort sizes.
pub const MASK_SCALE: f32 = 64.0;

/// Derives the shared mask seed for the unordered pair `{a, b}` in `round`
/// of the app salted `app_seed`.
fn pair_seed(app_seed: u64, round: u64, a: NodeIdx, b: NodeIdx) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let mut h = app_seed ^ round.wrapping_mul(0xD134_2543_DE82_EF95);
    h = splitmix64(h ^ lo as u64);
    splitmix64(h ^ (hi as u64).rotate_left(32))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Expands a pair seed into a mask vector of length `dim`.
fn mask_vector(seed: u64, dim: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dim)
        .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * MASK_SCALE)
        .collect()
}

/// Adds participant `me`'s pairwise masks for `round` onto `update` in
/// place. `participants` is the app's full participant list (every member
/// must apply masks for cancellation to hold).
pub fn apply_pairwise_masks(
    update: &mut [f32],
    me: NodeIdx,
    participants: &[NodeIdx],
    app_seed: u64,
    round: u64,
) {
    for &other in participants {
        if other == me {
            continue;
        }
        let seed = pair_seed(app_seed, round, me, other);
        let mask = mask_vector(seed, update.len());
        if me < other {
            for (u, m) in update.iter_mut().zip(&mask) {
                *u += m;
            }
        } else {
            for (u, m) in update.iter_mut().zip(&mask) {
                *u -= m;
            }
        }
    }
}

/// Upper bound on the residual cancellation error per coordinate after
/// summing all `n` participants' masked updates (f32 rounding only).
pub fn cancellation_tolerance(n: usize) -> f32 {
    // Each of the n(n-1)/2 pairs contributes one +m and one -m; rounding
    // error per add is ~MASK_SCALE * eps.
    (n * n) as f32 * MASK_SCALE * f32::EPSILON * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_sum(participants: &[NodeIdx], updates: &[Vec<f32>], round: u64) -> Vec<f32> {
        let dim = updates[0].len();
        let mut sum = vec![0.0f32; dim];
        for (&p, u) in participants.iter().zip(updates) {
            let mut masked = u.clone();
            apply_pairwise_masks(&mut masked, p, participants, 42, round);
            for (s, x) in sum.iter_mut().zip(&masked) {
                *s += x;
            }
        }
        sum
    }

    #[test]
    fn masks_cancel_in_the_full_sum() {
        let participants: Vec<NodeIdx> = vec![3, 7, 11, 20, 21];
        let updates: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..16).map(|k| (i * 16 + k) as f32 * 0.01).collect())
            .collect();
        let clear_sum: Vec<f32> = (0..16)
            .map(|k| updates.iter().map(|u| u[k]).sum())
            .collect();
        let got = masked_sum(&participants, &updates, 9);
        let tol = cancellation_tolerance(participants.len());
        for (a, b) in got.iter().zip(&clear_sum) {
            assert!((a - b).abs() <= tol.max(1e-3), "{a} vs {b}");
        }
    }

    #[test]
    fn single_masked_update_hides_the_values() {
        let participants: Vec<NodeIdx> = (0..8).collect();
        let update = vec![0.5f32; 32];
        let mut masked = update.clone();
        apply_pairwise_masks(&mut masked, 3, &participants, 1, 1);
        // The masked vector looks nothing like the original: large spread.
        let max_dev = masked
            .iter()
            .zip(&update)
            .map(|(m, u)| (m - u).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev > MASK_SCALE / 4.0, "mask too weak: {max_dev}");
    }

    #[test]
    fn pair_seeds_are_symmetric_and_round_dependent() {
        assert_eq!(pair_seed(1, 5, 2, 9), pair_seed(1, 5, 9, 2));
        assert_ne!(pair_seed(1, 5, 2, 9), pair_seed(1, 6, 2, 9));
        assert_ne!(pair_seed(1, 5, 2, 9), pair_seed(2, 5, 2, 9));
    }

    #[test]
    fn missing_participant_leaves_residue() {
        // Dropping one contributor breaks cancellation — the property the
        // engine relies on to detect and discard incomplete rounds.
        let participants: Vec<NodeIdx> = vec![0, 1, 2, 3];
        let updates: Vec<Vec<f32>> = vec![vec![0.0; 8]; 4];
        let mut sum = [0.0f32; 8];
        for (&p, u) in participants.iter().zip(&updates).take(3) {
            let mut masked = u.clone();
            apply_pairwise_masks(&mut masked, p, &participants, 7, 2);
            for (s, x) in sum.iter_mut().zip(&masked) {
                *s += x;
            }
        }
        let residue = sum.iter().map(|x| x.abs()).fold(0.0f32, f32::max);
        assert!(residue > 1.0, "residue unexpectedly small: {residue}");
    }

    #[test]
    fn two_participants_round_trip() {
        let participants = vec![5, 9];
        let updates = vec![vec![1.0f32, -2.0], vec![0.5, 4.0]];
        let got = masked_sum(&participants, &updates, 1);
        assert!((got[0] - 1.5).abs() < 1e-3);
        assert!((got[1] - 2.0).abs() < 1e-3);
    }
}
