//! Weight (de)serialization.
//!
//! §6: "We introduced a serialization mechanism to convert trained models
//! into binary arrays for low-cost communication over edge networks."
//! Weights serialize as little-endian f32s prefixed with a length header.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes a weight vector into a length-prefixed binary array.
pub fn weights_to_bytes(w: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + w.len() * 4);
    buf.put_u32_le(w.len() as u32);
    for &x in w {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserializes a weight vector; `None` on malformed input.
pub fn bytes_to_weights(mut b: Bytes) -> Option<Vec<f32>> {
    if b.remaining() < 4 {
        return None;
    }
    let n = b.get_u32_le() as usize;
    if b.remaining() != n * 4 {
        return None;
    }
    Some((0..n).map(|_| b.get_f32_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bits() {
        let w = vec![0.0, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0];
        let b = weights_to_bytes(&w);
        assert_eq!(b.len(), 4 + 5 * 4);
        let back = bytes_to_weights(b).unwrap();
        assert_eq!(w.len(), back.len());
        for (a, b) in w.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_vector_round_trips() {
        let b = weights_to_bytes(&[]);
        assert_eq!(bytes_to_weights(b).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(bytes_to_weights(Bytes::from_static(&[1, 2])).is_none());
        // Header says 10 floats but only 1 present.
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_f32_le(1.0);
        assert!(bytes_to_weights(buf.freeze()).is_none());
        // Trailing garbage.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_f32_le(1.0);
        buf.put_u8(0xFF);
        assert!(bytes_to_weights(buf.freeze()).is_none());
    }
}
