//! Federated aggregation: model updates, FedAvg, FedProx configuration.
//!
//! A worker's contribution to a round is a [`ModelUpdate`]: its locally
//! trained weights scaled by its sample count, plus that count. Updates
//! merge associatively, so interior tree nodes can partially aggregate
//! (§4.3): `merge(a, b)` sums weighted weights and counts, and the master
//! finishes with one division — exactly FedAvg \[69\]. FedProx \[60\] differs
//! only on the client (a proximal pull toward the global model), so it
//! reuses the same merge.

use serde::{Deserialize, Serialize};

/// The aggregation rule an application requests (Table 2: "Application
/// owner can specify her aggregation function").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AggregationRule {
    /// FedAvg: sample-weighted averaging of client weights.
    FedAvg,
    /// FedProx: FedAvg aggregation plus a client-side proximal term `μ`.
    FedProx {
        /// Proximal coefficient μ.
        mu: f32,
    },
}

impl AggregationRule {
    /// The client-side proximal coefficient (0 for FedAvg).
    pub fn mu(self) -> f32 {
        match self {
            AggregationRule::FedAvg => 0.0,
            AggregationRule::FedProx { mu } => mu,
        }
    }
}

/// A partially aggregated model update traveling up a dataflow tree.
///
/// # Examples
///
/// ```
/// use totoro_ml::ModelUpdate;
///
/// // Two clients with different amounts of data...
/// let mut acc = ModelUpdate::from_client(&[1.0, 0.0], 10);
/// acc.merge(&ModelUpdate::from_client(&[3.0, 2.0], 30));
/// // ...FedAvg weights by sample count: (1*10 + 3*30) / 40 = 2.5.
/// let avg = acc.finalize().unwrap();
/// assert!((avg[0] - 2.5).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Sum over contributors of `weights_i * samples_i`.
    pub weighted: Vec<f32>,
    /// Total samples behind `weighted`.
    pub samples: u64,
}

impl ModelUpdate {
    /// A single client's contribution.
    pub fn from_client(weights: &[f32], samples: u64) -> Self {
        let s = samples.max(1);
        ModelUpdate {
            weighted: weights.iter().map(|w| w * s as f32).collect(),
            samples: s,
        }
    }

    /// An empty (identity) update.
    pub fn zero(dim: usize) -> Self {
        ModelUpdate {
            weighted: vec![0.0; dim],
            samples: 0,
        }
    }

    /// Folds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &Self) {
        if self.weighted.is_empty() {
            self.weighted = other.weighted.clone();
            self.samples = other.samples;
            return;
        }
        debug_assert_eq!(self.weighted.len(), other.weighted.len());
        for (a, b) in self.weighted.iter_mut().zip(&other.weighted) {
            *a += b;
        }
        self.samples += other.samples;
    }

    /// Finalizes the FedAvg mean at the master. Returns `None` when no
    /// samples contributed.
    pub fn finalize(&self) -> Option<Vec<f32>> {
        if self.samples == 0 {
            return None;
        }
        let inv = 1.0 / self.samples as f32;
        Some(self.weighted.iter().map(|w| w * inv).collect())
    }

    /// Serialized wire size in bytes (f32 weights + header).
    pub fn wire_bytes(&self) -> usize {
        self.weighted.len() * 4 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_is_sample_weighted_mean() {
        let a = ModelUpdate::from_client(&[1.0, 2.0], 10);
        let b = ModelUpdate::from_client(&[3.0, 4.0], 30);
        let mut acc = a.clone();
        acc.merge(&b);
        let avg = acc.finalize().unwrap();
        // (1*10 + 3*30)/40 = 2.5; (2*10 + 4*30)/40 = 3.5.
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((avg[1] - 3.5).abs() < 1e-6);
        assert_eq!(acc.samples, 40);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let u = [
            ModelUpdate::from_client(&[1.0, -1.0], 5),
            ModelUpdate::from_client(&[0.5, 2.0], 7),
            ModelUpdate::from_client(&[-2.0, 0.25], 11),
        ];
        // ((a+b)+c)
        let mut left = u[0].clone();
        left.merge(&u[1]);
        left.merge(&u[2]);
        // (a+(b+c)) in different order: (c+b)+a
        let mut right = u[2].clone();
        right.merge(&u[1]);
        right.merge(&u[0]);
        for (x, y) in left.weighted.iter().zip(&right.weighted) {
            assert!((x - y).abs() < 1e-5);
        }
        assert_eq!(left.samples, right.samples);
    }

    #[test]
    fn zero_is_identity() {
        let a = ModelUpdate::from_client(&[1.0, 2.0, 3.0], 4);
        let mut z = ModelUpdate::zero(3);
        z.merge(&a);
        assert_eq!(z, a);
        assert!(ModelUpdate::zero(3).finalize().is_none());
    }

    #[test]
    fn single_client_round_trips() {
        let w = vec![0.1, -0.2, 0.3];
        let u = ModelUpdate::from_client(&w, 17);
        let back = u.finalize().unwrap();
        for (a, b) in w.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_sample_clients_count_as_one() {
        let u = ModelUpdate::from_client(&[1.0], 0);
        assert_eq!(u.samples, 1);
    }

    #[test]
    fn rule_mu() {
        assert_eq!(AggregationRule::FedAvg.mu(), 0.0);
        assert_eq!(AggregationRule::FedProx { mu: 0.5 }.mu(), 0.5);
    }

    #[test]
    fn wire_bytes_scale_with_dim() {
        let u = ModelUpdate::zero(1000);
        assert_eq!(u.wire_bytes(), 4_016);
    }
}
