//! # totoro-ml
//!
//! The machine-learning substrate of the Totoro reproduction: a compact,
//! dependency-free neural-network stack standing in for the paper's Keras
//! models (see DESIGN.md §1 for the substitution argument), plus the
//! federated-optimization building blocks the engine composes:
//!
//! * [`nn`] — MLPs with softmax cross-entropy, SGD, FedProx proximal term;
//! * [`fed`] — mergeable [`fed::ModelUpdate`]s for in-network FedAvg;
//! * [`data`] — synthetic non-IID datasets matching the paper's task scales
//!   (35-class "speech", 62-class "femnist") with Dirichlet label skew;
//! * [`compress`] — top-k sparsification and int8 quantization;
//! * [`privacy`] — Gaussian-mechanism differential privacy;
//! * [`secure_agg`] — pairwise-masking secure aggregation;
//! * [`serialize`] — binary weight arrays for low-cost communication;
//! * [`metrics`] — accuracy and time-to-accuracy curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod data;
pub mod fed;
pub mod metrics;
pub mod nn;
pub mod privacy;
pub mod secure_agg;
pub mod serialize;

pub use compress::{densify, dequantize_int8, quantize_int8, top_k, Compression};
pub use data::{
    dirichlet, femnist_like, speech_commands_like, text_classification_like, Dataset,
    TaskGenerator, TaskSpec,
};
pub use fed::{AggregationRule, ModelUpdate};
pub use metrics::{accuracy, mean_loss, time_to_accuracy, AccuracyPoint};
pub use nn::{argmax, softmax, Dense, Mlp};
pub use privacy::{apply as apply_privacy, l2_clip, Privacy};
pub use secure_agg::{apply_pairwise_masks, cancellation_tolerance, MASK_SCALE};
pub use serialize::{bytes_to_weights, weights_to_bytes};
