//! Evaluation metrics.

use crate::data::Dataset;
use crate::nn::Mlp;

/// Top-1 accuracy of `model` on `ds` (0 when the set is empty).
pub fn accuracy(model: &Mlp, ds: &Dataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let correct = ds
        .xs
        .iter()
        .zip(&ds.ys)
        .filter(|(x, &y)| model.predict(x) == y)
        .count();
    correct as f64 / ds.len() as f64
}

/// Mean cross-entropy loss of `model` on `ds`.
pub fn mean_loss(model: &Mlp, ds: &Dataset) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let total: f64 = ds
        .xs
        .iter()
        .zip(&ds.ys)
        .map(|(x, &y)| {
            let p = crate::nn::softmax(&model.forward(x));
            -(f64::from(p[y].max(1e-12))).ln()
        })
        // det: allow(float: left-to-right over the dataset Vec in example-index order — canonical, identical on every run)
        .sum();
    total / ds.len() as f64
}

/// A time-stamped accuracy sample on a time-to-accuracy curve.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyPoint {
    /// Wall-clock (simulated) seconds since training started.
    pub time_secs: f64,
    /// Round number.
    pub round: u64,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Time (seconds) at which `curve` first reaches `target` accuracy, if it
/// ever does. The curve need not be monotone.
pub fn time_to_accuracy(curve: &[AccuracyPoint], target: f64) -> Option<f64> {
    curve
        .iter()
        .find(|p| p.accuracy >= target)
        .map(|p| p.time_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn accuracy_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Mlp::new(&[4, 8, 3], &mut rng);
        let ds = Dataset {
            xs: vec![vec![0.0; 4]; 10],
            ys: vec![0; 10],
            classes: 3,
        };
        let a = accuracy(&m, &ds);
        assert!((0.0..=1.0).contains(&a));
        assert_eq!(accuracy(&m, &Dataset::default()), 0.0);
        assert!(mean_loss(&m, &ds) > 0.0);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let curve = vec![
            AccuracyPoint {
                time_secs: 1.0,
                round: 1,
                accuracy: 0.2,
            },
            AccuracyPoint {
                time_secs: 2.0,
                round: 2,
                accuracy: 0.55,
            },
            AccuracyPoint {
                time_secs: 3.0,
                round: 3,
                accuracy: 0.5,
            },
            AccuracyPoint {
                time_secs: 4.0,
                round: 4,
                accuracy: 0.6,
            },
        ];
        assert_eq!(time_to_accuracy(&curve, 0.5), Some(2.0));
        assert_eq!(time_to_accuracy(&curve, 0.58), Some(4.0));
        assert_eq!(time_to_accuracy(&curve, 0.9), None);
    }
}
