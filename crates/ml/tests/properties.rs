//! Property-based tests for the ML substrate's algebraic invariants.

use bytes::Bytes;
use proptest::prelude::*;
use totoro_ml::{
    bytes_to_weights, densify, dequantize_int8, l2_clip, quantize_int8, softmax, top_k,
    weights_to_bytes, ModelUpdate,
};

fn small_f32() -> impl Strategy<Value = f32> {
    (-1e6f32..1e6f32).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Serialization round-trips bit-exactly for any finite weights.
    #[test]
    fn serialize_round_trip(w in prop::collection::vec(small_f32(), 0..200)) {
        let b = weights_to_bytes(&w);
        let back = bytes_to_weights(b).expect("well-formed");
        prop_assert_eq!(w.len(), back.len());
        for (a, b) in w.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Deserialization never panics on arbitrary junk.
    #[test]
    fn deserialize_rejects_junk(junk in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = bytes_to_weights(Bytes::from(junk));
    }

    /// Int8 quantization error is bounded by half a quantization step.
    #[test]
    fn quantization_error_bound(w in prop::collection::vec(small_f32(), 1..200)) {
        let q = quantize_int8(&w);
        let back = dequantize_int8(&q);
        let max = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let step = (max / 127.0).max(f32::MIN_POSITIVE);
        for (a, b) in w.iter().zip(&back) {
            prop_assert!((a - b).abs() <= step * 0.5 + max * 1e-5, "{a} vs {b}");
        }
    }

    /// Top-k keeps exactly the k largest magnitudes; densify puts them back
    /// where they came from.
    #[test]
    fn top_k_keeps_largest(w in prop::collection::vec(small_f32(), 1..100), k in 1usize..50) {
        let s = top_k(&w, k);
        let d = densify(&s);
        prop_assert_eq!(d.len(), w.len());
        let kept = s.indices.len();
        prop_assert_eq!(kept, k.min(w.len()));
        // Every kept magnitude >= every dropped magnitude.
        let min_kept = s
            .values
            .iter()
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        for (i, &x) in w.iter().enumerate() {
            if !s.indices.contains(&(i as u32)) {
                prop_assert!(x.abs() <= min_kept + 1e-6);
            } else {
                prop_assert_eq!(d[i], x);
            }
        }
    }

    /// FedAvg: every coordinate of the finalized mean lies within the
    /// per-coordinate range of the client weights.
    #[test]
    fn fedavg_mean_within_range(
        clients in prop::collection::vec(
            (prop::collection::vec(-100.0f32..100.0, 4), 1u64..1000),
            1..8,
        ),
    ) {
        let dim = 4;
        let mut acc = ModelUpdate::zero(dim);
        for (w, s) in &clients {
            acc.merge(&ModelUpdate::from_client(w, *s));
        }
        let avg = acc.finalize().expect("non-empty");
        for i in 0..dim {
            let lo = clients.iter().map(|(w, _)| w[i]).fold(f32::INFINITY, f32::min);
            let hi = clients.iter().map(|(w, _)| w[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= lo - 1e-2 && avg[i] <= hi + 1e-2,
                "coordinate {i}: {} not in [{lo}, {hi}]", avg[i]);
        }
    }

    /// Merging is order-independent up to float tolerance.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec(-10.0f32..10.0, 3),
        b in prop::collection::vec(-10.0f32..10.0, 3),
        sa in 1u64..100,
        sb in 1u64..100,
    ) {
        let ua = ModelUpdate::from_client(&a, sa);
        let ub = ModelUpdate::from_client(&b, sb);
        let mut ab = ua.clone();
        ab.merge(&ub);
        let mut ba = ub.clone();
        ba.merge(&ua);
        prop_assert_eq!(ab.samples, ba.samples);
        for (x, y) in ab.weighted.iter().zip(&ba.weighted) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax is a probability distribution preserving the argmax.
    #[test]
    fn softmax_laws(logits in prop::collection::vec(-50.0f32..50.0, 1..20)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert_eq!(totoro_ml::argmax(&p), totoro_ml::argmax(&logits));
    }

    /// L2 clipping never increases the norm and is idempotent.
    #[test]
    fn l2_clip_laws(mut v in prop::collection::vec(-100.0f32..100.0, 1..50), c in 0.1f32..50.0) {
        let before: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        l2_clip(&mut v, c);
        let after: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(after <= before + 1e-4);
        prop_assert!(after <= c + 1e-3);
        // Idempotent up to float rounding (a second clip may rescale by
        // 1 - epsilon when the norm lands exactly on the bound).
        let mut again = v.clone();
        l2_clip(&mut again, c);
        for (a, b) in v.iter().zip(&again) {
            prop_assert!((a - b).abs() < 1e-4 * (1.0 + a.abs()));
        }
    }
}
