//! A stable, seed-free 64-bit hasher for canonical state digests.
//!
//! Visited-set dedup compares digests of protocol state across *runs* of
//! the same build (the differential tests replay schedules through a
//! fresh simulator and assert hash equality), so the hasher must be a
//! pure function of the written bytes: no `RandomState` keys, no
//! per-process seeds. FNV-1a is tiny, dependency-free, and plenty for
//! the few thousand states a bounded exploration visits; collisions
//! merely merge two states (missing a branch), never invent violations,
//! and the 64-bit space makes them vanishingly unlikely at this scale.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, byte-at-a-time. Implements [`Hasher`] so ordinary
/// `Hash::hash(&value, &mut hasher)` drives it.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A fresh hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn digest<T: Hash>(v: &T) -> u64 {
        let mut h = StableHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn known_vectors() {
        // Classic FNV-1a test vectors over raw bytes.
        let mut h = StableHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive_and_deterministic() {
        assert_eq!(digest(&(1u64, 2u64)), digest(&(1u64, 2u64)));
        assert_ne!(digest(&(1u64, 2u64)), digest(&(2u64, 1u64)));
        assert_ne!(digest(&[1u8, 0]), digest(&[0u8, 1]));
    }
}
