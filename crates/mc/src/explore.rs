//! Depth-first bounded exploration with replay-from-prefix execution.
//!
//! # Execution model
//!
//! The simulator is not cloneable (its RNG, slab, and queue are one
//! tangled arena), so the explorer never checkpoints: to branch, it
//! rebuilds the world from the factory closure and replays the recorded
//! choice prefix. Determinism makes the replay exact — the same prefix
//! always reaches the same state with the same pending `(time, seq)`
//! keys, which is why a `Vec<Choice>` is a faithful state name *and* a
//! shippable counterexample. Rebuild cost is `O(depth)` dispatches per
//! visited state; at model-checking scale (a handful of nodes, depth
//! ≤ ~10) that is microseconds.
//!
//! # Search
//!
//! From each deduplicated state the explorer enumerates a bounded choice
//! set: dispatching any of the first `reorder_window` pending events,
//! plus — while fault budget remains — dropping or duplicating any
//! *delivery* in that window and crash/revive injections on the
//! configured churn set. Three prunes keep the tree finite and small:
//!
//! * **depth bound** — paths stop at `max_depth` choices; the world is
//!   then run to its settle horizon (`closeout`) and the quiescent
//!   oracles judge the outcome, so the breaker-style self-healing paths
//!   the protocol is *supposed* to take are given time to run.
//! * **visited-set dedup** — the canonical state hash ([`World::state_hash`])
//!   folds away permutation-equivalent prefixes.
//! * **sleep sets** — after exploring `dispatch(a)` from a state, the
//!   sibling branches that dispatch an event *independent* of `a`
//!   (different destination node, both plain deliveries/timers) carry
//!   `a` in their sleep set and skip re-dispatching it first: the
//!   interleaving `b·a` is explored, `a·b` was already taken. See
//!   DESIGN.md §14 for why hash dedup backstops this pruning.

use std::collections::BTreeSet;

use totoro_simnet::{EventKey, NodeIdx, PendingClass, PendingSummary};

use crate::schedule::Choice;

/// A model-checkable world: a deterministic factory product that the
/// explorer steers choice by choice. Implementations wrap a
/// [`totoro_simnet::Simulator`] plus an oracle set (see the bench
/// crate's `mc` module for the echo-forest worlds).
pub trait World {
    /// Payload-free summaries of the currently pending events, in
    /// ascending `(time, seq)` order.
    fn pending(&mut self) -> Vec<PendingSummary>;

    /// Applies one choice. Returns `false` — leaving the world in an
    /// unspecified but safe state — when the choice is inapplicable
    /// (key not pending, node already in the requested liveness state);
    /// the explorer discards such paths.
    fn apply(&mut self, choice: &Choice) -> bool;

    /// Runs the world forward to its settle horizon with no further
    /// exploration choices (plain `(time, seq)` order), giving
    /// self-healing protocol machinery time to act before the quiescent
    /// oracles judge the end state.
    fn closeout(&mut self);

    /// Canonical digest of protocol + pending-event state: equal for
    /// states that are behaviorally the same regardless of how they were
    /// reached, different for states that genuinely differ.
    fn state_hash(&mut self) -> u64;

    /// Checks the invariant oracles. `quiescent` is `false` for the
    /// every-state checks during exploration and `true` after
    /// [`World::closeout`]. `Err` carries `"oracle-name: detail"`.
    fn check(&mut self, quiescent: bool) -> Result<(), String>;
}

/// Exploration bounds and fault alphabet.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Maximum choices per path before closeout.
    pub max_depth: usize,
    /// Total faults (drop/duplicate/down/up) allowed per path.
    pub fault_budget: usize,
    /// Stop after this many unique states (reported as `truncated`).
    pub max_states: u64,
    /// Dispatch candidates per state: the first `reorder_window` pending
    /// events in `(time, seq)` order.
    pub reorder_window: usize,
    /// Offer dropping deliveries in the window.
    pub enable_drop: bool,
    /// Offer duplicating deliveries in the window.
    pub enable_duplicate: bool,
    /// Nodes eligible for crash/revive injection (empty = no churn).
    pub churn_nodes: Vec<NodeIdx>,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_depth: 8,
            fault_budget: 1,
            max_states: 10_000,
            reorder_window: 3,
            enable_drop: true,
            enable_duplicate: false,
            churn_nodes: Vec::new(),
        }
    }
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Unique states visited (after dedup).
    pub visited: u64,
    /// Prefixes discarded because their state hash was already seen.
    pub deduped: u64,
    /// Sibling dispatches skipped by sleep-set pruning.
    pub pruned: u64,
    /// Paths abandoned because a replayed choice became inapplicable.
    pub discarded: u64,
    /// Whether the `max_states` budget cut exploration short.
    pub truncated: bool,
}

/// A found violation: the (minimized) schedule and what it breaks.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Choice sequence reproducing the violation from a fresh world.
    pub schedule: Vec<Choice>,
    /// `"oracle-name: detail"` from the failing check.
    pub detail: String,
}

/// The outcome of one exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Exploration counters.
    pub stats: Stats,
    /// The first violation found (minimized), if any.
    pub violation: Option<Violation>,
}

/// A sleeping dispatch: the event's key and its destination node (kept
/// so independence against later choices can be decided without looking
/// the key up again).
type Sleeper = (EventKey, NodeIdx);

/// One DFS frontier entry: a choice prefix, its spent fault budget, and
/// its sleep set.
struct PathNode {
    prefix: Vec<Choice>,
    faults: usize,
    sleep: Vec<Sleeper>,
}

/// The bounded explorer. `factory` must build the *same* world every
/// call — all its inputs (topology, seed, settle prefix) fixed.
pub struct Explorer<W: World, F: FnMut() -> W> {
    config: McConfig,
    factory: F,
}

/// Whether a pending event may commute with dispatches to other nodes:
/// plain deliveries and timers touch only their destination's state.
/// Churn transitions and starts are conservatively dependent on
/// everything.
fn commutable(class: &PendingClass) -> bool {
    matches!(
        class,
        PendingClass::Deliver { .. } | PendingClass::Timer { .. } | PendingClass::SendFailed { .. }
    )
}

impl<W: World, F: FnMut() -> W> Explorer<W, F> {
    /// Creates an explorer over `factory` with the given bounds.
    pub fn new(config: McConfig, factory: F) -> Self {
        Explorer { config, factory }
    }

    /// Rebuilds a world and replays `prefix`. `None` if a choice was
    /// inapplicable.
    fn replay(&mut self, prefix: &[Choice]) -> Option<W> {
        let mut world = (self.factory)();
        for c in prefix {
            if !world.apply(c) {
                return None;
            }
        }
        Some(world)
    }

    /// Replays `schedule`, checking the always-phase oracles after every
    /// choice and the quiescent oracles after closeout. Returns the
    /// violation detail, or `None` if the schedule is inapplicable or
    /// clean — the predicate counterexample minimization shrinks against.
    pub fn violation_of(&mut self, schedule: &[Choice]) -> Option<String> {
        let mut world = (self.factory)();
        for c in schedule {
            if !world.apply(c) {
                return None;
            }
            if let Err(detail) = world.check(false) {
                return Some(detail);
            }
        }
        world.closeout();
        world.check(true).err()
    }

    /// Greedy delta-debugging: repeatedly drop any single choice whose
    /// removal preserves *some* violation, to a fixpoint. The result is
    /// 1-minimal (no single choice can be removed), which in practice
    /// collapses the DFS-ordered counterexamples to their essential
    /// faults and reorderings.
    pub fn minimize(&mut self, schedule: &[Choice], detail: String) -> Violation {
        let mut best: Vec<Choice> = schedule.to_vec();
        let mut best_detail = detail;
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < best.len() {
                let mut candidate = best.clone();
                candidate.remove(i);
                if let Some(d) = self.violation_of(&candidate) {
                    best = candidate;
                    best_detail = d;
                    shrunk = true;
                } else {
                    i += 1;
                }
            }
            if !shrunk {
                return Violation {
                    schedule: best,
                    detail: best_detail,
                };
            }
        }
    }

    /// Enumerates the child paths of a state with pending set
    /// `summaries`, applying the window, fault-budget, and sleep-set
    /// rules. Deterministic: choices come out in `(time, seq)` /
    /// alphabet order.
    fn children(
        &self,
        node: &PathNode,
        summaries: &[PendingSummary],
        stats: &mut Stats,
    ) -> Vec<PathNode> {
        let window = &summaries[..summaries.len().min(self.config.reorder_window)];
        let budget_left = node.faults < self.config.fault_budget;
        let mut choices: Vec<Choice> = Vec::new();
        for s in window {
            choices.push(Choice::Dispatch { key: s.key });
        }
        if budget_left {
            for s in window {
                if matches!(s.class, PendingClass::Deliver { .. }) {
                    if self.config.enable_drop {
                        choices.push(Choice::Drop { key: s.key });
                    }
                    if self.config.enable_duplicate {
                        choices.push(Choice::Duplicate { key: s.key });
                    }
                }
            }
            for &n in &self.config.churn_nodes {
                choices.push(Choice::Down { node: n });
                choices.push(Choice::Up { node: n });
            }
        }

        let mut out = Vec::with_capacity(choices.len());
        // Dispatches already handed to earlier siblings at this state.
        let mut earlier: Vec<Sleeper> = Vec::new();
        for c in choices {
            if let Choice::Dispatch { key } = c {
                if node.sleep.iter().any(|(k, _)| *k == key) {
                    stats.pruned += 1;
                    continue;
                }
            }
            let child_sleep = match c {
                Choice::Dispatch { key } => {
                    let dest = window
                        .iter()
                        .find(|s| s.key == key)
                        .map(|s| (s.node, commutable(&s.class)))
                        .expect("dispatch choice from window");
                    if dest.1 {
                        // Keep every sleeper independent of this dispatch:
                        // different destination (the sleeper's class was
                        // already vetted commutable when it entered).
                        node.sleep
                            .iter()
                            .chain(earlier.iter())
                            .filter(|(_, d)| *d != dest.0)
                            .copied()
                            .collect()
                    } else {
                        Vec::new()
                    }
                }
                // Faults are conservatively dependent on everything.
                _ => Vec::new(),
            };
            let mut prefix = node.prefix.clone();
            prefix.push(c);
            out.push(PathNode {
                prefix,
                faults: node.faults + usize::from(c.is_fault()),
                sleep: child_sleep,
            });
            if let Choice::Dispatch { key } = c {
                if let Some(s) = window.iter().find(|s| s.key == key) {
                    if commutable(&s.class) {
                        earlier.push((key, s.node));
                    }
                }
            }
        }
        out
    }

    /// Runs the exploration to completion (or budget), returning the
    /// counters and the first — minimized — violation, if any.
    pub fn run(&mut self) -> Report {
        let mut stats = Stats::default();
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        let mut stack: Vec<PathNode> = vec![PathNode {
            prefix: Vec::new(),
            faults: 0,
            sleep: Vec::new(),
        }];
        while let Some(node) = stack.pop() {
            if stats.visited >= self.config.max_states {
                stats.truncated = true;
                break;
            }
            let Some(mut world) = self.replay(&node.prefix) else {
                stats.discarded += 1;
                continue;
            };
            if !visited.insert(world.state_hash()) {
                stats.deduped += 1;
                continue;
            }
            stats.visited += 1;
            // Enumerate children *before* closeout mutates the world.
            let mut children = Vec::new();
            if node.prefix.len() < self.config.max_depth {
                let summaries = world.pending();
                children = self.children(&node, &summaries, &mut stats);
            }
            // Oracles: always-phase at the explored state, quiescent
            // after running out the settle horizon.
            let verdict = match world.check(false) {
                Err(d) => Err(d),
                Ok(()) => {
                    world.closeout();
                    world.check(true)
                }
            };
            if let Err(detail) = verdict {
                let violation = self.minimize(&node.prefix, detail);
                return Report {
                    stats,
                    violation: Some(violation),
                };
            }
            // Reverse push so DFS visits children in enumeration order.
            for child in children.into_iter().rev() {
                stack.push(child);
            }
        }
        Report {
            stats,
            violation: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use totoro_simnet::SimTime;

    fn key(us: u64, seq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_micros(us),
            seq,
        }
    }

    /// A tiny hand-rolled world: `n` timer events, one per node, all
    /// initially pending. Dispatch order is recorded; the state is the
    /// *set* of delivered events (order-insensitive), so permutation
    /// prefixes dedup. If `bug`, delivering event 0 before event 1
    /// violates the oracle — an order-dependent protocol bug.
    struct ToyWorld {
        n: usize,
        delivered: Vec<usize>,
        dropped: Vec<bool>,
        bug: bool,
    }

    impl ToyWorld {
        fn new(n: usize, bug: bool) -> Self {
            ToyWorld {
                n,
                delivered: Vec::new(),
                dropped: vec![false; n],
                bug,
            }
        }
    }

    impl World for ToyWorld {
        fn pending(&mut self) -> Vec<PendingSummary> {
            (0..self.n)
                .filter(|i| !self.delivered.contains(i) && !self.dropped[*i])
                .map(|i| PendingSummary {
                    key: key(100, i as u64),
                    node: i,
                    class: PendingClass::Timer { token: i as u64 },
                })
                .collect()
        }

        fn apply(&mut self, choice: &Choice) -> bool {
            match choice {
                Choice::Dispatch { key } => {
                    let i = key.seq as usize;
                    if i >= self.n || self.delivered.contains(&i) || self.dropped[i] {
                        return false;
                    }
                    self.delivered.push(i);
                    true
                }
                _ => false,
            }
        }

        fn closeout(&mut self) {
            // Deliver the rest in seq order.
            for i in 0..self.n {
                if !self.delivered.contains(&i) && !self.dropped[i] {
                    self.delivered.push(i);
                }
            }
        }

        fn state_hash(&mut self) -> u64 {
            // Order-insensitive: the set of delivered events.
            let mut mask = 0u64;
            for &i in &self.delivered {
                mask |= 1 << i;
            }
            mask
        }

        fn check(&mut self, _quiescent: bool) -> Result<(), String> {
            if !self.bug {
                return Ok(());
            }
            let p0 = self.delivered.iter().position(|&i| i == 0);
            let p1 = self.delivered.iter().position(|&i| i == 1);
            match (p0, p1) {
                (Some(a), Some(b)) if a < b => Err("order: 0 delivered before 1".into()),
                _ => Ok(()),
            }
        }
    }

    #[test]
    fn clean_world_dedups_permutations() {
        let cfg = McConfig {
            max_depth: 3,
            fault_budget: 0,
            reorder_window: 3,
            ..McConfig::default()
        };
        let mut ex = Explorer::new(cfg, || ToyWorld::new(3, false));
        let report = ex.run();
        assert!(report.violation.is_none());
        // States are subsets of {0,1,2} reachable by dispatch prefixes:
        // {}, the 3 singletons, the 3 pairs, and the full set = 8 — but
        // sleep-set pruning skips some permutation re-entries before the
        // hash is even computed, so visited ≤ 8 with pruning > 0.
        assert!(report.stats.visited <= 8, "{:?}", report.stats);
        assert!(report.stats.pruned > 0, "{:?}", report.stats);
        assert!(!report.stats.truncated);
    }

    #[test]
    fn buggy_world_yields_minimal_counterexample() {
        let cfg = McConfig {
            max_depth: 3,
            fault_budget: 0,
            reorder_window: 3,
            ..McConfig::default()
        };
        let mut ex = Explorer::new(cfg, || ToyWorld::new(3, true));
        let report = ex.run();
        let v = report.violation.expect("bug must be found");
        assert!(v.detail.contains("order"), "{}", v.detail);
        // Minimal repro: the empty schedule already violates (closeout
        // delivers 0 before 1 in seq order), so minimization strips
        // everything.
        assert!(v.schedule.is_empty(), "{:?}", v.schedule);
    }

    /// Same bug but closeout delivers in *reverse* order, so the empty
    /// schedule is clean and the minimal counterexample must actually
    /// dispatch 0 ahead of 1.
    struct ToyWorldRev(ToyWorld);

    impl World for ToyWorldRev {
        fn pending(&mut self) -> Vec<PendingSummary> {
            self.0.pending()
        }
        fn apply(&mut self, choice: &Choice) -> bool {
            self.0.apply(choice)
        }
        fn closeout(&mut self) {
            for i in (0..self.0.n).rev() {
                if !self.0.delivered.contains(&i) && !self.0.dropped[i] {
                    self.0.delivered.push(i);
                }
            }
        }
        fn state_hash(&mut self) -> u64 {
            self.0.state_hash()
        }
        fn check(&mut self, q: bool) -> Result<(), String> {
            self.0.check(q)
        }
    }

    #[test]
    fn minimization_keeps_the_essential_reordering() {
        let cfg = McConfig {
            max_depth: 3,
            fault_budget: 0,
            reorder_window: 3,
            ..McConfig::default()
        };
        let mut ex = Explorer::new(cfg, || ToyWorldRev(ToyWorld::new(3, true)));
        let report = ex.run();
        let v = report.violation.expect("bug must be found");
        // One dispatch suffices: deliver 0 first, closeout then delivers
        // 2 then 1 — both orders of the irrelevant event 2 minimize away.
        assert_eq!(v.schedule, vec![Choice::Dispatch { key: key(100, 0) }]);
    }

    #[test]
    fn state_budget_truncates() {
        let cfg = McConfig {
            max_depth: 4,
            fault_budget: 0,
            reorder_window: 4,
            max_states: 3,
            ..McConfig::default()
        };
        let mut ex = Explorer::new(cfg, || ToyWorld::new(4, false));
        let report = ex.run();
        assert!(report.stats.truncated);
        assert_eq!(report.stats.visited, 3);
    }
}
