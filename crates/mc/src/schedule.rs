//! The replay-schedule alphabet and its stable text format.
//!
//! A counterexample is a sequence of [`Choice`]s applied to a freshly
//! built world. Because world construction is deterministic and an
//! [`crate::explore::Explorer`] records events by their `(time, seq)`
//! queue keys — which the determinism contract makes stable across
//! replays of the same prefix — a schedule is fully reproducible: the
//! golden fixtures under `crates/bench/tests/golden/` are files in
//! exactly this format.
//!
//! The format is one choice per line, microseconds and sequence numbers
//! in decimal; blank lines and `#` comments are ignored:
//!
//! ```text
//! # drop the rendezvous' JoinAck, then deliver the retry first
//! drop 1000234 17
//! dispatch 1000234 18
//! down 2
//! up 2
//! ```

use totoro_simnet::{EventKey, NodeIdx, SimTime};

/// One scheduling decision at an exploration step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Choice {
    /// Dispatch the pending event queued under `key` next, ahead of the
    /// simulator's normal `(time, seq)` order.
    Dispatch {
        /// The event's queue key.
        key: EventKey,
    },
    /// Remove the pending *delivery* under `key` — a lost message.
    Drop {
        /// The delivery's queue key.
        key: EventKey,
    },
    /// Enqueue a copy of the pending *delivery* under `key`, keeping the
    /// original — a network-duplicated message.
    Duplicate {
        /// The delivery's queue key.
        key: EventKey,
    },
    /// Take `node` down at the current instant (crash injection).
    Down {
        /// The node to fail.
        node: NodeIdx,
    },
    /// Bring `node` back up at the current instant.
    Up {
        /// The node to revive.
        node: NodeIdx,
    },
}

impl Choice {
    /// Whether this choice spends fault budget (everything except a
    /// plain reordered dispatch).
    pub fn is_fault(&self) -> bool {
        !matches!(self, Choice::Dispatch { .. })
    }

    /// Renders the stable one-line form.
    pub fn render(&self) -> String {
        match self {
            Choice::Dispatch { key } => {
                format!("dispatch {} {}", key.time.as_micros(), key.seq)
            }
            Choice::Drop { key } => format!("drop {} {}", key.time.as_micros(), key.seq),
            Choice::Duplicate { key } => format!("dup {} {}", key.time.as_micros(), key.seq),
            Choice::Down { node } => format!("down {node}"),
            Choice::Up { node } => format!("up {node}"),
        }
    }

    /// Parses one line of the replay format. Returns `None` on anything
    /// malformed (unknown verb, wrong arity, non-numeric field).
    pub fn parse(line: &str) -> Option<Choice> {
        let mut it = line.split_whitespace();
        let verb = it.next()?;
        let a = it.next()?.parse::<u64>().ok()?;
        let choice = match verb {
            "down" | "up" => {
                let node = a as NodeIdx;
                if verb == "down" {
                    Choice::Down { node }
                } else {
                    Choice::Up { node }
                }
            }
            "dispatch" | "drop" | "dup" => {
                let seq = it.next()?.parse::<u64>().ok()?;
                let key = EventKey {
                    time: SimTime::from_micros(a),
                    seq,
                };
                match verb {
                    "dispatch" => Choice::Dispatch { key },
                    "drop" => Choice::Drop { key },
                    _ => Choice::Duplicate { key },
                }
            }
            _ => return None,
        };
        if it.next().is_some() {
            return None;
        }
        Some(choice)
    }

    /// Renders a whole schedule, one line per choice, trailing newline.
    pub fn render_schedule(schedule: &[Choice]) -> String {
        let mut out = String::new();
        for c in schedule {
            out.push_str(&c.render());
            out.push('\n');
        }
        out
    }

    /// Parses a schedule: one choice per line, blank lines and lines
    /// starting with `#` skipped. `None` if any line is malformed.
    pub fn parse_schedule(text: &str) -> Option<Vec<Choice>> {
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push(Choice::parse(line)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(us: u64, seq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_micros(us),
            seq,
        }
    }

    #[test]
    fn round_trips_every_variant() {
        let schedule = vec![
            Choice::Dispatch { key: key(1234, 5) },
            Choice::Drop { key: key(0, 0) },
            Choice::Duplicate {
                key: key(u64::from(u32::MAX), 99),
            },
            Choice::Down { node: 3 },
            Choice::Up { node: 3 },
        ];
        let text = Choice::render_schedule(&schedule);
        assert_eq!(Choice::parse_schedule(&text), Some(schedule));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# counterexample\n\ndispatch 10 1\n  # inline\nup 0\n";
        assert_eq!(
            Choice::parse_schedule(text),
            Some(vec![
                Choice::Dispatch { key: key(10, 1) },
                Choice::Up { node: 0 }
            ])
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "dispatch 10",
            "drop ten 1",
            "dup 1 2 3",
            "down",
            "teleport 4",
            "up 1 extra",
        ] {
            assert_eq!(Choice::parse(bad), None, "{bad:?} should not parse");
        }
        assert_eq!(Choice::parse_schedule("dispatch 10 1\nbogus\n"), None);
    }

    #[test]
    fn fault_classification() {
        assert!(!Choice::Dispatch { key: key(1, 1) }.is_fault());
        for fault in [
            Choice::Drop { key: key(1, 1) },
            Choice::Duplicate { key: key(1, 1) },
            Choice::Down { node: 0 },
            Choice::Up { node: 0 },
        ] {
            assert!(fault.is_fault());
        }
    }
}
