#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Bounded model checking for the Totoro protocol stack.
//!
//! The chaos harness (DESIGN.md §9) probes the protocol with *random*
//! fault schedules; this crate climbs the next rung of the assurance
//! ladder and explores small configurations *exhaustively*: every
//! reordering of pending deliveries within a window, every drop /
//! duplicate / churn injection point, up to a bounded depth and fault
//! budget. The deterministic simulator is the state-transition oracle —
//! the checker never reimplements protocol semantics, it only steers
//! which queued event fires next through the exploration hooks on
//! [`totoro_simnet::Simulator`] (`pending_summaries`, `dispatch_pending`,
//! `drop_pending`, `duplicate_pending`).
//!
//! The crate is deliberately split from the worlds it checks:
//!
//! * [`schedule`] — the [`Choice`] alphabet and its stable one-line
//!   replay format. A counterexample is just a `Vec<Choice>`; replaying
//!   it through a fresh world deterministically reproduces the violation.
//! * [`hash`] — [`StableHasher`], the seed-free FNV-1a hasher canonical
//!   state digests are built with (visited-set dedup must not depend on
//!   `RandomState`).
//! * [`explore`] — the [`Explorer`]: depth-first search over choice
//!   prefixes with replay-from-prefix execution (the simulator is not
//!   cloneable), canonical-hash dedup, sleep-set pruning of commuting
//!   deliveries, and greedy counterexample minimization.
//!
//! Concrete worlds (the 4-node echo-forest configurations, the invariant
//! oracles) live in the bench crate next to the chaos harness; the
//! `totoro-mc` binary there is the command-line frontend. DESIGN.md §14
//! carries the exploration-strategy and soundness discussion.

pub mod explore;
pub mod hash;
pub mod schedule;

pub use explore::{Explorer, McConfig, Report, Stats, Violation, World};
pub use hash::StableHasher;
pub use schedule::Choice;
