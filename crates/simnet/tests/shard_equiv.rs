//! Differential tests pinning the shard-invariance contract
//! (DESIGN.md §13): for any schedule — including churn and keyed chaos —
//! running the *same* simulation on `--shards {1, 2, 4}` yields
//! byte-identical observables: event counts, final clock, per-zone
//! traffic ledgers, chaos statistics, per-node application state (folded
//! into an order-sensitive digest), and the merged JSONL trace. A fixed
//! scenario additionally pins the merged-trace digest to a constant so
//! the contract cannot drift silently; and a collision-free scenario is
//! cross-checked against the sequential [`Simulator`] on all
//! order-insensitive observables.

use proptest::prelude::*;
use totoro_simnet::obs::jsonl_trace;
use totoro_simnet::{
    keyed_unit, Application, ChaosStats, Ctx, Fault, FaultKind, FaultPlan, GeoPoint, LatencyModel,
    NodeIdx, NodeProfile, Payload, ShardedSim, SimDuration, SimTime, Simulator, Topology,
};

/// An `n`-node topology with `zones` round-robin regions and a fixed
/// `latency_us` delay between every pair (RNG-free, hence shardable).
fn zoned(n: usize, zones: usize, latency_us: u64) -> Topology {
    let regions: Vec<u16> = (0..n).map(|i| (i % zones) as u16).collect();
    Topology::from_parts(
        vec![GeoPoint::new(0.0, 0.0); n],
        regions,
        vec![NodeProfile::default(); n],
        LatencyModel::Uniform {
            min_us: latency_us,
            max_us: latency_us,
        },
    )
    .with_jitter(0.0)
}

/// FNV-1a — a stable digest independent of `std`'s hasher internals.
fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut h = if digest == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        digest
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[derive(Clone)]
struct Pkt(u64);

impl Payload for Pkt {
    fn size_bytes(&self) -> usize {
        24
    }
}

/// A messy-schedule generator: every timer firing sends to either the
/// global ring successor (usually crossing zones) or the same-zone
/// successor, chosen by a keyed hash of `(behavior_seed, me, round)` —
/// deterministic and RNG-free, so results must be shard-invariant.
struct Mixer {
    n: usize,
    zones: usize,
    rounds: u64,
    behavior: u64,
    fired: u64,
    recvd: u64,
    failed: u64,
    /// Order-sensitive fold of every callback this node observed.
    digest: u64,
}

impl Mixer {
    fn fold(&mut self, tag: u64, a: u64, b: u64) {
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&tag.to_le_bytes());
        buf[8..16].copy_from_slice(&a.to_le_bytes());
        buf[16..].copy_from_slice(&b.to_le_bytes());
        self.digest = fnv1a(self.digest, &buf);
    }
}

impl Application for Mixer {
    type Msg = Pkt;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Pkt>) {
        // Odd phase + even gaps + even latency: every application event
        // lands on an odd microsecond, so even-instant churn can never
        // collide with a delivery (the sequential cross-check relies on
        // this; shard-invariance holds regardless).
        let phase = 1 + 2 * ((ctx.me() as u64 * 31) % 488);
        ctx.set_timer(SimDuration::from_micros(phase), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, from: NodeIdx, msg: Pkt) {
        self.recvd += 1;
        self.fold(1, ctx.now().as_micros(), (from as u64) << 32 | msg.0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Pkt>, _token: u64) {
        let me = ctx.me();
        self.fired += 1;
        let u = keyed_unit(self.behavior, &[me as u64, self.fired]);
        let to = if u < 0.35 {
            (me + 1) % self.n // ring: usually crosses into the next zone
        } else {
            (me + self.zones) % self.n // same-zone successor
        };
        ctx.send(to, Pkt(self.fired));
        self.fold(2, ctx.now().as_micros(), to as u64);
        if self.fired < self.rounds {
            let gap = 2 * (1 + (me as u64 * 7 + self.fired * 13) % 750);
            ctx.set_timer(SimDuration::from_micros(gap), 0);
        }
    }

    fn on_send_failed(&mut self, ctx: &mut Ctx<'_, Pkt>, peer: NodeIdx) {
        self.failed += 1;
        self.fold(3, ctx.now().as_micros(), peer as u64);
    }
}

/// Everything observable from one run, for exact comparison.
#[derive(Debug, PartialEq)]
struct Observation {
    events: u64,
    now_us: u64,
    dropped_loss: u64,
    dropped_dead: u64,
    chaos: (u64, u64, u64),
    zones: Vec<(u64, u64, u64, u64, u64, u64)>,
    nodes: Vec<(u64, u64, u64, u64)>,
    trace: String,
}

#[derive(Clone, Debug)]
struct Scheme {
    n: usize,
    zones: usize,
    latency_us: u64,
    rounds: u64,
    seed: u64,
    loss_prob: f64,
    dup_prob: f64,
    churn: Vec<(usize, u64, u64)>,
}

fn fault_plan(s: &Scheme) -> FaultPlan {
    let horizon = SimTime::from_micros(40_000);
    let mut plan = FaultPlan::none();
    if s.loss_prob > 0.0 {
        plan = plan.with_fault(Fault::new(
            SimTime::ZERO,
            horizon,
            FaultKind::LossSpike { prob: s.loss_prob },
        ));
    }
    if s.dup_prob > 0.0 {
        plan = plan.with_fault(Fault::new(
            SimTime::ZERO,
            horizon,
            FaultKind::Duplicate { prob: s.dup_prob },
        ));
    }
    plan
}

fn run_scheme(s: &Scheme, shards: usize) -> Observation {
    let topo = zoned(s.n, s.zones, s.latency_us);
    let zones = topo.num_regions();
    let mut sim = ShardedSim::new(topo, s.seed, shards, |_| Mixer {
        n: s.n,
        zones: s.zones,
        rounds: s.rounds,
        behavior: s.seed ^ 0xDEC0,
        fired: 0,
        recvd: 0,
        failed: 0,
        digest: 0,
    })
    .expect("zoned topology is shardable")
    .with_tracing();
    sim.apply_plan(&fault_plan(s), s.seed);
    for &(node, down, up) in &s.churn {
        let node = node % s.n;
        sim.schedule_down(node, SimTime::from_micros(down));
        sim.schedule_up(node, SimTime::from_micros(down + up));
    }
    sim.run_to_quiescence();
    let ledger = sim.traffic();
    Observation {
        events: sim.events_processed(),
        now_us: sim.now().as_micros(),
        dropped_loss: sim.dropped_loss(),
        dropped_dead: sim.dropped_dead(),
        chaos: {
            let c = sim.chaos_stats();
            (c.dropped, c.duplicated, c.delayed)
        },
        zones: (0..zones)
            .map(|z| {
                let t = ledger.zone(z as u16);
                (
                    t.msgs_sent,
                    t.msgs_recv,
                    t.payload_sent,
                    t.payload_recv,
                    t.tcp_sent,
                    t.udp_sent,
                )
            })
            .collect(),
        nodes: sim
            .apps()
            .map(|a| (a.fired, a.recvd, a.failed, a.digest))
            .collect(),
        trace: jsonl_trace(&sim.take_trace()),
    }
}

proptest! {
    /// The tentpole invariant: arbitrary messy schedules — staggered
    /// timers, zone-crossing sends, churn atoms, keyed loss and
    /// duplication chaos — produce byte-identical observables (traces
    /// included) at 1, 2, and 4 shards.
    #[test]
    fn random_schedules_are_shard_invariant(
        n in 8usize..40,
        zones in 2usize..5,
        latency_us in 50u64..1_500,
        rounds in 1u64..5,
        seed in any::<u64>(),
        loss in 0u32..40,
        dup in 0u32..30,
        churn in proptest::collection::vec(
            (0usize..64, 1u64..20_000, 1u64..20_000), 0..4),
    ) {
        let scheme = Scheme {
            n,
            zones,
            latency_us,
            rounds,
            seed,
            loss_prob: f64::from(loss) / 100.0,
            dup_prob: f64::from(dup) / 100.0,
            churn,
        };
        let base = run_scheme(&scheme, 1);
        prop_assert_eq!(&base, &run_scheme(&scheme, 2));
        prop_assert_eq!(&base, &run_scheme(&scheme, 4));
    }
}

/// A fixed scenario whose merged-trace digest is pinned: shard counts 1,
/// 2, and 4 must agree with each other *and* with the constant, so the
/// contract (event keys, closed timestamps, trace merge order) cannot
/// drift without this test noticing.
#[test]
fn golden_trace_digest_is_pinned_across_shard_counts() {
    let scheme = Scheme {
        n: 30,
        zones: 3,
        latency_us: 700,
        rounds: 4,
        seed: 0x70707,
        loss_prob: 0.15,
        dup_prob: 0.10,
        churn: vec![(4, 911, 8_089), (17, 1_555, 6_001)],
    };
    let base = run_scheme(&scheme, 1);
    assert_eq!(base, run_scheme(&scheme, 2));
    assert_eq!(base, run_scheme(&scheme, 4));
    assert!(base.chaos.0 > 0 && base.chaos.1 > 0, "chaos must fire");
    assert!(base.dropped_dead > 0, "churn must drop something");
    let digest = fnv1a(0, base.trace.as_bytes());
    assert_eq!(
        digest, GOLDEN_TRACE_DIGEST,
        "merged trace changed; if intentional, update the pinned digest"
    );
}

/// Pinned by the test above (FNV-1a of the K=1 merged JSONL trace).
const GOLDEN_TRACE_DIGEST: u64 = 13_264_027_526_420_172_575;

/// Sequential cross-check on a collision-free schedule: fixed even
/// latency, odd timer phases and odd churn instants mean no Deliver ever
/// shares an instant with a Down/Up, so the sequential engine and the
/// sharded engine agree on every order-insensitive observable (the
/// closed-timestamp rule never fires because no action has zero delay).
#[test]
fn sharded_agrees_with_sequential_under_churn_and_keyed_chaos() {
    let n = 24;
    let zones = 3;
    let seed = 99;
    let rounds = 6;
    let make = |_: NodeIdx| Mixer {
        n,
        zones,
        rounds,
        behavior: seed ^ 0xDEC0,
        fired: 0,
        recvd: 0,
        failed: 0,
        digest: 0,
    };
    let plan = FaultPlan::none()
        .with_fault(Fault::new(
            SimTime::ZERO,
            SimTime::from_micros(30_000),
            FaultKind::LossSpike { prob: 0.2 },
        ))
        .with_fault(Fault::new(
            SimTime::ZERO,
            SimTime::from_micros(30_000),
            FaultKind::Duplicate { prob: 0.15 },
        ));
    let mut seq = Simulator::new(zoned(n, zones, 500), seed, make);
    seq.install_chaos(plan.keyed_injector(seed));
    seq.schedule_down(5, SimTime::from_micros(2_500));
    seq.schedule_up(5, SimTime::from_micros(10_500));
    assert!(seq.run_until_quiet(10_000_000));

    let mut sh = ShardedSim::new(zoned(n, zones, 500), seed, 3, make).unwrap();
    sh.apply_plan(&plan, seed);
    sh.schedule_down(5, SimTime::from_micros(2_500));
    sh.schedule_up(5, SimTime::from_micros(10_500));
    sh.run_to_quiescence();

    assert_eq!(seq.events_processed(), sh.events_processed());
    assert_eq!(seq.now(), sh.now());
    assert_eq!(seq.dropped_loss(), sh.dropped_loss());
    assert_eq!(seq.dropped_dead(), sh.dropped_dead());
    assert_eq!(seq.traffic().totals(), sh.traffic_totals());
    let seq_chaos = seq.chaos().expect("installed").stats;
    let sh_chaos: ChaosStats = sh.chaos_stats();
    assert_eq!(seq_chaos.dropped, sh_chaos.dropped);
    assert_eq!(seq_chaos.duplicated, sh_chaos.duplicated);
    // Order-insensitive per-node state: counts, not digests (same-instant
    // tie-break order may differ between the two engines).
    let seq_counts: Vec<(u64, u64, u64)> =
        seq.apps().map(|a| (a.fired, a.recvd, a.failed)).collect();
    let sh_counts: Vec<(u64, u64, u64)> = sh.apps().map(|a| (a.fired, a.recvd, a.failed)).collect();
    assert_eq!(seq_counts, sh_counts);
    assert!(seq_chaos.dropped > 0 && seq_chaos.duplicated > 0);
}
