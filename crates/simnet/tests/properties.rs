//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use totoro_simnet::traffic::{tcp_wire_bytes, udp_wire_bytes};
use totoro_simnet::{derive_seed, SimDuration, SimTime};

proptest! {
    /// Time arithmetic is associative/consistent in the saturating sense.
    #[test]
    fn time_add_sub_round_trip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!(((time + dur) - time).as_micros(), d);
        prop_assert_eq!(time.saturating_since(time + dur), SimDuration::ZERO);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    /// Duration addition is commutative and monotone.
    #[test]
    fn duration_laws(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x);
    }

    /// Wire sizes are monotone in payload and TCP always costs more than
    /// UDP, which always costs more than the payload itself.
    #[test]
    fn wire_size_laws(p in 0usize..10_000_000, q in 0usize..10_000_000) {
        prop_assert!(tcp_wire_bytes(p) > udp_wire_bytes(p));
        prop_assert!(udp_wire_bytes(p) >= p);
        if p <= q {
            prop_assert!(tcp_wire_bytes(p) <= tcp_wire_bytes(q));
            prop_assert!(udp_wire_bytes(p) <= udp_wire_bytes(q));
        }
    }

    /// Seed derivation is deterministic and label-sensitive.
    #[test]
    fn seed_derivation_laws(root in any::<u64>(), label in "[a-z]{0,16}") {
        prop_assert_eq!(derive_seed(root, &label), derive_seed(root, &label));
        prop_assert_ne!(derive_seed(root, &label), derive_seed(root ^ 1, &label));
    }

    /// Seconds conversion round-trips within a microsecond.
    #[test]
    fn secs_conversion(us in 0u64..10_000_000_000u64) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_micros().abs_diff(us);
        prop_assert!(diff <= 1 + us / 1_000_000_000, "diff {diff}");
    }
}
