//! Differential tests pinning the [`EventQueue`] equivalence contract:
//! for any schedule, [`HeapQueue`] and [`WheelQueue`] yield the identical
//! `(time, seq)` → slot sequence, so swapping the simulator's queue can
//! never change a result byte. Random schedules (including re-arming
//! rotations, cancellations, wheel-overflow spill, and same-bucket ties)
//! are replayed through both queues, and whole simulations are run once
//! per queue and compared field for field.

use proptest::prelude::*;
use totoro_simnet::queue::{EventKey, EventQueue, HeapQueue, WheelQueue};
use totoro_simnet::sim::{Application, Ctx, Payload, Simulator};
use totoro_simnet::{
    ChurnSchedule, NodeIdx, NoopSink, SimDuration, SimTime, Topology, TrialReport,
};

/// One step of a random schedule, mirroring how the simulator drives its
/// queue: pushes are clamped to the current time, pops advance it.
#[derive(Clone, Debug)]
enum Op {
    /// Push an event `delta` µs after the current time.
    Push { delta: u64 },
    /// Pop the head (a no-op on an empty queue).
    Pop,
    /// Pop the head only if due within `window` µs of the current time.
    PopBefore { window: u64 },
    /// Pop the head and re-arm it `delta` µs later under a fresh seq — a
    /// timer rotation. Dropping the popped identity is a cancellation.
    Rotate { delta: u64 },
}

/// Decodes a `(selector, raw)` pair into an [`Op`]. Push deltas span all
/// three queue bands: same-bucket ties (< 64 µs), the wheel window
/// (~65 ms), and far-future overflow spill.
fn decode(sel: u8, raw: u64) -> Op {
    match sel {
        0 => Op::Push { delta: raw % 64 },
        1 => Op::Push {
            delta: 64 + raw % 70_000,
        },
        2 => Op::Push {
            delta: 70_000 + raw % 130_000,
        },
        3 => Op::Push {
            delta: 10_000_000 + raw % 90_000_000,
        },
        4 | 5 => Op::Pop,
        6 => Op::PopBefore {
            window: raw % 150_000,
        },
        _ => Op::Rotate {
            delta: raw % 200_000,
        },
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, any::<u64>()).prop_map(|(sel, raw)| decode(sel, raw))
}

/// Replays `ops` through both queues in lockstep, asserting every
/// observation — peeks, pops, lengths — is identical.
fn replay(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut heap = HeapQueue::with_capacity(16);
    let mut wheel = WheelQueue::with_capacity(16);
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut slot = 0u32;
    for op in ops {
        match op {
            Op::Push { delta } => {
                let key = EventKey {
                    time: SimTime::from_micros(now + delta),
                    seq,
                };
                heap.push(key, slot);
                wheel.push(key, slot);
                seq += 1;
                slot = slot.wrapping_add(1);
            }
            Op::Pop => {
                let (h, w) = (heap.pop(), wheel.pop());
                prop_assert_eq!(h, w);
                if let Some((key, _)) = h {
                    prop_assert!(key.time.as_micros() >= now, "time went backwards");
                    now = key.time.as_micros();
                }
            }
            Op::PopBefore { window } => {
                let deadline = SimTime::from_micros(now + window);
                let (h, w) = (heap.pop_before(deadline), wheel.pop_before(deadline));
                prop_assert_eq!(h, w);
                if let Some((key, _)) = h {
                    prop_assert!(key.time <= deadline, "popped past the deadline");
                    now = key.time.as_micros();
                }
            }
            Op::Rotate { delta } => {
                let (h, w) = (heap.pop(), wheel.pop());
                prop_assert_eq!(h, w);
                if let Some((key, s)) = h {
                    now = key.time.as_micros();
                    let rekey = EventKey {
                        time: SimTime::from_micros(now + delta),
                        seq,
                    };
                    heap.push(rekey, s);
                    wheel.push(rekey, s);
                    seq += 1;
                }
            }
        }
        prop_assert_eq!(heap.len(), wheel.len());
        prop_assert_eq!(heap.peek(), wheel.peek());
    }
    // Drain whatever remains: the tails must agree too.
    loop {
        let (h, w) = (heap.pop(), wheel.pop());
        prop_assert_eq!(h, w);
        if h.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    /// Random push/pop/pop_before/rotate interleavings drain identically
    /// from heap and wheel, spill bands included.
    #[test]
    fn heap_and_wheel_agree_on_random_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        replay(&ops)?;
    }

    /// Dense same-time ties: many keys share one due time, so ordering
    /// falls entirely to `seq` — the batched-delivery grouping case.
    #[test]
    fn ties_resolve_by_seq_identically(
        times in proptest::collection::vec(0u64..256, 2..64),
        pops in 1usize..32
    ) {
        let mut heap = HeapQueue::with_capacity(16);
        let mut wheel = WheelQueue::with_capacity(16);
        for (seq, t) in times.iter().enumerate() {
            let key = EventKey { time: SimTime::from_micros(*t), seq: seq as u64 };
            heap.push(key, seq as u32);
            wheel.push(key, seq as u32);
        }
        for _ in 0..pops {
            prop_assert_eq!(heap.pop(), wheel.pop());
        }
        // Late pushes below the already-drained horizon still order
        // correctly against the surviving entries.
        let reseq = times.len() as u64;
        for (i, t) in times.iter().take(8).enumerate() {
            let key = EventKey { time: SimTime::from_micros(*t), seq: reseq + i as u64 };
            heap.push(key, 1_000 + i as u32);
            wheel.push(key, 1_000 + i as u32);
        }
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            prop_assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }
}

// --------------------------------------------------------- sim level ----

/// A ring protocol with periodic timers: exercises sends, re-arming
/// timers, failure bounces, and churn — every enqueue source at once.
struct RingNode {
    n: usize,
    hops_left: u64,
    ticks: u64,
}

#[derive(Clone)]
struct Token(u64);

impl Payload for Token {
    fn size_bytes(&self) -> usize {
        64
    }
}

impl Application for RingNode {
    type Msg = Token;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
        if ctx.me() == 0 {
            ctx.send(1 % self.n, Token(1));
        }
        ctx.set_timer(SimDuration::from_micros(500 + ctx.me() as u64 * 37), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeIdx, msg: Token) {
        if msg.0 < self.hops_left {
            ctx.send((ctx.me() + 1) % self.n, Token(msg.0 + 1));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Token>, token: u64) {
        self.ticks += 1;
        if self.ticks < 50 {
            // Re-arm with a drifting stride so firings spread over buckets.
            ctx.set_timer(SimDuration::from_micros(300 + self.ticks * 91), token);
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Token>) {
        ctx.set_timer(SimDuration::from_micros(200), 1);
    }
}

fn run_ring<Q: EventQueue>(seed: u64, churn: bool) -> TrialReport {
    let n = 24;
    let topology = Topology::uniform(n, 800, 9_000).with_loss(0.01);
    let mut sim =
        Simulator::<RingNode, NoopSink, Q>::with_queue(topology, seed, NoopSink, |_| RingNode {
            n,
            hops_left: 400,
            ticks: 0,
        });
    if churn {
        let candidates: Vec<NodeIdx> = (0..n).collect();
        let mut churn_rng = totoro_simnet::sub_rng(seed, "queue-equiv-churn");
        let schedule = ChurnSchedule::continuous(
            &candidates,
            SimTime::from_micros(1_000),
            SimTime::from_micros(40_000),
            SimDuration::from_micros(4_000),
            SimDuration::from_micros(15_000),
            &mut churn_rng,
        );
        schedule.apply(&mut sim);
    }
    sim.run_until_quiet(2_000_000);
    TrialReport::capture(&sim)
}

/// The full simulator — sends, timers, churn, bounces, drops — produces an
/// identical trial report on both queue implementations.
#[test]
fn simulations_agree_across_queues() {
    for seed in [1u64, 7, 42] {
        for churn in [false, true] {
            let heap = run_ring::<HeapQueue>(seed, churn);
            let wheel = run_ring::<WheelQueue>(seed, churn);
            assert_eq!(
                heap.to_json(),
                wheel.to_json(),
                "seed {seed} churn {churn}: heap and wheel diverged"
            );
        }
    }
}

/// `step_before` honours deadlines identically on both queues, including
/// refusing not-yet-due heads without disturbing them.
#[test]
fn step_before_deadlines_agree_across_queues() {
    fn drive<Q: EventQueue>() -> Vec<(Option<u64>, usize)> {
        let topology = Topology::uniform(6, 1_000, 2_000);
        let mut sim =
            Simulator::<RingNode, NoopSink, Q>::with_queue(topology, 3, NoopSink, |_| RingNode {
                n: 6,
                hops_left: 40,
                ticks: 0,
            });
        let mut observed = Vec::new();
        let mut deadline = 0u64;
        loop {
            let t = sim.step_before(SimTime::from_micros(deadline));
            observed.push((t.map(|t| t.as_micros()), sim.pending_events()));
            match t {
                Some(_) => {}
                None if sim.pending_events() == 0 => break,
                None => deadline += 700,
            }
            if observed.len() > 100_000 {
                break;
            }
        }
        observed
    }
    assert_eq!(drive::<HeapQueue>(), drive::<WheelQueue>());
}
