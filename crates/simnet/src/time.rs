//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is measured in integer microseconds since the start of the
//! simulation. Using integers keeps event ordering exact and the simulation
//! bit-reproducible across runs and platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use totoro_simnet::{SimDuration, SimTime};
///
/// let t = SimTime::from_micros(1_000_000) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns this instant advanced by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1_000_000.0).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns this duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(1_500_000);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 1_750_000);
        assert_eq!(((t + d) - t).as_millis(), 250);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturation_at_extremes() {
        let near_max = SimTime::from_micros(u64::MAX - 1);
        assert_eq!(near_max + SimDuration::from_secs(10), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_micros(5), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros(u64::MAX).saturating_mul(2),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_micros(1_234_567).to_string(), "1.234567s");
    }
}
