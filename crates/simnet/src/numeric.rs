//! Canonical-order float reductions (DESIGN.md §16).
//!
//! IEEE 754 addition is not associative: `(a + b) + c` and `a + (b + c)`
//! can differ in the last ulp, so a float sum folded in incidental order
//! (hash-map iteration, shard interleaving, rayon-style reduction trees)
//! breaks the byte-identity contract across `--shards`. This module is
//! the one sanctioned home for order-sensitive f32/f64 reductions
//! (detlint DET009): every helper folds **left-to-right over the order
//! the caller hands in**, which the caller must derive from canonical
//! simulation state (a `Vec` built in event order, a `BTreeMap` range,
//! an index loop) — never from an unordered container.
//!
//! Exactly commutative-and-associative float ops (`min`/`max`) do not
//! need these helpers; sites using them carry their own
//! `det: allow(float: …)` commutativity proof instead.

/// Left-to-right sum of an `f64` stream in the caller's canonical order.
pub fn sum_f64<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut acc = 0.0f64;
    for x in xs {
        acc += x;
    }
    acc
}

/// Left-to-right sum of an `f32` stream in the caller's canonical order.
pub fn sum_f32<I: IntoIterator<Item = f32>>(xs: I) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += x;
    }
    acc
}

/// Left-to-right arithmetic mean of an `f64` stream; 0.0 for an empty
/// stream (the convention every report column in this workspace uses).
pub fn mean_f64<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut acc = 0.0f64;
    let mut n = 0u64;
    for x in xs {
        acc += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_fold_left_to_right() {
        // A sequence chosen so reassociation changes the result: the
        // helpers must match a plain sequential fold bit-for-bit.
        let xs = [1.0e16, 1.0, -1.0e16, 1.0];
        let mut seq = 0.0f64;
        for x in xs {
            seq += x;
        }
        assert_eq!(sum_f64(xs).to_bits(), seq.to_bits());
        // Reassociated order differs — that is the hazard DET009 exists for.
        let reassoc: f64 = (1.0e16 + -1.0e16) + (1.0 + 1.0);
        assert_ne!(sum_f64(xs).to_bits(), reassoc.to_bits());
    }

    #[test]
    fn f32_sum_and_mean_conventions() {
        assert_eq!(sum_f32([0.5f32, 0.25, 0.25]), 1.0);
        assert_eq!(mean_f64([2.0, 4.0]), 3.0);
        assert_eq!(mean_f64(std::iter::empty()), 0.0);
    }
}
