//! Composable deterministic fault injection and live invariant checking.
//!
//! DESIGN.md names the goal directly: "kill nodes mid-round and verify
//! recovery" under "churn schedules, link-loss spikes, straggler
//! injection". This module supplies the two halves of that harness:
//!
//! * A [`FaultPlan`] — a composable list of windowed [`Fault`]s (Bernoulli
//!   link-loss spikes, zone partitions, per-node straggler delay
//!   multipliers, message duplication) plus a [`ChurnSchedule`]. Plans are
//!   pure data: they merge, they shrink (drop one atom at a time), and they
//!   compile into a [`ChaosInjector`] whose every stochastic decision comes
//!   from a per-fault RNG stream derived from the fault's *content*, so a
//!   fault behaves identically whether its plan runs alone or merged into a
//!   larger one, and every run is reproducible from `(plan, seed)`.
//! * An [`Invariant`] trait evaluated live at configurable sim-time
//!   checkpoints by [`run_with_invariants`] — FoundationDB-style continuous
//!   checking rather than a single end-of-run assertion. Invariants declare
//!   a [`InvariantPhase`]: `Always` oracles (e.g. aggregation conservation)
//!   run at every checkpoint, `Quiescent` oracles (e.g. routing
//!   consistency, tree coverage) only after the last fault has cleared and
//!   the protocols had time to repair.
//!
//! The injector is consulted in the simulator's send path *after* the
//! normal loss/delay sampling, so installing no chaos leaves the main RNG
//! stream — and therefore every golden fixture — untouched.

use rand::rngs::StdRng;
use rand::Rng;

use crate::churn::ChurnSchedule;
use crate::rng::sub_rng;
use crate::sim::{Application, Simulator};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeIdx, Topology};

/// The kind of one injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Bernoulli link loss: every message sent while the fault is active is
    /// dropped with probability `prob` (on top of the topology's base loss).
    LossSpike {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// Network partition by zone: messages crossing the boundary between
    /// the listed topology regions and the rest of the network are dropped.
    Partition {
        /// Topology regions on one side of the cut.
        zones: Vec<u16>,
    },
    /// Stragglers: network delay to or from the listed nodes is multiplied
    /// by `factor` (modelling slow uplinks / overloaded devices that lag
    /// without failing).
    Straggler {
        /// The lagging nodes.
        nodes: Vec<NodeIdx>,
        /// Delay multiplier (≥ 1).
        factor: u64,
    },
    /// Message duplication: every message sent while the fault is active is
    /// delivered twice with probability `prob` (modelling retransmission
    /// bugs / at-least-once transports).
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
}

/// One windowed fault: `kind` is active for `from <= now < until`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fault {
    /// When the fault starts.
    pub from: SimTime,
    /// When the fault clears (exclusive).
    pub until: SimTime,
    /// What the fault does.
    pub kind: FaultKind,
}

impl Fault {
    /// Builds a fault active over `[from, until)`.
    pub fn new(from: SimTime, until: SimTime, kind: FaultKind) -> Self {
        assert!(from <= until, "fault window ends before it starts");
        Fault { from, until, kind }
    }

    /// A stable, content-derived label naming this fault.
    ///
    /// The label seeds the fault's private RNG stream (via
    /// [`crate::rng::derive_seed`]), so it depends only on *what* the fault
    /// is — never on its position in a plan. Merging plans therefore
    /// preserves every fault's random stream exactly.
    pub fn label(&self) -> String {
        let window = format!("@{}..{}", self.from.as_micros(), self.until.as_micros());
        match &self.kind {
            FaultKind::LossSpike { prob } => format!("loss[{prob}]{window}"),
            FaultKind::Partition { zones } => format!("partition[{zones:?}]{window}"),
            FaultKind::Straggler { nodes, factor } => {
                format!("straggler[x{factor},{nodes:?}]{window}")
            }
            FaultKind::Duplicate { prob } => format!("dup[{prob}]{window}"),
        }
    }
}

/// A composable, seed-reproducible fault schedule: windowed faults plus a
/// churn schedule. The unit of composition (and of shrinking) is an *atom*:
/// each fault is one atom, the churn schedule (when non-empty) is one more.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    churn: ChurnSchedule,
}

impl FaultPlan {
    /// An empty plan (no faults, no churn).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds one fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Merges `churn` into the plan's churn schedule.
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        self.churn = std::mem::take(&mut self.churn).merge(churn);
        self
    }

    /// Merges two plans: the union of their faults and churn events.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.faults.extend(other.faults);
        self.churn = std::mem::take(&mut self.churn).merge(other.churn);
        self
    }

    /// The plan's faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The plan's churn schedule.
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Number of shrinkable atoms: one per fault, plus one when the churn
    /// schedule is non-empty.
    pub fn atom_count(&self) -> usize {
        self.faults.len() + usize::from(!self.churn.is_empty())
    }

    /// Human-readable label of atom `i` (faults first, churn last).
    pub fn atom_label(&self, i: usize) -> String {
        if i < self.faults.len() {
            self.faults[i].label()
        } else {
            format!(
                "churn[{} events,{} nodes]",
                self.churn.events().len(),
                self.churn.nodes_affected()
            )
        }
    }

    /// Labels of every atom, in atom order.
    pub fn describe(&self) -> Vec<String> {
        (0..self.atom_count()).map(|i| self.atom_label(i)).collect()
    }

    /// The plan restricted to the atoms where `mask` is `true` (`mask`
    /// indexes atoms as [`FaultPlan::atom_label`] does). The backbone of
    /// greedy shrinking: drop one atom, re-run, keep the drop if the
    /// violation persists.
    pub fn retain_atoms(&self, mask: &[bool]) -> FaultPlan {
        assert_eq!(mask.len(), self.atom_count(), "mask covers every atom");
        let faults = self
            .faults
            .iter()
            .zip(mask)
            .filter(|(_, &keep)| keep)
            .map(|(f, _)| f.clone())
            .collect();
        let churn = if mask.last().copied().unwrap_or(false) && !self.churn.is_empty() {
            self.churn.clone()
        } else {
            ChurnSchedule::none()
        };
        FaultPlan { faults, churn }
    }

    /// When the last fault (or churn event) clears; [`SimTime::ZERO`] for an
    /// empty plan. Quiescent invariants should only be evaluated after this
    /// plus a protocol-dependent settle time.
    pub fn last_fault_clear(&self) -> SimTime {
        let faults = self.faults.iter().map(|f| f.until).max();
        let churn = self.churn.last_event_at();
        faults.max(churn).unwrap_or(SimTime::ZERO)
    }

    /// Compiles the plan's faults into an injector whose per-fault RNG
    /// streams derive from `(seed, fault label)`.
    pub fn injector(&self, seed: u64) -> ChaosInjector {
        ChaosInjector {
            streams: self
                .faults
                .iter()
                .map(|f| FaultStream {
                    rng: sub_rng(seed, &f.label()),
                    key: None,
                    fault: f.clone(),
                })
                .collect(),
            stats: ChaosStats::default(),
        }
    }

    /// Compiles the plan's faults into a *keyed* injector: every stochastic
    /// decision (loss-spike drop, duplication) is a pure hash of
    /// `(seed, fault label, send time, src, dst)` rather than the next draw
    /// of a sequential stream — see [`crate::rng::keyed_unit`].
    ///
    /// A keyed injector decides each send independently of every other
    /// send, so the decisions do not depend on the global dispatch order.
    /// That makes it the only injector form the sharded engine
    /// ([`crate::shard`]) accepts: per-shard copies compiled from the same
    /// `(plan, seed)` reach identical verdicts for identical sends at any
    /// shard count. Partition and Straggler faults are stateless in both
    /// forms. The price is a different (but equally reproducible) fault
    /// realization than [`FaultPlan::injector`] for the same seed.
    pub fn keyed_injector(&self, seed: u64) -> ChaosInjector {
        ChaosInjector {
            streams: self
                .faults
                .iter()
                .map(|f| {
                    let label = f.label();
                    FaultStream {
                        rng: sub_rng(seed, &label),
                        key: Some(crate::rng::derive_seed(seed, &label)),
                        fault: f.clone(),
                    }
                })
                .collect(),
            stats: ChaosStats::default(),
        }
    }

    /// Installs the whole plan on `sim`: the fault injector (seeded from
    /// `seed`) plus the churn schedule's down/up events.
    pub fn apply<A: Application, S: crate::obs::TraceSink, Q: crate::queue::EventQueue>(
        &self,
        sim: &mut Simulator<A, S, Q>,
        seed: u64,
    ) {
        sim.install_chaos(self.injector(seed));
        self.churn.apply(sim);
    }
}

/// One compiled fault with its private random stream (or, in keyed mode,
/// a hash key replacing the stream for stochastic decisions).
struct FaultStream {
    fault: Fault,
    rng: StdRng,
    /// `Some(k)` switches this fault's stochastic decisions to pure
    /// `keyed_unit(k, [now, src, dst])` hashes (order-independent).
    key: Option<u64>,
}

/// Counters of what the injector actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages dropped by loss spikes or partitions.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages whose delay was inflated by a straggler fault.
    pub delayed: u64,
}

/// The injector's decision about one message send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendVerdict {
    /// Drop the message.
    pub drop: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Multiply the sampled network delay by this factor (≥ 1).
    pub delay_factor: u64,
}

/// Compiled fault state consulted by the simulator on every message send.
///
/// Every active fault is evaluated on every send — no short-circuiting —
/// so each fault's stream position depends only on the send sequence, never
/// on which other faults are present. That is what makes plan merging
/// preserve per-stream determinism.
pub struct ChaosInjector {
    streams: Vec<FaultStream>,
    /// What the injector has done so far.
    pub stats: ChaosStats,
}

/// One unit-interval sample for a fault's stochastic decision: the next
/// stream draw in stream mode, a pure hash of the send coordinates in
/// keyed mode.
#[inline]
fn unit_sample(s: &mut FaultStream, now: SimTime, src: NodeIdx, dst: NodeIdx) -> f64 {
    match s.key {
        Some(k) => crate::rng::keyed_unit(k, &[now.as_micros(), src as u64, dst as u64]),
        None => s.rng.gen::<f64>(),
    }
}

impl ChaosInjector {
    /// Whether this injector was compiled with
    /// [`FaultPlan::keyed_injector`] (every stochastic decision a pure
    /// hash, safe under sharded execution).
    pub fn is_keyed(&self) -> bool {
        self.streams.iter().all(|s| s.key.is_some())
    }

    /// Decides the fate of one message sent at `now` from `src` to `dst`.
    pub fn on_send(
        &mut self,
        now: SimTime,
        src: NodeIdx,
        dst: NodeIdx,
        topology: &Topology,
    ) -> SendVerdict {
        let mut verdict = SendVerdict {
            drop: false,
            duplicate: false,
            delay_factor: 1,
        };
        for s in &mut self.streams {
            let active = now >= s.fault.from && now < s.fault.until;
            match &s.fault.kind {
                FaultKind::LossSpike { prob } => {
                    // Draw only while the window is open: the stream then
                    // advances one step per in-window send, independent of
                    // every other fault. Keyed mode hashes the send
                    // coordinates instead, consuming no stream at all.
                    let prob = *prob;
                    if active && unit_sample(s, now, src, dst) < prob {
                        verdict.drop = true;
                    }
                }
                FaultKind::Partition { zones } => {
                    if active {
                        let src_in = zones.contains(&topology.region(src));
                        let dst_in = zones.contains(&topology.region(dst));
                        if src_in != dst_in {
                            verdict.drop = true;
                        }
                    }
                }
                FaultKind::Straggler { nodes, factor } => {
                    if active && (nodes.contains(&src) || nodes.contains(&dst)) {
                        verdict.delay_factor = verdict.delay_factor.max((*factor).max(1));
                    }
                }
                FaultKind::Duplicate { prob } => {
                    let prob = *prob;
                    if active && unit_sample(s, now, src, dst) < prob {
                        verdict.duplicate = true;
                    }
                }
            }
        }
        if verdict.drop {
            self.stats.dropped += 1;
        } else {
            if verdict.duplicate {
                self.stats.duplicated += 1;
            }
            if verdict.delay_factor > 1 {
                self.stats.delayed += 1;
            }
        }
        verdict
    }
}

/// A message filter for protocol-aware sabotage: return `true` to drop.
///
/// This is the "deliberately injected bug" hook of the chaos harness —
/// e.g. "drop every repair JOIN" — kept separate from [`ChaosInjector`]
/// (which is message-type-agnostic) so oracles can be validated against
/// known-bad protocol behaviour.
pub type FaultFilter<M> = Box<dyn FnMut(SimTime, NodeIdx, NodeIdx, &M) -> bool + Send>;

/// When an invariant is eligible for evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantPhase {
    /// At every checkpoint, faults active or not.
    Always,
    /// Only once the last fault has cleared and the settle time passed
    /// (`now >= quiesce_at` in [`CheckpointConfig`]).
    Quiescent,
}

/// One recorded invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that fired.
    pub invariant: String,
    /// Simulated time of the failing checkpoint.
    pub at: SimTime,
    /// What exactly was wrong.
    pub detail: String,
}

/// A live protocol oracle, evaluated at sim-time checkpoints while (and
/// after) faults fire.
///
/// Implementations may keep state across checkpoints (e.g. "coverage held
/// at the previous checkpoint, so repair traffic must have stopped"), which
/// is why `check` takes `&mut self`.
pub trait Invariant<
    A: Application,
    S: crate::obs::TraceSink = crate::obs::NoopSink,
    Q: crate::queue::EventQueue = crate::queue::WheelQueue,
>
{
    /// Short stable name, used in violation reports.
    fn name(&self) -> &'static str;

    /// When this invariant may be evaluated.
    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Always
    }

    /// Checks the invariant against the current simulator state, returning
    /// a human-readable description of the violation if it does not hold.
    fn check(&mut self, sim: &Simulator<A, S, Q>) -> Result<(), String>;
}

/// Checkpoint schedule for [`run_with_invariants`].
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Gap between invariant checkpoints.
    pub every: SimDuration,
    /// When the run ends.
    pub end: SimTime,
    /// When `Quiescent` invariants become eligible (last fault clear plus a
    /// protocol settle time; see [`FaultPlan::last_fault_clear`]).
    pub quiesce_at: SimTime,
}

/// Runs `sim` to `cfg.end`, pausing every `cfg.every` of simulated time to
/// (1) let `driver` inject experiment work (e.g. broadcast the next FL
/// round) and (2) evaluate every eligible invariant.
///
/// Each invariant records at most its *first* violation — after firing it
/// is retired, so a persistent breakage yields one report, not hundreds.
/// Returns all recorded violations in checkpoint order.
pub fn run_with_invariants<
    A: Application,
    S: crate::obs::TraceSink,
    Q: crate::queue::EventQueue,
>(
    sim: &mut Simulator<A, S, Q>,
    cfg: &CheckpointConfig,
    invariants: &mut [Box<dyn Invariant<A, S, Q> + '_>],
    mut driver: impl FnMut(&mut Simulator<A, S, Q>),
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut tripped = vec![false; invariants.len()];
    let mut checkpoint = sim.now();
    while checkpoint < cfg.end {
        checkpoint = (checkpoint + cfg.every).min(cfg.end);
        sim.run_until(checkpoint);
        driver(sim);
        for (k, inv) in invariants.iter_mut().enumerate() {
            if tripped[k] {
                continue;
            }
            let eligible = match inv.phase() {
                InvariantPhase::Always => true,
                InvariantPhase::Quiescent => sim.now() >= cfg.quiesce_at,
            };
            if !eligible {
                continue;
            }
            if let Err(detail) = inv.check(sim) {
                tripped[k] = true;
                violations.push(Violation {
                    invariant: inv.name().to_string(),
                    at: sim.now(),
                    detail,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    fn loss_fault() -> Fault {
        Fault::new(t(10), t(20), FaultKind::LossSpike { prob: 0.5 })
    }

    fn dup_fault() -> Fault {
        Fault::new(t(12), t(30), FaultKind::Duplicate { prob: 0.3 })
    }

    fn straggler_fault() -> Fault {
        Fault::new(
            t(5),
            t(25),
            FaultKind::Straggler {
                nodes: vec![1, 3],
                factor: 8,
            },
        )
    }

    /// A synthetic send sequence spanning before/during/after the windows.
    fn send_sequence() -> Vec<(SimTime, NodeIdx, NodeIdx)> {
        let mut rng = sub_rng(99, "chaos-test-sends");
        (0..400)
            .map(|k| {
                let at = SimTime::from_micros(k * 100_000); // 0..40s
                let src = rng.gen_range(0..8usize);
                let dst = rng.gen_range(0..8usize);
                (at, src, dst)
            })
            .collect()
    }

    fn verdicts(plan: &FaultPlan, seed: u64) -> Vec<SendVerdict> {
        let topo = Topology::uniform(8, 1_000, 2_000);
        let mut inj = plan.injector(seed);
        send_sequence()
            .into_iter()
            .map(|(at, s, d)| inj.on_send(at, s, d, &topo))
            .collect()
    }

    #[test]
    fn injector_is_seed_reproducible() {
        let plan = FaultPlan::none()
            .with_fault(loss_fault())
            .with_fault(dup_fault());
        assert_eq!(verdicts(&plan, 7), verdicts(&plan, 7));
        assert_ne!(verdicts(&plan, 7), verdicts(&plan, 8));
    }

    #[test]
    fn keyed_injector_is_order_independent() {
        // The keyed form's defining property: the verdict for a send is a
        // pure function of (seed, fault, now, src, dst). Evaluate a send
        // sequence forward and backward — per-send verdicts must agree,
        // which is exactly what lets shards evaluate their local sends
        // without a globally ordered stream.
        let plan = FaultPlan::none()
            .with_fault(loss_fault())
            .with_fault(dup_fault())
            .with_fault(straggler_fault());
        let topo = Topology::uniform(8, 1_000, 2_000);
        let sends = send_sequence();
        let mut fwd_inj = plan.keyed_injector(9);
        assert!(fwd_inj.is_keyed());
        assert!(!plan.injector(9).is_keyed());
        let fwd: Vec<SendVerdict> = sends
            .iter()
            .map(|&(at, s, d)| fwd_inj.on_send(at, s, d, &topo))
            .collect();
        let mut rev_inj = plan.keyed_injector(9);
        let mut rev: Vec<SendVerdict> = sends
            .iter()
            .rev()
            .map(|&(at, s, d)| rev_inj.on_send(at, s, d, &topo))
            .collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(fwd_inj.stats, rev_inj.stats);
        // And it actually does something within the windows.
        assert!(fwd_inj.stats.dropped > 0, "loss spike never fired");
        assert!(fwd_inj.stats.duplicated > 0, "duplication never fired");
        assert!(fwd_inj.stats.delayed > 0, "straggler never fired");
    }

    #[test]
    fn keyed_injector_is_seed_sensitive_and_windowed() {
        let plan = FaultPlan::none().with_fault(loss_fault());
        let topo = Topology::uniform(8, 1_000, 2_000);
        let verdicts_at = |seed: u64| -> Vec<bool> {
            let mut inj = plan.keyed_injector(seed);
            send_sequence()
                .into_iter()
                .map(|(at, s, d)| inj.on_send(at, s, d, &topo).drop)
                .collect()
        };
        assert_eq!(verdicts_at(1), verdicts_at(1));
        assert_ne!(verdicts_at(1), verdicts_at(2));
        // Outside the window nothing fires regardless of hash values.
        let mut inj = plan.keyed_injector(1);
        for probe in [t(0), t(9), t(20), t(500)] {
            assert!(!inj.on_send(probe, 2, 6, &topo).drop);
        }
    }

    /// The satellite property: merging two plans preserves each fault's
    /// private RNG stream. Plan A's drops and plan B's duplicates are
    /// bit-identical whether the plans run alone or merged.
    #[test]
    fn merging_plans_preserves_per_stream_determinism() {
        let a = FaultPlan::none().with_fault(loss_fault());
        let b = FaultPlan::none()
            .with_fault(dup_fault())
            .with_fault(straggler_fault());
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.atom_count(), 3);

        let va = verdicts(&a, 42);
        let vb = verdicts(&b, 42);
        let vm = verdicts(&merged, 42);
        for k in 0..va.len() {
            // A is the only drop source; B the only duplicate/delay source.
            assert_eq!(vm[k].drop, va[k].drop, "send {k}: loss stream perturbed");
            assert_eq!(
                vm[k].duplicate, vb[k].duplicate,
                "send {k}: dup stream perturbed"
            );
            assert_eq!(
                vm[k].delay_factor, vb[k].delay_factor,
                "send {k}: straggler perturbed"
            );
        }
        // Merge order does not matter either.
        let vm2 = verdicts(&b.merge(a), 42);
        assert_eq!(vm, vm2);
    }

    #[test]
    fn faults_are_silent_outside_their_window() {
        let plan = FaultPlan::none()
            .with_fault(loss_fault())
            .with_fault(dup_fault())
            .with_fault(straggler_fault());
        let topo = Topology::uniform(8, 1_000, 2_000);
        let mut inj = plan.injector(3);
        for probe in [t(0), t(4), t(35), t(100)] {
            let v = inj.on_send(probe, 1, 3, &topo);
            assert_eq!(
                v,
                SendVerdict {
                    drop: false,
                    duplicate: false,
                    delay_factor: 1
                },
                "verdict at {probe:?}"
            );
        }
        assert_eq!(inj.stats, ChaosStats::default());
    }

    #[test]
    fn partition_cuts_only_cross_boundary_links() {
        let topo = Topology::uniform(4, 1_000, 2_000); // All regions are 0.
        let plan = FaultPlan::none().with_fault(Fault::new(
            t(0),
            t(10),
            FaultKind::Partition { zones: vec![1] },
        ));
        let mut inj = plan.injector(0);
        // No node is in zone 1, so nothing crosses the boundary.
        assert!(!inj.on_send(t(1), 0, 2, &topo).drop);
        let plan = FaultPlan::none().with_fault(Fault::new(
            t(0),
            t(10),
            FaultKind::Partition { zones: vec![0] },
        ));
        let mut inj = plan.injector(0);
        // Every node is inside the cut set: intra-set traffic survives.
        assert!(!inj.on_send(t(1), 0, 2, &topo).drop);
    }

    #[test]
    fn straggler_scales_delay_without_rng() {
        let topo = Topology::uniform(8, 1_000, 2_000);
        let plan = FaultPlan::none().with_fault(straggler_fault());
        let mut inj = plan.injector(11);
        assert_eq!(inj.on_send(t(6), 1, 5, &topo).delay_factor, 8);
        assert_eq!(inj.on_send(t(6), 5, 3, &topo).delay_factor, 8);
        assert_eq!(inj.on_send(t(6), 5, 6, &topo).delay_factor, 1);
        assert_eq!(inj.stats.delayed, 2);
    }

    #[test]
    fn retain_atoms_shrinks_faults_and_churn() {
        let mut rng = sub_rng(5, "churn");
        let churn = ChurnSchedule::mass_failure(&[0, 1, 2, 3], 0.5, t(15), &mut rng);
        let plan = FaultPlan::none()
            .with_fault(loss_fault())
            .with_fault(dup_fault())
            .with_churn(churn);
        assert_eq!(plan.atom_count(), 3);
        assert_eq!(plan.last_fault_clear(), t(30));

        let no_loss = plan.retain_atoms(&[false, true, true]);
        assert_eq!(no_loss.faults().len(), 1);
        assert!(!no_loss.churn().is_empty());

        let no_churn = plan.retain_atoms(&[true, true, false]);
        assert_eq!(no_churn.faults().len(), 2);
        assert!(no_churn.churn().is_empty());
        assert_eq!(no_churn.last_fault_clear(), t(30));

        let empty = plan.retain_atoms(&[false, false, false]);
        assert_eq!(empty.atom_count(), 0);
        assert_eq!(empty.last_fault_clear(), SimTime::ZERO);
    }

    #[test]
    fn labels_are_content_stable() {
        assert_eq!(loss_fault().label(), loss_fault().label());
        assert_ne!(loss_fault().label(), dup_fault().label());
        // Same kind, different window: distinct stream.
        let other = Fault::new(t(10), t(21), FaultKind::LossSpike { prob: 0.5 });
        assert_ne!(loss_fault().label(), other.label());
    }
}
