//! A fixed-size bit set for per-node boolean state.
//!
//! At the million-node scale targeted by the sharded engine a
//! `Vec<bool>` costs one byte per node and, worse, one cache line per 64
//! nodes touched. Packing liveness into machine words cuts the `alive`
//! table from 1 MB to 125 KB per million nodes and lets bulk operations
//! (population count, clear) run word-at-a-time.

/// A fixed-length set of bits, indexed like a `Vec<bool>`.
///
/// All operations are deterministic and allocation happens only at
/// construction (or explicit `resize`).
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a set of `len` bits, all initialized to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let fill = if value { !0u64 } else { 0 };
        let mut s = BitSet {
            words: vec![fill; len.div_ceil(64)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Zeroes any bits beyond `len` in the last word so `count_ones`
    /// stays exact after a `filled(_, true)`.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`. Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`. Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes held by the set (capacity-based, for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_true_and_false() {
        let t = BitSet::filled(130, true);
        assert_eq!(t.len(), 130);
        assert_eq!(t.count_ones(), 130);
        assert!(t.get(0) && t.get(64) && t.get(129));
        let f = BitSet::filled(130, false);
        assert_eq!(f.count_ones(), 0);
        assert!(!f.get(129));
    }

    #[test]
    fn set_and_clear_round_trip() {
        let mut s = BitSet::filled(100, false);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert_eq!(s.count_ones(), 3);
        assert!(s.get(63) && s.get(64) && s.get(99));
        s.set(64, false);
        assert_eq!(s.count_ones(), 2);
        assert!(!s.get(64));
    }

    #[test]
    fn tail_bits_are_masked() {
        let s = BitSet::filled(65, true);
        assert_eq!(s.count_ones(), 65);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitSet::filled(10, false).get(10);
    }
}
