//! Per-trial accounting reports.
//!
//! A *trial* is one self-contained simulation run (one `Simulator` with its
//! own RNG streams). Historically the experiment binaries printed traffic
//! and compute summaries mid-loop; [`TrialReport`] instead captures the
//! accounting *by value* when the trial ends, so independent trials can run
//! concurrently on worker threads and be merged, serialized, or rendered
//! later — in trial order, independent of completion order.
//!
//! The report is a plain value: building one never mutates the simulator,
//! and its [`TrialReport::to_json`] serialization is deterministic (fixed
//! field order, no floats formatted with locale- or platform-dependent
//! code paths), which the benchmark harness relies on for byte-identical
//! output across `--jobs` settings.

use crate::obs::prof::EngineProfile;
use crate::obs::{MetricsSnapshot, TraceSink};
use crate::shard::ShardedSim;
use crate::sim::{Application, Simulator};
use crate::traffic::TrafficTotals;

/// Accounting captured from one finished simulation trial.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialReport {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Simulated clock at capture time, in microseconds.
    pub sim_end_us: u64,
    /// Events processed by the simulator.
    pub events: u64,
    /// Messages dropped in flight (link loss, chaos faults, fault filters).
    pub dropped_loss: u64,
    /// Messages dropped on arrival at a dead destination.
    pub dropped_dead: u64,
    /// Aggregate traffic counters across all nodes.
    pub traffic: TrafficTotals,
    /// Total FL-task CPU microseconds across all nodes.
    pub fl_us: u64,
    /// Total DHT-task CPU microseconds across all nodes.
    pub dht_us: u64,
    /// Total application state bytes across all nodes at capture time.
    pub memory_bytes: u64,
    /// Observability metrics snapshot, when the trial ran with a metrics-
    /// aggregating trace sink installed (`None` with the default
    /// [`crate::obs::NoopSink`], keeping untraced JSON unchanged).
    pub obs: Option<MetricsSnapshot>,
    /// Deterministic engine self-profile ([`crate::obs::prof`]), when the
    /// trial ran with profiling enabled (`None` otherwise, keeping
    /// unprofiled JSON unchanged). Byte-identical across `--jobs` and
    /// `--shards` for a fixed `(scenario, seed)`.
    pub engine_profile: Option<EngineProfile>,
}

impl TrialReport {
    /// Captures a report from a simulator (any installed trace sink; a
    /// metrics-aggregating sink contributes its snapshot as `obs`).
    pub fn capture<A: Application, S: TraceSink, Q: crate::queue::EventQueue>(
        sim: &Simulator<A, S, Q>,
    ) -> Self {
        let memory_bytes = sim.apps().map(|a| a.memory_bytes() as u64).sum();
        TrialReport {
            nodes: sim.len(),
            sim_end_us: sim.now().as_micros(),
            events: sim.events_processed(),
            dropped_loss: sim.dropped_loss(),
            dropped_dead: sim.dropped_dead(),
            traffic: sim.traffic().totals(),
            fl_us: sim.compute().fl_us.iter().sum(),
            dht_us: sim.compute().dht_us.iter().sum(),
            memory_bytes,
            obs: sim.sink().snapshot(),
            engine_profile: sim.engine_profile(),
        }
    }

    /// Captures a report from a sharded simulator. Traffic and compute
    /// come from the merged per-zone ledgers; `obs` stays `None` (the
    /// sharded engine records traces, not metrics snapshots), and the
    /// engine profile is the shard-count-invariant merge when profiling
    /// was enabled.
    pub fn capture_sharded<A: Application>(sim: &ShardedSim<A>) -> Self {
        let memory_bytes = sim.apps().map(|a| a.memory_bytes() as u64).sum();
        let (fl_us, dht_us) = sim.compute_totals();
        TrialReport {
            nodes: sim.len(),
            sim_end_us: sim.now().as_micros(),
            events: sim.events_processed(),
            dropped_loss: sim.dropped_loss(),
            dropped_dead: sim.dropped_dead(),
            traffic: sim.traffic_totals(),
            fl_us,
            dht_us,
            memory_bytes,
            obs: None,
            engine_profile: sim.engine_profile(),
        }
    }

    /// Total messages dropped, for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_dead
    }

    /// Mean TCP wire bytes sent per node.
    pub fn mean_tcp_sent(&self) -> f64 {
        self.traffic
            .mean_per_node(self.traffic.tcp_sent, self.nodes)
    }

    /// Mean UDP wire bytes sent per node.
    pub fn mean_udp_sent(&self) -> f64 {
        self.traffic
            .mean_per_node(self.traffic.udp_sent, self.nodes)
    }

    /// Folds another report into this one (summing counters, taking the
    /// later clock). Used when one logical trial spans several simulators.
    pub fn merge(&mut self, other: &TrialReport) {
        self.nodes += other.nodes;
        self.sim_end_us = self.sim_end_us.max(other.sim_end_us);
        self.events += other.events;
        self.dropped_loss += other.dropped_loss;
        self.dropped_dead += other.dropped_dead;
        self.traffic.merge(&other.traffic);
        self.fl_us += other.fl_us;
        self.dht_us += other.dht_us;
        self.memory_bytes += other.memory_bytes;
        match (&mut self.obs, &other.obs) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.obs = Some(theirs.clone()),
            _ => {}
        }
        match (&mut self.engine_profile, &other.engine_profile) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, Some(theirs)) => self.engine_profile = Some(theirs.clone()),
            _ => {}
        }
    }

    /// Deterministic JSON rendering (fixed key order, integer counters).
    /// The `obs` section is appended only when a metrics snapshot was
    /// captured, so untraced reports keep their historical shape.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"nodes\":{},\"sim_end_us\":{},\"events\":{},",
                "\"dropped_loss\":{},\"dropped_dead\":{},",
                "\"msgs_sent\":{},\"msgs_recv\":{},\"payload_sent\":{},\"payload_recv\":{},",
                "\"tcp_sent\":{},\"udp_sent\":{},\"fl_us\":{},\"dht_us\":{},\"memory_bytes\":{}"
            ),
            self.nodes,
            self.sim_end_us,
            self.events,
            self.dropped_loss,
            self.dropped_dead,
            self.traffic.msgs_sent,
            self.traffic.msgs_recv,
            self.traffic.payload_sent,
            self.traffic.payload_recv,
            self.traffic.tcp_sent,
            self.traffic.udp_sent,
            self.fl_us,
            self.dht_us,
            self.memory_bytes,
        );
        if let Some(obs) = &self.obs {
            out.push_str(",\"obs\":");
            out.push_str(&obs.to_json());
        }
        if let Some(prof) = &self.engine_profile {
            out.push_str(",\"engine_profile\":");
            out.push_str(&prof.to_json());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = TrialReport {
            nodes: 2,
            sim_end_us: 10,
            events: 5,
            fl_us: 100,
            ..TrialReport::default()
        };
        let b = TrialReport {
            nodes: 3,
            sim_end_us: 7,
            events: 2,
            dht_us: 50,
            ..TrialReport::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 5);
        assert_eq!(a.sim_end_us, 10);
        assert_eq!(a.events, 7);
        assert_eq!(a.fl_us, 100);
        assert_eq!(a.dht_us, 50);
    }

    #[test]
    fn json_is_deterministic() {
        let r = TrialReport {
            nodes: 4,
            sim_end_us: 123,
            ..TrialReport::default()
        };
        assert_eq!(r.to_json(), r.clone().to_json());
        assert!(r.to_json().starts_with("{\"nodes\":4,"));
    }

    #[test]
    fn json_field_order_survives_field_additions() {
        let r = TrialReport {
            nodes: 1,
            dropped_loss: 2,
            dropped_dead: 3,
            ..TrialReport::default()
        };
        let json = r.to_json();
        // The key order is part of the byte-identical-output contract; any
        // new field must extend, not reorder, this sequence.
        let keys = [
            "nodes",
            "sim_end_us",
            "events",
            "dropped_loss",
            "dropped_dead",
            "msgs_sent",
            "msgs_recv",
            "payload_sent",
            "payload_recv",
            "tcp_sent",
            "udp_sent",
            "fl_us",
            "dht_us",
            "memory_bytes",
        ];
        let mut pos = 0;
        for k in keys {
            let p = json
                .find(&format!("\"{k}\":"))
                .unwrap_or_else(|| panic!("missing key {k}"));
            assert!(p >= pos, "key {k} out of order");
            pos = p;
        }
        // Without a snapshot the report keeps its historical shape...
        assert!(!json.contains("\"obs\""));
        assert!(!json.contains("\"engine_profile\""));
        // ...and a snapshot only ever appends after the fixed fields.
        let mut traced = r.clone();
        traced.obs = Some(MetricsSnapshot::default());
        let traced_json = traced.to_json();
        assert!(traced_json.starts_with(json.trim_end_matches('}')));
        assert!(traced_json.contains(",\"obs\":{"));
        assert_eq!(traced_json, traced.clone().to_json());
        // The engine profile appends after obs, in that fixed order.
        let mut profiled = traced.clone();
        profiled.engine_profile = Some(EngineProfile::default());
        let profiled_json = profiled.to_json();
        assert!(profiled_json.starts_with(traced_json.trim_end_matches('}')));
        assert!(profiled_json.contains(",\"engine_profile\":{\"sched\":"));
    }

    #[test]
    fn merge_sums_drop_split_and_obs() {
        let mut a = TrialReport {
            dropped_loss: 2,
            dropped_dead: 1,
            ..TrialReport::default()
        };
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("forest.sends".into(), 5);
        let b = TrialReport {
            dropped_loss: 3,
            dropped_dead: 4,
            obs: Some(snap),
            ..TrialReport::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped_loss, 5);
        assert_eq!(a.dropped_dead, 5);
        assert_eq!(a.dropped(), 10);
        a.merge(&b);
        assert_eq!(a.obs.as_ref().unwrap().counters["forest.sends"], 10);
    }
}
