//! Per-trial accounting reports.
//!
//! A *trial* is one self-contained simulation run (one `Simulator` with its
//! own RNG streams). Historically the experiment binaries printed traffic
//! and compute summaries mid-loop; [`TrialReport`] instead captures the
//! accounting *by value* when the trial ends, so independent trials can run
//! concurrently on worker threads and be merged, serialized, or rendered
//! later — in trial order, independent of completion order.
//!
//! The report is a plain value: building one never mutates the simulator,
//! and its [`TrialReport::to_json`] serialization is deterministic (fixed
//! field order, no floats formatted with locale- or platform-dependent
//! code paths), which the benchmark harness relies on for byte-identical
//! output across `--jobs` settings.

use crate::sim::{Application, Simulator};
use crate::traffic::TrafficTotals;

/// Accounting captured from one finished simulation trial.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialReport {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Simulated clock at capture time, in microseconds.
    pub sim_end_us: u64,
    /// Events processed by the simulator.
    pub events: u64,
    /// Messages dropped (loss or dead destination).
    pub dropped: u64,
    /// Aggregate traffic counters across all nodes.
    pub traffic: TrafficTotals,
    /// Total FL-task CPU microseconds across all nodes.
    pub fl_us: u64,
    /// Total DHT-task CPU microseconds across all nodes.
    pub dht_us: u64,
    /// Total application state bytes across all nodes at capture time.
    pub memory_bytes: u64,
}

impl TrialReport {
    /// Captures a report from a simulator.
    pub fn capture<A: Application>(sim: &Simulator<A>) -> Self {
        let memory_bytes = sim.apps().map(|a| a.memory_bytes() as u64).sum();
        TrialReport {
            nodes: sim.len(),
            sim_end_us: sim.now().as_micros(),
            events: sim.events_processed(),
            dropped: sim.messages_dropped(),
            traffic: sim.traffic().totals(),
            fl_us: sim.compute().fl_us.iter().sum(),
            dht_us: sim.compute().dht_us.iter().sum(),
            memory_bytes,
        }
    }

    /// Mean TCP wire bytes sent per node.
    pub fn mean_tcp_sent(&self) -> f64 {
        self.traffic
            .mean_per_node(self.traffic.tcp_sent, self.nodes)
    }

    /// Mean UDP wire bytes sent per node.
    pub fn mean_udp_sent(&self) -> f64 {
        self.traffic
            .mean_per_node(self.traffic.udp_sent, self.nodes)
    }

    /// Folds another report into this one (summing counters, taking the
    /// later clock). Used when one logical trial spans several simulators.
    pub fn merge(&mut self, other: &TrialReport) {
        self.nodes += other.nodes;
        self.sim_end_us = self.sim_end_us.max(other.sim_end_us);
        self.events += other.events;
        self.dropped += other.dropped;
        self.traffic.merge(&other.traffic);
        self.fl_us += other.fl_us;
        self.dht_us += other.dht_us;
        self.memory_bytes += other.memory_bytes;
    }

    /// Deterministic JSON rendering (fixed key order, integer counters).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\":{},\"sim_end_us\":{},\"events\":{},\"dropped\":{},",
                "\"msgs_sent\":{},\"msgs_recv\":{},\"payload_sent\":{},\"payload_recv\":{},",
                "\"tcp_sent\":{},\"udp_sent\":{},\"fl_us\":{},\"dht_us\":{},\"memory_bytes\":{}}}"
            ),
            self.nodes,
            self.sim_end_us,
            self.events,
            self.dropped,
            self.traffic.msgs_sent,
            self.traffic.msgs_recv,
            self.traffic.payload_sent,
            self.traffic.payload_recv,
            self.traffic.tcp_sent,
            self.traffic.udp_sent,
            self.fl_us,
            self.dht_us,
            self.memory_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = TrialReport {
            nodes: 2,
            sim_end_us: 10,
            events: 5,
            fl_us: 100,
            ..TrialReport::default()
        };
        let b = TrialReport {
            nodes: 3,
            sim_end_us: 7,
            events: 2,
            dht_us: 50,
            ..TrialReport::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes, 5);
        assert_eq!(a.sim_end_us, 10);
        assert_eq!(a.events, 7);
        assert_eq!(a.fl_us, 100);
        assert_eq!(a.dht_us, 50);
    }

    #[test]
    fn json_is_deterministic() {
        let r = TrialReport {
            nodes: 4,
            sim_end_us: 123,
            ..TrialReport::default()
        };
        assert_eq!(r.to_json(), r.clone().to_json());
        assert!(r.to_json().starts_with("{\"nodes\":4,"));
    }
}
