//! The discrete-event simulator core.
//!
//! Every edge node is a state machine implementing [`Application`]. Nodes
//! interact *only* by exchanging messages through the simulator, which
//! samples per-message delay and loss from the [`Topology`] and delivers
//! events in deterministic `(time, sequence)` order. This models the paper's
//! EC2 emulation (1 JVM = 1 edge node, §7.1) while staying reproducible.
//!
//! # Hot-path layout
//!
//! Simulator throughput bounds every experiment, so the event loop is built
//! to avoid per-event allocation and large memmoves:
//!
//! * Event ordering lives behind the pluggable [`EventQueue`] API: queues
//!   order small fixed-size `(EventKey, slot)` records (`time, seq, slot` —
//!   24 bytes); message payloads live in an [`EventSlab`] indexed by `slot`,
//!   so reordering never moves a model update. The default [`WheelQueue`]
//!   buckets the near-horizon band in a hierarchical timer wheel (`O(1)`
//!   pushes, one contiguous sort per due bucket); [`HeapQueue`](crate::queue::HeapQueue) is the
//!   binary-heap reference with identical `(time, seq)` order. Freed slab
//!   slots are recycled, so a steady-state simulation stops allocating
//!   entirely.
//! * Every schedule source — sends, timers, churn, failure bounces — routes
//!   through one typed `enqueue(time, node, EventKind)` choke point, which
//!   assigns the sequence number and clamps the due time; no call site
//!   hand-rolls a queue entry.
//! * The run loops dispatch in *batches*: all queued events sharing the
//!   same `(time, destination)` drain into a reusable scratch batch and are
//!   processed in one pass — the destination's liveness check, traffic-
//!   ledger arithmetic, and scratch-buffer loan happen once per batch
//!   instead of once per message, while per-message callback order, trace
//!   emission, and RNG draws stay exactly as in single-step dispatch.
//! * Callback side effects accumulate in a reusable scratch buffer that is
//!   drained in place (no per-event `Vec`).
//! * [`Simulator::step_before`] pops an event only if it is due
//!   ([`EventQueue::pop_before`]), replacing the peek-then-pop pattern in
//!   deadline-bounded loops.

use rand::rngs::StdRng;

use crate::bitset::BitSet;
use crate::chaos::{ChaosInjector, FaultFilter};
use crate::obs::prof::{EngineProf, EngineProfile};
use crate::obs::{DropReason, MsgMeta, NoopSink, TraceBody, TraceRecord, TraceSink, ROOT_PARENT};
use crate::queue::{EventKey, EventQueue, WheelQueue};
use crate::rng::sub_rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeIdx, Topology};
use crate::traffic::TrafficLedger;

/// A message that can travel through the simulator.
///
/// The reported size drives transmission-time and traffic accounting; it
/// should approximate the serialized wire size of the message. Impls that
/// fan one value out to many receivers should carry the bulky part in a
/// [`crate::payload::Shared`] so that per-receiver clones are pointer
/// bumps; sharing must never change `size_bytes`.
pub trait Payload: Clone {
    /// Serialized size of this message in bytes.
    fn size_bytes(&self) -> usize;

    /// Protocol-layer tag for trace records (`"dht"`, `"forest"`, `"fl"`,
    /// `"central"`, ...). The default empty string is normalized to `"app"`
    /// at record-emission time. Wrapper messages should delegate to the
    /// wrapped payload where the inner message is the interesting one.
    fn layer(&self) -> &'static str {
        ""
    }

    /// Message-kind tag for trace records (`"join"`, `"broadcast"`, ...).
    /// The default empty string is normalized to `"msg"` at record time.
    fn kind(&self) -> &'static str {
        ""
    }
}

/// Broad activity categories for compute accounting (Figure 13a splits CPU
/// overhead into FL-related and DHT-related tasks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeKind {
    /// Model training, aggregation math, serialization.
    FlTask,
    /// Overlay construction, routing, tree maintenance.
    DhtTask,
}

/// Node behaviour: the protocol stack running on each simulated edge node.
pub trait Application: Sized {
    /// Message type exchanged between nodes.
    type Msg: Payload;

    /// Invoked once at simulation start (time zero), in node-index order.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Invoked when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeIdx, msg: Self::Msg);

    /// Invoked when a message this node sent to `peer` could not be
    /// delivered because `peer` was down — the simulator's analogue of a
    /// TCP connection error. Stochastic (UDP-like) losses are silent and do
    /// NOT trigger this callback.
    fn on_send_failed(&mut self, ctx: &mut Ctx<'_, Self::Msg>, peer: NodeIdx) {
        let _ = (ctx, peer);
    }

    /// Invoked when a timer armed with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        let _ = (ctx, token);
    }

    /// Invoked when the node is taken down by churn injection.
    fn on_down(&mut self) {}

    /// Invoked when the node comes back up; timers armed before the outage
    /// were discarded, so long-lived periodic work must be re-armed here.
    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Approximate bytes of protocol state held by this node, for memory
    /// overhead reporting (Figure 13b).
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Per-invocation context handed to application callbacks.
///
/// All side effects (sends, timers, compute charges) go through the context
/// and are applied by the simulator after the callback returns.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: NodeIdx,
    actions: &'a mut Vec<Action<M>>,
    rng: &'a mut StdRng,
    topology: &'a Topology,
}

pub(crate) enum Action<M> {
    Send {
        to: NodeIdx,
        msg: M,
        extra: SimDuration,
    },
    Timer {
        delay: SimDuration,
        token: u64,
    },
    Compute {
        kind: ComputeKind,
        amount: SimDuration,
    },
}

impl<'a, M> Ctx<'a, M> {
    /// Assembles a context for one callback invocation. Crate-internal:
    /// the sharded engine ([`crate::shard`]) builds contexts over its own
    /// per-shard action buffers and RNG streams.
    pub(crate) fn scoped(
        now: SimTime,
        me: NodeIdx,
        actions: &'a mut Vec<Action<M>>,
        rng: &'a mut StdRng,
        topology: &'a Topology,
    ) -> Self {
        Ctx {
            now,
            me,
            actions,
            rng,
            topology,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Index of the node executing this callback.
    pub fn me(&self) -> NodeIdx {
        self.me
    }

    /// The shared network topology (read-only).
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The node's deterministic random stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to node `to`; delivery is delayed by the sampled network
    /// delay (or dropped if the link loses it or `to` is down on arrival).
    pub fn send(&mut self, to: NodeIdx, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg,
            extra: SimDuration::ZERO,
        });
    }

    /// Like [`Ctx::send`], but the message additionally waits `extra`
    /// simulated time before entering the network — used to model local
    /// compute (e.g. training) that precedes a reply.
    pub fn send_after(&mut self, to: NodeIdx, msg: M, extra: SimDuration) {
        self.actions.push(Action::Send { to, msg, extra });
    }

    /// Arms a one-shot timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Charges `amount` of simulated CPU time of the given kind to this
    /// node's compute ledger (accounting only; does not delay anything).
    pub fn charge_compute(&mut self, kind: ComputeKind, amount: SimDuration) {
        self.actions.push(Action::Compute { kind, amount });
    }
}

#[derive(Debug)]
pub(crate) enum EventKind<M> {
    Start,
    Deliver { src: NodeIdx, msg: M },
    SendFailed { peer: NodeIdx },
    Timer { token: u64 },
    Down,
    Up,
}

/// A pending event's payload, parked in the slab while its key moves
/// through the event queue.
pub(crate) struct PendingEvent<M> {
    pub(crate) node: NodeIdx,
    pub(crate) kind: EventKind<M>,
}

/// Payload-free classification of a queued event, exposed to exploration
/// tooling ([`Simulator::pending_summaries`]). Mirrors the private
/// [`EventKind`] without leaking the message type: deliveries carry their
/// trace tags and wire size instead, which is enough for independence
/// analysis and schedule rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PendingClass {
    /// The time-zero `on_start` callback.
    Start,
    /// A message in flight.
    Deliver {
        /// Sending node.
        src: NodeIdx,
        /// Protocol-layer tag (normalized, e.g. `"dht"`, `"forest"`).
        layer: &'static str,
        /// Message-kind tag (normalized, e.g. `"join"`, `"broadcast"`).
        kind: &'static str,
        /// Serialized size in bytes.
        bytes: usize,
    },
    /// A send-failure bounce heading back to the original sender.
    SendFailed {
        /// The peer that was down.
        peer: NodeIdx,
    },
    /// An armed timer.
    Timer {
        /// The application's timer token.
        token: u64,
    },
    /// A scheduled churn-down transition.
    Down,
    /// A scheduled churn-up transition.
    Up,
}

/// One queued event as seen by exploration tooling: its total-order key,
/// destination node, and payload-free class. The key is stable across
/// deterministic replays of the same prefix, so a recorded key names the
/// same event when the prefix is re-executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingSummary {
    /// The `(time, seq)` queue key — unique per event.
    pub key: EventKey,
    /// Destination node.
    pub node: NodeIdx,
    /// Payload-free event classification.
    pub class: PendingClass,
}

/// Free-list slab holding the payloads of queued events.
///
/// Slots freed by dispatched events are recycled before the backing vector
/// grows, so a simulation whose in-flight event population has peaked stops
/// allocating on the event path altogether.
pub(crate) struct EventSlab<M> {
    slots: Vec<Option<PendingEvent<M>>>,
    free: Vec<u32>,
}

impl<M> EventSlab<M> {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        EventSlab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Heap bytes currently reserved by the slab (capacity-based, for
    /// memory accounting in million-node trials).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<PendingEvent<M>>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    pub(crate) fn insert(&mut self, ev: PendingEvent<M>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(ev);
                slot
            }
            None => {
                let slot =
                    u32::try_from(self.slots.len()).expect("more than u32::MAX events in flight");
                self.slots.push(Some(ev));
                slot
            }
        }
    }

    pub(crate) fn take(&mut self, slot: u32) -> PendingEvent<M> {
        let ev = self.slots[slot as usize]
            .take()
            .expect("queue entry references an empty slot");
        self.free.push(slot);
        ev
    }

    /// Inspects a queued event without removing it — used by the batch
    /// collector to decide whether the queue head extends the current
    /// `(time, destination)` batch before committing to the pop.
    pub(crate) fn peek(&self, slot: u32) -> &PendingEvent<M> {
        self.slots[slot as usize]
            .as_ref()
            .expect("queue entry references an empty slot")
    }
}

/// Cumulative simulated CPU time per node, split by [`ComputeKind`].
#[derive(Clone, Debug, Default)]
pub struct ComputeLedger {
    /// FL-task microseconds per node.
    pub fl_us: Vec<u64>,
    /// DHT-task microseconds per node.
    pub dht_us: Vec<u64>,
}

impl ComputeLedger {
    // Sized to the topology up front (one slot per node, like the traffic
    // ledger), so charging never reallocates.
    fn new(n: usize) -> Self {
        ComputeLedger {
            fl_us: vec![0; n],
            dht_us: vec![0; n],
        }
    }

    fn charge(&mut self, node: NodeIdx, kind: ComputeKind, amount: SimDuration) {
        match kind {
            ComputeKind::FlTask => self.fl_us[node] += amount.as_micros(),
            ComputeKind::DhtTask => self.dht_us[node] += amount.as_micros(),
        }
    }
}

/// The discrete-event simulator.
///
/// The second type parameter selects the installed [`TraceSink`]; with the
/// default [`NoopSink`], every observability code path is compiled away
/// (the sink's `ENABLED` constant gates them statically) and the event loop
/// is identical to an untraced build.
///
/// The third type parameter selects the [`EventQueue`] implementation; the
/// default [`WheelQueue`] and the reference [`HeapQueue`](crate::queue::HeapQueue) produce
/// byte-identical schedules (same `(time, seq)` total order), so swapping
/// them changes throughput only. Use [`Simulator::with_queue`] to pick one
/// explicitly.
pub struct Simulator<A: Application, S: TraceSink = NoopSink, Q: EventQueue = WheelQueue> {
    nodes: Vec<A>,
    // Liveness packed one bit per node (1 MB -> 125 KB at a million
    // nodes); see `crate::bitset`.
    alive: BitSet,
    topology: Topology,
    queue: Q,
    slab: EventSlab<A::Msg>,
    now: SimTime,
    seq: u64,
    // Message-id counter for causal spans. Starts at 1 (0 is the "not
    // traced" sentinel) and only advances when the sink is enabled.
    msg_seq: u64,
    // Causal meta of queued Deliver events, parallel to the slab slots.
    // Kept out of `EventKind` so an untraced build's slab slots stay as
    // small as before observability existed; stays empty (never resized)
    // when the sink is disabled.
    meta_slots: Vec<MsgMeta>,
    rng: StdRng,
    traffic: TrafficLedger,
    compute: ComputeLedger,
    scratch: Vec<Action<A::Msg>>,
    // Reusable batch buffer for same-(time, destination) dispatch runs;
    // like `scratch`, its capacity survives across batches so the run loop
    // performs no per-batch allocation.
    batch: Vec<(EventKind<A::Msg>, MsgMeta)>,
    events_processed: u64,
    dropped_loss: u64,
    dropped_dead: u64,
    chaos: Option<ChaosInjector>,
    fault_filter: Option<FaultFilter<A::Msg>>,
    // Deterministic engine self-profiling (`obs::prof`), enabled on
    // demand; `None` costs one predictable branch per hot-path site.
    prof: Option<Box<EngineProf>>,
    sink: S,
}

impl<A: Application> Simulator<A, NoopSink> {
    /// Builds a simulator over `topology`, constructing each node with
    /// `make_node(index)`. `on_start` fires for every node at time zero.
    pub fn new(topology: Topology, seed: u64, make_node: impl FnMut(NodeIdx) -> A) -> Self {
        Simulator::with_sink(topology, seed, NoopSink, make_node)
    }
}

impl<A: Application, S: TraceSink> Simulator<A, S> {
    /// Like [`Simulator::new`], but with an explicit trace sink installed.
    /// Uses the default [`WheelQueue`]; see [`Simulator::with_queue`] to
    /// select the queue implementation as well.
    pub fn with_sink(
        topology: Topology,
        seed: u64,
        sink: S,
        make_node: impl FnMut(NodeIdx) -> A,
    ) -> Self {
        Simulator::with_queue(topology, seed, sink, make_node)
    }
}

impl<A: Application, S: TraceSink, Q: EventQueue> Simulator<A, S, Q> {
    /// Like [`Simulator::with_sink`], but generic over the [`EventQueue`]
    /// implementation (named explicitly at the call site, e.g.
    /// `Simulator::<App, NoopSink, HeapQueue>::with_queue(...)`). Both
    /// shipped queues dispatch in the identical `(time, seq)` order, so
    /// this choice never changes results — only throughput.
    pub fn with_queue(
        topology: Topology,
        seed: u64,
        sink: S,
        mut make_node: impl FnMut(NodeIdx) -> A,
    ) -> Self {
        let n = topology.len();
        let nodes: Vec<A> = (0..n).map(&mut make_node).collect();
        // The steady-state in-flight event population is a small multiple
        // of the node count (heartbeats, timers, a few messages per node);
        // reserving that up front avoids the early doubling cascade.
        let event_cap = n.saturating_mul(4).max(64);
        let mut sim = Simulator {
            alive: BitSet::filled(n, true),
            nodes,
            queue: Q::with_capacity(event_cap),
            slab: EventSlab::with_capacity(event_cap),
            now: SimTime::ZERO,
            seq: 0,
            msg_seq: 1,
            // Sized to the slab's reservation when tracing is on, so the
            // side table never doubles mid-run; untraced builds keep it
            // empty forever and pay no per-node meta cost.
            meta_slots: if S::ENABLED {
                Vec::with_capacity(event_cap)
            } else {
                Vec::new()
            },
            rng: sub_rng(seed, "simulator"),
            traffic: TrafficLedger::new(n),
            compute: ComputeLedger::new(n),
            // One callback can address every peer (a server-style fan-out),
            // but typical bursts are small; clamp the reservation.
            scratch: Vec::with_capacity(n.clamp(16, 1_024)),
            batch: Vec::new(),
            topology,
            events_processed: 0,
            dropped_loss: 0,
            dropped_dead: 0,
            chaos: None,
            fault_filter: None,
            prof: None,
            sink,
        };
        for node in 0..n {
            sim.enqueue(SimTime::ZERO, node, EventKind::Start);
        }
        sim
    }

    /// The installed trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the installed trace sink (e.g. to take records).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the simulator, returning the sink with everything it
    /// observed.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Enables deterministic engine self-profiling ([`crate::obs::prof`]).
    /// Every profiled quantity is a function of simulated state only, so
    /// a profile for a fixed `(scenario, seed)` is byte-identical across
    /// `--jobs` worker counts; the snapshot lands in
    /// [`TrialReport::engine_profile`](crate::trial::TrialReport). Events
    /// already queued (the time-zero starts) predate the collector and
    /// stay band-unclassified, uniformly across engines.
    pub fn enable_profiling(&mut self) {
        let lookahead = self
            .topology
            .min_inter_region_delay()
            .map_or(0, |d| d.as_micros());
        self.prof = Some(Box::new(EngineProf::new(lookahead)));
    }

    /// The engine-profile snapshot, if profiling was enabled.
    pub fn engine_profile(&self) -> Option<EngineProfile> {
        self.prof.as_ref().map(|p| p.snapshot())
    }

    /// Installs a fault injector consulted on every message send (after the
    /// topology's own loss/delay sampling, so the main RNG stream is
    /// unaffected). See [`crate::chaos::FaultPlan`].
    pub fn install_chaos(&mut self, injector: ChaosInjector) {
        self.chaos = Some(injector);
    }

    /// The installed fault injector, if any (e.g. to read its stats).
    pub fn chaos(&self) -> Option<&ChaosInjector> {
        self.chaos.as_ref()
    }

    /// Installs a protocol-aware message filter (return `true` to drop).
    /// Used to plant deliberate bugs that the chaos oracles must catch.
    pub fn set_fault_filter(&mut self, filter: FaultFilter<A::Msg>) {
        self.fault_filter = Some(filter);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node's application state.
    pub fn app(&self, i: NodeIdx) -> &A {
        &self.nodes[i]
    }

    /// Iterates over all application states.
    pub fn apps(&self) -> impl Iterator<Item = &A> {
        self.nodes.iter()
    }

    /// Whether node `i` is currently up.
    pub fn alive(&self, i: NodeIdx) -> bool {
        self.alive.get(i)
    }

    /// The traffic ledger.
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Mutable access to the traffic ledger (e.g. to reset after warm-up).
    pub fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    /// The compute ledger.
    pub fn compute(&self) -> &ComputeLedger {
        &self.compute
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total messages dropped so far, for any reason.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_dead
    }

    /// Messages dropped in flight: stochastic link loss, chaos faults, and
    /// installed fault filters.
    pub fn dropped_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Messages dropped on arrival because the destination was down.
    pub fn dropped_dead(&self) -> u64 {
        self.dropped_dead
    }

    /// Schedules node `i` to go down at absolute time `at`.
    pub fn schedule_down(&mut self, i: NodeIdx, at: SimTime) {
        self.enqueue(at, i, EventKind::Down);
    }

    /// Schedules node `i` to come back up at absolute time `at`.
    pub fn schedule_up(&mut self, i: NodeIdx, at: SimTime) {
        self.enqueue(at, i, EventKind::Up);
    }

    // ------------------------------------------------- exploration hooks --
    //
    // The bounded model checker (`totoro-mc`) drives the simulator off the
    // normal `(time, seq)` dispatch order: it enumerates the pending set,
    // picks an arbitrary member to dispatch / drop / duplicate, and replays
    // recorded choice sequences from scratch to branch the exploration.
    // These hooks are `O(pending)` and never touched by the hot path.

    /// Every queued event in ascending `(time, seq)` order, summarized
    /// without exposing message payloads. Takes `&mut self` because lazily
    /// ordered queues normalize their head on observation.
    pub fn pending_summaries(&mut self) -> Vec<PendingSummary> {
        let entries = self.queue.snapshot();
        entries
            .into_iter()
            .map(|(key, slot)| {
                let ev = self.slab.peek(slot);
                let class = match &ev.kind {
                    EventKind::Start => PendingClass::Start,
                    EventKind::Deliver { src, msg } => {
                        let (layer, kind) = tag(msg);
                        PendingClass::Deliver {
                            src: *src,
                            layer,
                            kind,
                            bytes: msg.size_bytes(),
                        }
                    }
                    EventKind::SendFailed { peer } => PendingClass::SendFailed { peer: *peer },
                    EventKind::Timer { token } => PendingClass::Timer { token: *token },
                    EventKind::Down => PendingClass::Down,
                    EventKind::Up => PendingClass::Up,
                };
                PendingSummary {
                    key,
                    node: ev.node,
                    class,
                }
            })
            .collect()
    }

    /// Dispatches the queued event with exactly `key` *now*, out of queue
    /// order, returning the simulated time after its callback ran. The
    /// event executes at `max(now, key.time)` — dispatching ahead of turn
    /// pulls it forward to the current instant, never backwards. Returns
    /// `None` if no event is queued under `key`.
    pub fn dispatch_pending(&mut self, key: EventKey) -> Option<SimTime> {
        let slot = self.queue.remove(key)?;
        self.prof_note_dispatch(key.time.max(self.now), slot);
        let (ev, meta) = self.take_event(slot);
        Some(self.dispatch(key.time.max(self.now), ev, meta))
    }

    /// Removes the queued *delivery* with exactly `key`, counting it as an
    /// in-flight drop (a lost message). Returns `false` — leaving the queue
    /// untouched — when `key` is absent or names a non-Deliver event:
    /// timers, churn transitions, and bounces cannot be "lost".
    pub fn drop_pending(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.queue.remove(key) else {
            return false;
        };
        if !matches!(self.slab.peek(slot).kind, EventKind::Deliver { .. }) {
            self.queue.push(key, slot);
            return false;
        }
        let (ev, meta) = self.take_event(slot);
        let EventKind::Deliver { src, msg } = ev.kind else {
            unreachable!("checked above");
        };
        self.dropped_loss += 1;
        if S::ENABLED {
            self.record_drop(src, ev.node, &msg, DropReason::Filter, meta);
        }
        true
    }

    /// Enqueues a copy of the queued *delivery* with exactly `key` — the
    /// original stays queued — modelling network duplication. The copy is
    /// due at `max(now, key.time)` with a fresh sequence number (it sorts
    /// after everything already queued at that time) and inherits the
    /// original's causal meta. Returns the copy's key, or `None` when `key`
    /// is absent or names a non-Deliver event.
    pub fn duplicate_pending(&mut self, key: EventKey) -> Option<EventKey> {
        let slot = self.queue.remove(key)?;
        let copy = match &self.slab.peek(slot).kind {
            EventKind::Deliver { src, msg } => {
                let node = self.slab.peek(slot).node;
                Some((node, *src, msg.clone()))
            }
            _ => None,
        };
        self.queue.push(key, slot);
        let (node, src, msg) = copy?;
        let meta = if S::ENABLED {
            self.meta_slots
                .get(slot as usize)
                .copied()
                .unwrap_or(MsgMeta::NONE)
        } else {
            MsgMeta::NONE
        };
        let time = key.time.max(self.now);
        let seq = self.seq;
        let new_slot = self.enqueue(time, node, EventKind::Deliver { src, msg });
        if S::ENABLED {
            self.set_deliver_meta(new_slot, meta);
        }
        Some(EventKey { time, seq })
    }

    /// Runs an application callback "from the outside" at the current time —
    /// the entry point for experiment drivers (submit an FL application,
    /// start a broadcast, ...). Side effects issued through the context are
    /// applied exactly as for event-driven callbacks.
    ///
    /// Returns `None` — without running the callback — when node `i` is
    /// down, mirroring every event-driven path: churn must silence a node
    /// completely, driver-injected work included.
    pub fn with_app<R>(
        &mut self,
        i: NodeIdx,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R,
    ) -> Option<R> {
        if !self.alive.get(i) {
            return None;
        }
        debug_assert!(self.scratch.is_empty());
        let mut actions = std::mem::take(&mut self.scratch);
        let r = {
            let mut ctx = Ctx {
                now: self.now,
                me: i,
                actions: &mut actions,
                rng: &mut self.rng,
                topology: &self.topology,
            };
            f(&mut self.nodes[i], &mut ctx)
        };
        // Driver-injected work roots fresh causal spans.
        self.apply_actions(i, &mut actions, MsgMeta::NONE);
        self.scratch = actions;
        Some(r)
    }

    /// Processes the next event, returning its timestamp, or `None` if the
    /// queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (key, slot) = self.queue.pop()?;
        self.prof_note_dispatch(key.time, slot);
        let (ev, meta) = self.take_event(slot);
        Some(self.dispatch(key.time, ev, meta))
    }

    /// Processes the next event only if it is due at or before `deadline`,
    /// returning its timestamp. A single queue operation decides and pops
    /// ([`EventQueue::pop_before`]) — the deadline-bounded analogue of
    /// [`Simulator::step`].
    pub fn step_before(&mut self, deadline: SimTime) -> Option<SimTime> {
        let (key, slot) = self.queue.pop_before(deadline)?;
        self.prof_note_dispatch(key.time, slot);
        let (ev, meta) = self.take_event(slot);
        Some(self.dispatch(key.time, ev, meta))
    }

    /// Runs until the queue drains or simulated time exceeds `deadline`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if let Some(p) = self.prof.as_mut() {
            // Mirror the sharded engine's window clamp (`deadline + 1`,
            // exclusive) so the lazy window recurrence matches it.
            p.set_window_clamp(deadline.as_micros().saturating_add(1));
        }
        let mut processed = 0;
        loop {
            let n = self.step_batch(deadline, u64::MAX);
            if n == 0 {
                return processed;
            }
            processed += n;
        }
    }

    /// Runs for `dur` of simulated time from the current instant.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    /// Runs until the event queue is empty or `max_events` were processed.
    /// Returns `true` if the queue drained.
    pub fn run_until_quiet(&mut self, max_events: u64) -> bool {
        let mut remaining = max_events;
        while remaining > 0 {
            let n = self.step_batch(SimTime::MAX, remaining);
            if n == 0 {
                return true;
            }
            remaining -= n;
        }
        self.queue.is_empty()
    }

    /// Feeds one about-to-dispatch event into the engine profiler: window
    /// recurrence, tick occupancy, overflow-migration readback, delivery
    /// grouping. Must run before [`Simulator::take_event`] recycles the
    /// slot. A no-op (one predictable branch) unless profiling is on.
    #[inline]
    fn prof_note_dispatch(&mut self, time: SimTime, slot: u32) {
        if self.prof.is_some() {
            let ev = self.slab.peek(slot);
            let node = ev.node;
            let groupable = !matches!(ev.kind, EventKind::Down | EventKind::Up);
            if let Some(p) = self.prof.as_mut() {
                p.on_dispatch(slot, time.as_micros(), node, groupable);
            }
        }
    }

    /// Counts one cross-region message from `from` to `to` in the engine
    /// profiler, when the two nodes live in different topology regions.
    #[inline]
    fn prof_note_remote(&mut self, from: NodeIdx, to: NodeIdx) {
        if self.prof.is_some() {
            let (ra, rb) = (self.topology.region(from), self.topology.region(to));
            if ra != rb {
                if let Some(p) = self.prof.as_mut() {
                    p.on_remote(ra, rb);
                }
            }
        }
    }

    /// Takes a popped event's payload out of the slab, along with its
    /// parked causal meta (read before the slot can be recycled).
    #[inline]
    fn take_event(&mut self, slot: u32) -> (PendingEvent<A::Msg>, MsgMeta) {
        let meta = if S::ENABLED {
            self.meta_slots
                .get(slot as usize)
                .copied()
                .unwrap_or(MsgMeta::NONE)
        } else {
            MsgMeta::NONE
        };
        (self.slab.take(slot), meta)
    }

    /// Pops and dispatches one *batch*: the maximal run of due queue-head
    /// events sharing the same `(time, destination)`, excluding liveness
    /// transitions (`Down`/`Up`, which dispatch singly so the batch-wide
    /// alive check stays sound). Returns the number of events processed
    /// (0 when nothing is due), never more than `budget` (callers pass a
    /// positive budget).
    ///
    /// Batching flattens per-message bookkeeping — destination liveness,
    /// traffic-ledger arithmetic, the scratch-buffer loan — into one pass
    /// per batch while preserving per-message callback order, trace
    /// emission, and RNG draws, so results are byte-identical to repeated
    /// [`Simulator::step`]. Collecting ahead is sound because a callback
    /// can only enqueue with a *larger* sequence number: nothing it
    /// schedules can sort before an event already popped into the batch.
    fn step_batch(&mut self, deadline: SimTime, budget: u64) -> u64 {
        debug_assert!(budget > 0);
        let Some((key, slot)) = self.queue.pop_before(deadline) else {
            return 0;
        };
        self.prof_note_dispatch(key.time, slot);
        let (ev, meta) = self.take_event(slot);
        if matches!(ev.kind, EventKind::Down | EventKind::Up) {
            self.dispatch(key.time, ev, meta);
            return 1;
        }
        let node = ev.node;
        // Singleton fast path: when the next head does not share this
        // event's `(time, destination)` (the common case for staggered
        // timers), skip the batch machinery entirely — `dispatch` and a
        // one-element `dispatch_batch` are observationally identical.
        let extends = budget > 1
            && match self.queue.peek() {
                Some((next_key, next_slot)) if next_key.time == key.time => {
                    let head = self.slab.peek(next_slot);
                    head.node == node && !matches!(head.kind, EventKind::Down | EventKind::Up)
                }
                _ => false,
            };
        if !extends {
            self.dispatch(key.time, ev, meta);
            return 1;
        }
        debug_assert!(self.batch.is_empty());
        let mut batch = std::mem::take(&mut self.batch);
        batch.push((ev.kind, meta));
        while (batch.len() as u64) < budget {
            let Some((next_key, next_slot)) = self.queue.peek() else {
                break;
            };
            if next_key.time != key.time {
                break;
            }
            let head = self.slab.peek(next_slot);
            if head.node != node || matches!(head.kind, EventKind::Down | EventKind::Up) {
                break;
            }
            self.queue.pop().expect("peeked queue head vanished");
            self.prof_note_dispatch(key.time, next_slot);
            let (ev2, meta2) = self.take_event(next_slot);
            batch.push((ev2.kind, meta2));
        }
        let count = batch.len() as u64;
        self.dispatch_batch(key.time, node, &mut batch);
        debug_assert!(batch.is_empty());
        self.batch = batch;
        count
    }

    /// Dispatches a collected same-`(time, destination)` batch in one pass,
    /// draining it. See [`Simulator::step_batch`] for the equivalence
    /// argument.
    fn dispatch_batch(
        &mut self,
        time: SimTime,
        node: NodeIdx,
        batch: &mut Vec<(EventKind<A::Msg>, MsgMeta)>,
    ) {
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += batch.len() as u64;
        if self.alive.get(node) {
            // Flattened ledger bookkeeping: one read-modify-write of the
            // destination's traffic counters per batch, not per message.
            let mut recv_msgs = 0u64;
            let mut recv_bytes = 0u64;
            for (kind, _) in batch.iter() {
                if let EventKind::Deliver { msg, .. } = kind {
                    recv_msgs += 1;
                    recv_bytes += msg.size_bytes() as u64;
                }
            }
            if recv_msgs > 0 {
                self.traffic.record_recv_batch(node, recv_msgs, recv_bytes);
            }
            debug_assert!(self.scratch.is_empty());
            let mut actions = std::mem::take(&mut self.scratch);
            for (kind, meta) in batch.drain(..) {
                // Records are emitted per message, in dispatch order — the
                // (sim_time, seq) total order the determinism contract pins.
                if S::ENABLED {
                    match &kind {
                        EventKind::Deliver { src, msg } => {
                            let (layer, mkind) = tag(msg);
                            self.sink.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node,
                                layer,
                                kind: mkind,
                                body: TraceBody::Deliver {
                                    from: *src,
                                    bytes: msg.size_bytes(),
                                    meta,
                                },
                            });
                        }
                        EventKind::Timer { token } => {
                            self.sink.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node,
                                layer: "sim",
                                kind: "timer",
                                body: TraceBody::TimerFire { token: *token },
                            });
                        }
                        EventKind::Start | EventKind::SendFailed { .. } => {}
                        EventKind::Down | EventKind::Up => unreachable!("never batched"),
                    }
                }
                // The delivered message's causal meta is inherited by sends
                // issued from its handler; other kinds root fresh spans.
                let cause = match &kind {
                    EventKind::Deliver { .. } => meta,
                    _ => MsgMeta::NONE,
                };
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        me: node,
                        actions: &mut actions,
                        rng: &mut self.rng,
                        topology: &self.topology,
                    };
                    match kind {
                        EventKind::Start => self.nodes[node].on_start(&mut ctx),
                        EventKind::Deliver { src, msg } => {
                            self.nodes[node].on_message(&mut ctx, src, msg)
                        }
                        EventKind::SendFailed { peer } => {
                            self.nodes[node].on_send_failed(&mut ctx, peer)
                        }
                        EventKind::Timer { token } => self.nodes[node].on_timer(&mut ctx, token),
                        EventKind::Down | EventKind::Up => unreachable!("never batched"),
                    }
                }
                self.apply_actions(node, &mut actions, cause);
            }
            self.scratch = actions;
        } else {
            // Dead destination: deliveries drop and bounce a failure
            // notification per message (in order, matching single-step
            // dispatch RNG draw for RNG draw); other kinds are silent.
            for (kind, meta) in batch.drain(..) {
                if let EventKind::Deliver { src, msg } = kind {
                    if S::ENABLED {
                        let (layer, mkind) = tag(&msg);
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node: src,
                            layer,
                            kind: mkind,
                            body: TraceBody::Drop {
                                to: node,
                                bytes: msg.size_bytes(),
                                reason: DropReason::DeadDest,
                                meta,
                            },
                        });
                    }
                    self.dropped_dead += 1;
                    // TCP-RST-like bounce back to the sender; one network
                    // delay away. A direct enqueue, not a scratch action.
                    let delay = self.topology.sample_delay(node, src, 64, &mut self.rng);
                    let at = self.now + delay;
                    self.prof_note_remote(node, src);
                    self.enqueue(at, src, EventKind::SendFailed { peer: node });
                }
            }
        }
    }

    fn dispatch(&mut self, time: SimTime, ev: PendingEvent<A::Msg>, meta: MsgMeta) -> SimTime {
        let PendingEvent { node, kind } = ev;
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += 1;
        let mut notify_failure: Option<NodeIdx> = None;
        // The delivered message's causal meta, inherited by sends issued
        // from its handler; every other event kind roots fresh spans.
        let mut cause = MsgMeta::NONE;
        // Records are emitted here, in dispatch order — which is the
        // (sim_time, seq) total order the determinism contract pins.
        if S::ENABLED {
            match &kind {
                EventKind::Deliver { src, msg } => {
                    let (layer, mkind) = tag(msg);
                    let body = if self.alive.get(node) {
                        cause = meta;
                        TraceBody::Deliver {
                            from: *src,
                            bytes: msg.size_bytes(),
                            meta,
                        }
                    } else {
                        TraceBody::Drop {
                            to: node,
                            bytes: msg.size_bytes(),
                            reason: DropReason::DeadDest,
                            meta,
                        }
                    };
                    let about = if self.alive.get(node) { node } else { *src };
                    self.sink.record(TraceRecord {
                        at_us: self.now.as_micros(),
                        node: about,
                        layer,
                        kind: mkind,
                        body,
                    });
                }
                EventKind::Timer { token } => {
                    if self.alive.get(node) {
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "timer",
                            body: TraceBody::TimerFire { token: *token },
                        });
                    }
                }
                EventKind::Down => {
                    if self.alive.get(node) {
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "down",
                            body: TraceBody::NodeDown,
                        });
                    }
                }
                EventKind::Up => {
                    if !self.alive.get(node) {
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "up",
                            body: TraceBody::NodeUp,
                        });
                    }
                }
                EventKind::Start | EventKind::SendFailed { .. } => {}
            }
        }
        debug_assert!(self.scratch.is_empty());
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                me: node,
                actions: &mut actions,
                rng: &mut self.rng,
                topology: &self.topology,
            };
            match kind {
                EventKind::Start => {
                    if self.alive.get(node) {
                        self.nodes[node].on_start(&mut ctx);
                    }
                }
                EventKind::Deliver { src, msg } => {
                    if self.alive.get(node) {
                        self.traffic.record_recv(node, msg.size_bytes());
                        self.nodes[node].on_message(&mut ctx, src, msg);
                    } else {
                        self.dropped_dead += 1;
                        notify_failure = Some(src);
                    }
                }
                EventKind::SendFailed { peer } => {
                    if self.alive.get(node) {
                        self.nodes[node].on_send_failed(&mut ctx, peer);
                    }
                }
                EventKind::Timer { token } => {
                    if self.alive.get(node) {
                        self.nodes[node].on_timer(&mut ctx, token);
                    }
                }
                EventKind::Down => {
                    if self.alive.get(node) {
                        self.alive.set(node, false);
                        self.nodes[node].on_down();
                    }
                }
                EventKind::Up => {
                    if !self.alive.get(node) {
                        self.alive.set(node, true);
                        self.nodes[node].on_up(&mut ctx);
                    }
                }
            }
        }
        self.apply_actions(node, &mut actions, cause);
        self.scratch = actions;
        if let Some(src) = notify_failure {
            // Bounce a connection-failure notification back to the sender
            // (TCP-RST-like); it travels one network delay. This is a single
            // direct enqueue — it does not go through the action scratch.
            let delay = self.topology.sample_delay(node, src, 64, &mut self.rng);
            let at = self.now + delay;
            self.prof_note_remote(node, src);
            self.enqueue(at, src, EventKind::SendFailed { peer: node });
        }
        self.now
    }

    /// The single typed scheduling choke point: every event source — sends,
    /// timers, churn transitions, failure bounces, the time-zero starts —
    /// lands here. Assigns the next sequence number (the `(time, seq)`
    /// tie-break the determinism contract pins), clamps the due time to
    /// `now`, parks the payload in the slab, and pushes the key into the
    /// installed [`EventQueue`]. Returns the slab slot so Deliver sites can
    /// park causal meta alongside it.
    fn enqueue(&mut self, time: SimTime, node: NodeIdx, kind: EventKind<A::Msg>) -> u32 {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.slab.insert(PendingEvent { node, kind });
        self.queue.push(EventKey { time, seq }, slot);
        if let Some(p) = self.prof.as_mut() {
            let band = p.classify(self.now.as_micros(), time.as_micros());
            p.note_band(slot, band);
        }
        slot
    }

    /// Parks a Deliver event's causal meta alongside its slab slot. Only
    /// called when the sink is enabled; slots recycled by non-Deliver
    /// events may hold stale meta, but every Deliver write refreshes its
    /// slot before the corresponding dispatch reads it.
    fn set_deliver_meta(&mut self, slot: u32, meta: MsgMeta) {
        let i = slot as usize;
        if self.meta_slots.len() <= i {
            self.meta_slots.resize(i + 1, MsgMeta::NONE);
        }
        self.meta_slots[i] = meta;
    }

    /// Emits a send-side drop record (loss, chaos, or filter).
    #[inline]
    fn record_drop(
        &mut self,
        src: NodeIdx,
        to: NodeIdx,
        msg: &A::Msg,
        reason: DropReason,
        meta: MsgMeta,
    ) {
        let (layer, kind) = tag(msg);
        self.sink.record(TraceRecord {
            at_us: self.now.as_micros(),
            node: src,
            layer,
            kind,
            body: TraceBody::Drop {
                to,
                bytes: msg.size_bytes(),
                reason,
                meta,
            },
        });
    }

    /// Applies one callback's buffered side effects, draining the buffer in
    /// place. The buffer is the caller's loan of `self.scratch`, so the hot
    /// path performs no allocation: capacity survives across events.
    ///
    /// `cause` is the causal meta of the delivered message whose handler
    /// produced these actions ([`MsgMeta::NONE`] for timers, starts, driver
    /// injections, ...): sends inherit its trace, or root a new one.
    fn apply_actions(&mut self, src: NodeIdx, actions: &mut Vec<Action<A::Msg>>, cause: MsgMeta) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg, extra } => {
                    let size = msg.size_bytes();
                    self.traffic.record_send(src, size);
                    // Causal identity, computed only when tracing is on;
                    // drops too get ids, so a span shows where it died.
                    let mut meta = MsgMeta::NONE;
                    if S::ENABLED {
                        let id = self.msg_seq;
                        self.msg_seq += 1;
                        meta = if cause.is_traced() {
                            MsgMeta {
                                trace: cause.trace,
                                id,
                                parent: cause.id,
                                hop: cause.hop.saturating_add(1),
                            }
                        } else {
                            MsgMeta {
                                trace: id,
                                id,
                                parent: ROOT_PARENT,
                                hop: 0,
                            }
                        };
                    }
                    if self.topology.sample_loss(&mut self.rng) {
                        self.dropped_loss += 1;
                        if S::ENABLED {
                            self.record_drop(src, to, &msg, DropReason::Loss, meta);
                        }
                        continue;
                    }
                    // The base loss/delay draws above always happen first,
                    // so installing no chaos leaves the main RNG stream —
                    // and every golden fixture — untouched.
                    let mut delay = self.topology.sample_delay(src, to, size, &mut self.rng);
                    let mut duplicate = false;
                    if let Some(chaos) = self.chaos.as_mut() {
                        let verdict = chaos.on_send(self.now, src, to, &self.topology);
                        if verdict.drop {
                            self.dropped_loss += 1;
                            if S::ENABLED {
                                self.record_drop(src, to, &msg, DropReason::Chaos, meta);
                            }
                            continue;
                        }
                        if verdict.delay_factor > 1 {
                            delay = delay.saturating_mul(verdict.delay_factor);
                            if S::ENABLED {
                                let (layer, kind) = tag(&msg);
                                self.sink.record(TraceRecord {
                                    at_us: self.now.as_micros(),
                                    node: src,
                                    layer,
                                    kind,
                                    body: TraceBody::ChaosEffect {
                                        to,
                                        effect: "delay",
                                    },
                                });
                            }
                        }
                        duplicate = verdict.duplicate;
                        if duplicate && S::ENABLED {
                            let (layer, kind) = tag(&msg);
                            self.sink.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node: src,
                                layer,
                                kind,
                                body: TraceBody::ChaosEffect {
                                    to,
                                    effect: "duplicate",
                                },
                            });
                        }
                    }
                    if let Some(filter) = self.fault_filter.as_mut() {
                        if filter(self.now, src, to, &msg) {
                            self.dropped_loss += 1;
                            if S::ENABLED {
                                self.record_drop(src, to, &msg, DropReason::Filter, meta);
                            }
                            continue;
                        }
                    }
                    let at = self.now + extra + delay;
                    if self.prof.is_some() {
                        self.prof_note_remote(src, to);
                        if duplicate {
                            self.prof_note_remote(src, to);
                        }
                    }
                    if S::ENABLED {
                        let (layer, kind) = tag(&msg);
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node: src,
                            layer,
                            kind,
                            body: TraceBody::Send {
                                to,
                                bytes: size,
                                meta,
                                arrive_at_us: at.as_micros(),
                            },
                        });
                    }
                    if duplicate {
                        // Same arrival time; the heap sequence number keeps
                        // the pair ordered deterministically. The duplicate
                        // gets its own message id so the span shows both
                        // arrivals, but shares trace/parent/hop.
                        let mut dup_meta = MsgMeta::NONE;
                        if S::ENABLED {
                            let id = self.msg_seq;
                            self.msg_seq += 1;
                            dup_meta = MsgMeta { id, ..meta };
                            let (layer, kind) = tag(&msg);
                            self.sink.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node: src,
                                layer,
                                kind,
                                body: TraceBody::Send {
                                    to,
                                    bytes: size,
                                    meta: dup_meta,
                                    arrive_at_us: at.as_micros(),
                                },
                            });
                        }
                        let slot = self.enqueue(
                            at,
                            to,
                            EventKind::Deliver {
                                src,
                                msg: msg.clone(),
                            },
                        );
                        if S::ENABLED {
                            self.set_deliver_meta(slot, dup_meta);
                        }
                    }
                    let slot = self.enqueue(at, to, EventKind::Deliver { src, msg });
                    if S::ENABLED {
                        self.set_deliver_meta(slot, meta);
                    }
                }
                Action::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.enqueue(at, src, EventKind::Timer { token });
                }
                Action::Compute { kind, amount } => {
                    self.compute.charge(src, kind, amount);
                    if S::ENABLED {
                        let task = match kind {
                            ComputeKind::FlTask => "fl",
                            ComputeKind::DhtTask => "dht",
                        };
                        self.sink.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node: src,
                            layer: "sim",
                            kind: "compute",
                            body: TraceBody::Compute {
                                task,
                                us: amount.as_micros(),
                            },
                        });
                    }
                }
            }
        }
    }
}

/// Normalizes a payload's layer/kind tags for record emission.
#[inline]
fn tag<M: Payload>(msg: &M) -> (&'static str, &'static str) {
    let layer = msg.layer();
    let kind = msg.kind();
    (
        if layer.is_empty() { "app" } else { layer },
        if kind.is_empty() { "msg" } else { kind },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: node 0 floods a token around the ring; each node
    /// increments and forwards it to `(i + 1) % n` until it reaches `limit`.
    struct RingNode {
        n: usize,
        limit: u64,
        seen: Vec<u64>,
        down_count: u32,
        up_count: u32,
    }

    #[derive(Clone)]
    struct Token(u64);

    impl Payload for Token {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    impl Application for RingNode {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
            if ctx.me() == 0 {
                ctx.send(1 % self.n, Token(1));
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeIdx, msg: Token) {
            self.seen.push(msg.0);
            if msg.0 < self.limit {
                ctx.send((ctx.me() + 1) % self.n, Token(msg.0 + 1));
            }
        }

        fn on_down(&mut self) {
            self.down_count += 1;
        }

        fn on_up(&mut self, _ctx: &mut Ctx<'_, Token>) {
            self.up_count += 1;
        }
    }

    fn ring_sim(n: usize, limit: u64, seed: u64) -> Simulator<RingNode> {
        let topology = Topology::uniform(n, 1_000, 2_000);
        Simulator::new(topology, seed, |_| RingNode {
            n,
            limit,
            seen: Vec::new(),
            down_count: 0,
            up_count: 0,
        })
    }

    #[test]
    fn token_circulates_deterministically() {
        let mut sim = ring_sim(5, 20, 42);
        assert!(sim.run_until_quiet(10_000));
        // Token values 1..=20 were each seen exactly once across the ring.
        let all: Vec<u64> = {
            let mut v: Vec<u64> = sim.apps().flat_map(|a| a.seen.iter().copied()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(all, (1..=20).collect::<Vec<u64>>());

        // Re-run with the same seed: identical final time.
        let mut sim2 = ring_sim(5, 20, 42);
        sim2.run_until_quiet(10_000);
        assert_eq!(sim.now(), sim2.now());
        // Different seed: (almost surely) different final time.
        let mut sim3 = ring_sim(5, 20, 43);
        sim3.run_until_quiet(10_000);
        assert_ne!(sim.now(), sim3.now());
    }

    #[test]
    fn time_is_monotone_and_bounded_by_hops() {
        let mut sim = ring_sim(4, 10, 7);
        let mut last = SimTime::ZERO;
        while let Some(t) = sim.step() {
            assert!(t >= last);
            last = t;
        }
        // 10 hops, each between 1ms and 2ms.
        assert!(last >= SimTime::from_micros(10_000));
        assert!(last <= SimTime::from_micros(20_000));
    }

    #[test]
    fn dead_nodes_drop_messages() {
        let mut sim = ring_sim(3, 30, 1);
        sim.schedule_down(1, SimTime::from_micros(1));
        sim.run_until_quiet(10_000);
        // The token dies when it reaches node 1.
        assert_eq!(sim.app(1).seen.len(), 0);
        assert_eq!(sim.app(1).down_count, 1);
        assert!(sim.messages_dropped() >= 1);
    }

    #[test]
    fn revival_calls_on_up() {
        let mut sim = ring_sim(3, 1, 2);
        sim.schedule_down(2, SimTime::from_micros(10));
        sim.schedule_up(2, SimTime::from_micros(20));
        sim.run_until_quiet(1_000);
        assert_eq!(sim.app(2).down_count, 1);
        assert_eq!(sim.app(2).up_count, 1);
        assert!(sim.alive(2));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = ring_sim(5, 1_000, 3);
        sim.run_until(SimTime::from_micros(5_000));
        assert!(sim.now() <= SimTime::from_micros(5_000));
        // Queue still has pending work.
        assert!(!sim.run_until_quiet(0));
    }

    #[test]
    fn step_before_pops_only_due_events() {
        let mut sim = ring_sim(3, 100, 8);
        // The first three events are the time-zero Starts; a near deadline
        // still pops them because they are due.
        for _ in 0..3 {
            assert_eq!(
                sim.step_before(SimTime::from_micros(1)),
                Some(SimTime::ZERO)
            );
        }
        // Ring hops take >= 1ms, so a 1us deadline refuses the next event
        // and leaves it queued.
        let pending = sim.pending_events();
        assert_eq!(sim.step_before(SimTime::from_micros(1)), None);
        assert_eq!(sim.pending_events(), pending);
        // The same event dispatches under a generous deadline.
        assert!(sim.step_before(SimTime::from_micros(60_000_000)).is_some());
    }

    #[test]
    fn with_app_injects_work() {
        let mut sim = ring_sim(4, 5, 9);
        sim.run_until_quiet(10_000);
        let before = sim.traffic().total_msgs();
        let ran = sim.with_app(2, |_node, ctx| ctx.send(3, Token(100)));
        assert!(ran.is_some());
        sim.run_until_quiet(10_000);
        assert_eq!(sim.traffic().total_msgs(), before + 1);
        assert!(sim.app(3).seen.contains(&100));
    }

    #[test]
    fn with_app_skips_downed_nodes() {
        let mut sim = ring_sim(4, 1, 11);
        sim.schedule_down(2, SimTime::from_micros(5));
        sim.run_until_quiet(10_000);
        assert!(!sim.alive(2));
        let before = sim.traffic().total_msgs();
        // The callback must not run at all on a churn-downed node: no
        // return value, no side effects, no RNG consumption.
        let ran = sim.with_app(2, |_node, ctx| {
            ctx.send(3, Token(200));
            42
        });
        assert_eq!(ran, None);
        sim.run_until_quiet(10_000);
        assert_eq!(sim.traffic().total_msgs(), before);
        assert!(!sim.app(3).seen.contains(&200));
        // After revival the same injection works again.
        sim.schedule_up(2, sim.now() + SimDuration::from_micros(1));
        sim.run_until_quiet(10_000);
        assert_eq!(sim.with_app(2, |_node, _ctx| 42), Some(42));
    }

    #[test]
    fn traffic_ledger_counts_sends_and_receives() {
        let mut sim = ring_sim(2, 4, 5);
        sim.run_until_quiet(1_000);
        let sent: u64 = (0..2).map(|i| sim.traffic().node(i).msgs_sent).sum();
        let recv: u64 = (0..2).map(|i| sim.traffic().node(i).msgs_recv).sum();
        assert_eq!(sent, 4);
        assert_eq!(recv, 4);
    }

    #[test]
    fn lossy_topology_drops_messages() {
        let topology = Topology::uniform(2, 100, 100).with_loss(1.0);
        let mut sim = Simulator::new(topology, 4, |_| RingNode {
            n: 2,
            limit: 10,
            seen: Vec::new(),
            down_count: 0,
            up_count: 0,
        });
        sim.run_until_quiet(1_000);
        assert_eq!(sim.app(1).seen.len(), 0);
        assert_eq!(sim.messages_dropped(), 1);
    }

    #[test]
    fn compute_charges_accumulate() {
        let mut sim = ring_sim(2, 1, 6);
        let ran = sim.with_app(0, |_n, ctx| {
            ctx.charge_compute(ComputeKind::FlTask, SimDuration::from_millis(3));
            ctx.charge_compute(ComputeKind::DhtTask, SimDuration::from_millis(1));
            ctx.charge_compute(ComputeKind::FlTask, SimDuration::from_millis(2));
        });
        assert!(ran.is_some());
        assert_eq!(sim.compute().fl_us[0], 5_000);
        assert_eq!(sim.compute().dht_us[0], 1_000);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        #[derive(Clone)]
        struct Nothing;
        impl Payload for Nothing {
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl Application for TimerNode {
            type Msg = Nothing;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Nothing>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Nothing>, _: NodeIdx, _: Nothing) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Nothing>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(Topology::uniform(1, 0, 0), 0, |_| TimerNode {
            fired: Vec::new(),
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.app(0).fired, vec![1, 2, 3]);
    }

    #[test]
    fn drop_split_distinguishes_loss_and_dead() {
        // Loss-drop: total-loss link.
        let topology = Topology::uniform(2, 100, 100).with_loss(1.0);
        let mut sim = Simulator::new(topology, 4, |_| RingNode {
            n: 2,
            limit: 10,
            seen: Vec::new(),
            down_count: 0,
            up_count: 0,
        });
        sim.run_until_quiet(1_000);
        assert_eq!(sim.dropped_loss(), 1);
        assert_eq!(sim.dropped_dead(), 0);
        // Dead-drop: the destination is down on arrival.
        let mut sim = ring_sim(3, 30, 1);
        sim.schedule_down(1, SimTime::from_micros(1));
        sim.run_until_quiet(10_000);
        assert_eq!(sim.dropped_loss(), 0);
        assert!(sim.dropped_dead() >= 1);
        assert_eq!(
            sim.messages_dropped(),
            sim.dropped_loss() + sim.dropped_dead()
        );
    }

    #[test]
    fn counting_sink_observes_without_perturbing() {
        use crate::obs::CountingSink;
        let mk = |_: NodeIdx| RingNode {
            n: 4,
            limit: 25,
            seen: Vec::new(),
            down_count: 0,
            up_count: 0,
        };
        let mut plain = ring_sim(4, 25, 13);
        plain.run_until_quiet(10_000);
        let mut traced = Simulator::with_sink(
            Topology::uniform(4, 1_000, 2_000),
            13,
            CountingSink::default(),
            mk,
        );
        traced.run_until_quiet(10_000);
        // Tracing must not consume RNG draws or change scheduling.
        assert_eq!(plain.now(), traced.now());
        assert_eq!(plain.events_processed(), traced.events_processed());
        assert_eq!(plain.traffic().total_msgs(), traced.traffic().total_msgs());
        // 25 sends + 25 delivers.
        assert_eq!(traced.sink().records, 50);
    }

    #[test]
    fn recording_sink_reconstructs_causal_chain() {
        use crate::obs::{spans, RecordingSink, TraceBody};
        let mut sim = Simulator::with_sink(
            Topology::uniform(3, 1_000, 2_000),
            42,
            RecordingSink::new(3),
            |_| RingNode {
                n: 3,
                limit: 5,
                seen: Vec::new(),
                down_count: 0,
                up_count: 0,
            },
        );
        sim.run_until_quiet(10_000);
        let records = sim.sink_mut().take_records();
        // The whole token walk is one causal span rooted at node 0's start.
        let by_trace = spans(&records);
        assert_eq!(by_trace.len(), 1);
        let span = by_trace.values().next().unwrap();
        let hops: Vec<u16> = span
            .iter()
            .filter_map(|r| match r.body {
                TraceBody::Send { meta, .. } => Some(meta.hop),
                _ => None,
            })
            .collect();
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
        // Parent linkage: each send's parent is the previous send's id.
        let metas: Vec<_> = span
            .iter()
            .filter_map(|r| match r.body {
                TraceBody::Send { meta, .. } => Some(meta),
                _ => None,
            })
            .collect();
        for pair in metas.windows(2) {
            assert_eq!(pair[1].parent, pair[0].id);
            assert_eq!(pair[1].trace, pair[0].trace);
        }
        assert_eq!(metas[0].parent, crate::obs::ROOT_PARENT);
    }

    #[test]
    fn slab_recycles_slots() {
        // A long-lived ring keeps exactly one message in flight; the slab
        // must not grow with the number of events processed.
        let mut sim = ring_sim(3, 500, 12);
        sim.run_until_quiet(10_000);
        assert!(sim.events_processed() > 500);
        assert!(
            sim.slab.slots.len() <= 64,
            "slab grew to {} slots for a 1-message workload",
            sim.slab.slots.len()
        );
    }
}
