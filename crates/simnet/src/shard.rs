//! Deterministic intra-trial parallelism: conservative sharded execution.
//!
//! [`ShardedSim`] partitions the nodes of one simulation into `K` shards
//! by topology region (zones never split across shards), runs each shard
//! on its own thread with a private [`WheelQueue`]/[`EventSlab`] pair,
//! and synchronizes the shards with classic *conservative lookahead*
//! windows: all shards agree on the earliest pending event time `T`,
//! then each independently processes every local event in
//! `[T, T + L)`, where the lookahead `L` is a lower bound on the delay
//! of any inter-region message
//! ([`Topology::min_inter_region_delay`]). A message sent during the
//! window can only arrive at `>= T + L`, so cross-shard sends are parked
//! in per-pair mailboxes and handed off at the window barrier — before
//! any event they could possibly precede is dispatched.
//!
//! # The shard-invariance contract
//!
//! The sequential [`Simulator`](crate::sim::Simulator) orders same-time
//! events by a *global creation counter*, and feeds one global RNG in
//! that order. Neither survives parallel execution, so the sharded
//! engine replaces them with shard-count-independent equivalents:
//!
//! * **Event keys.** Every event's tie-break key is
//!   `(origin_node << 40) | per_origin_counter` — the node that
//!   *created* the event, and that node's private creation counter.
//!   Each node lives in exactly one shard, so its counter sequence is
//!   identical at any shard count, giving one total order
//!   `(time, origin, counter)` that every `K` dispatches in.
//! * **Closed timestamps.** An action scheduled with zero effective
//!   delay lands at `now + 1 µs` (the clock's resolution) instead of
//!   `now`, so the set of events at a timestamp is closed before that
//!   timestamp dispatches — the `(origin, counter)` order within a
//!   timestamp is then causally consistent by construction. This is the
//!   one scheduling difference from the sequential engine.
//! * **No global RNG.** The topology must be RNG-free
//!   ([`Topology::delay_is_deterministic`]), chaos must be *keyed*
//!   ([`FaultPlan::keyed_injector`]), and applications that want
//!   identical results across shard counts must not draw from
//!   [`Ctx::rng`] (each shard has a private stream, so draws are
//!   reproducible per `(seed, K)` but not across `K`).
//! * **Commutative ledgers.** Traffic and compute are aggregated per
//!   *zone* ([`ZoneLedger`]); a zone lives wholly inside one shard and
//!   the counters are sums, so merged totals are shard-count-invariant.
//!
//! Under that contract, everything observable — event counts, event
//! times, final clock, per-zone ledgers, chaos stats, application state,
//! and merged trace records — is byte-identical for any `--shards N`.
//! Relative to the sequential engine, a sharded run agrees on the event
//! multiset, event times (up to the 1 µs closure above), and all
//! order-insensitive observables; only same-instant tie-break order may
//! differ. The evaluation scenarios therefore keep the sequential engine
//! (their goldens pin its exact interleaving); the sharded engine powers
//! the million-node scale axis, with its own invariance tests.
//!
//! This module is the one sanctioned home of thread primitives in the
//! protocol crates (detlint rule DET006): workers are scoped threads,
//! window agreement uses a [`Barrier`], and mailboxes are per-`(i, j)`
//! mutexes that are never contended (writers and readers are separated
//! by the barrier).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;

use crate::bitset::BitSet;
use crate::chaos::{ChaosInjector, ChaosStats, FaultPlan};
use crate::churn::ChurnSchedule;
use crate::obs::prof::{EngineProf, EngineProfile, ShardWall, WallProfile, BAND_NONE};
use crate::obs::{DropReason, MsgMeta, TraceBody, TraceRecord, ROOT_PARENT};
use crate::queue::{EventKey, EventQueue, WheelQueue};
use crate::rng::sub_rng;
use crate::sim::{
    Action, Application, ComputeKind, Ctx, EventKind, EventSlab, Payload, PendingEvent,
};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeIdx, Topology};
use crate::traffic::{TrafficTotals, ZoneLedger};

/// Bits reserved for the per-origin creation counter in an event key's
/// sequence word; the origin node index occupies the bits above.
const COUNTER_BITS: u32 = 40;

/// Why a topology/shard-count combination cannot be sharded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// `shards == 0` was requested.
    ZeroShards,
    /// The topology draws from the RNG when sampling delay or loss
    /// (jitter, stochastic uniform latency, or nonzero loss), so a
    /// global stream order would be required.
    StochasticTopology,
    /// The topology's inter-region delay lower bound is zero — no
    /// conservative window can make progress.
    ZeroLookahead,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardError::StochasticTopology => write!(
                f,
                "sharded execution requires an RNG-free topology \
                 (zero jitter, zero loss, fixed latency)"
            ),
            ShardError::ZeroLookahead => write!(
                f,
                "inter-region delay lower bound is zero; \
                 conservative windows cannot make progress"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// The deterministic node→shard assignment for one topology.
///
/// Regions are never split: the partitioner greedily packs whole regions
/// (largest node count first, region id as tie-break) onto the currently
/// lightest shard. The requested shard count is clamped to the number of
/// populated regions, so no shard is ever empty.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Node → owning shard.
    node_shard: Vec<u32>,
    /// Node → index within its shard's local tables.
    local_index: Vec<u32>,
    /// Shard → member nodes, ascending global index.
    members: Vec<Vec<NodeIdx>>,
    /// Conservative lookahead (zero when `shards == 1`, where no window
    /// synchronization happens).
    lookahead: SimDuration,
}

impl ShardPlan {
    /// Builds a plan for `shards` shards over `topology`.
    pub fn new(topology: &Topology, shards: usize) -> Result<ShardPlan, ShardError> {
        if shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        let n = topology.len();
        assert!(
            (n as u64) < (1u64 << (64 - COUNTER_BITS)),
            "node count exceeds the event-key origin field"
        );
        let nregions = topology.num_regions().max(1);
        let mut region_count = vec![0u64; nregions];
        for i in 0..n {
            region_count[topology.region(i) as usize] += 1;
        }
        let populated = region_count.iter().filter(|&&c| c > 0).count().max(1);
        let k = shards.min(populated);
        let lookahead = if k > 1 {
            let lb = topology
                .min_inter_region_delay()
                .expect(">= 2 populated regions");
            if lb == SimDuration::ZERO {
                return Err(ShardError::ZeroLookahead);
            }
            lb
        } else {
            SimDuration::ZERO
        };
        // Greedy bin-packing of whole regions: biggest first, onto the
        // lightest shard; ties broken by region id / shard id, so the
        // assignment is a pure function of the topology.
        let mut order: Vec<usize> = (0..nregions).collect();
        order.sort_by_key(|&r| (u64::MAX - region_count[r], r));
        let mut region_shard = vec![0u32; nregions];
        let mut load = vec![0u64; k];
        for r in order {
            let lightest = (0..k).min_by_key(|&s| (load[s], s)).expect("k >= 1");
            region_shard[r] = lightest as u32;
            load[lightest] += region_count[r];
        }
        let mut node_shard = vec![0u32; n];
        let mut local_index = vec![0u32; n];
        let mut members: Vec<Vec<NodeIdx>> = vec![Vec::new(); k];
        for i in 0..n {
            let s = region_shard[topology.region(i) as usize];
            node_shard[i] = s;
            local_index[i] = members[s as usize].len() as u32;
            members[s as usize].push(i);
        }
        Ok(ShardPlan {
            node_shard,
            local_index,
            members,
            lookahead,
        })
    }

    /// Number of shards (after clamping to populated regions).
    pub fn shards(&self) -> usize {
        self.members.len()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeIdx) -> usize {
        self.node_shard[node] as usize
    }

    /// Number of nodes on shard `s`.
    pub fn shard_len(&self, s: usize) -> usize {
        self.members[s].len()
    }

    /// The conservative lookahead (zero for a single shard).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Heap bytes held by the plan's per-node tables.
    fn heap_bytes(&self) -> usize {
        self.node_shard.capacity() * 4
            + self.local_index.capacity() * 4
            + self
                .members
                .iter()
                .map(|m| m.capacity() * std::mem::size_of::<NodeIdx>())
                .sum::<usize>()
    }
}

/// One row of the window-exchange matrix: mailbox `row[j]` holds events
/// a shard sent toward shard `j`, locked only across a barrier.
type MailboxRow<M> = Vec<Mutex<Vec<RemoteEvent<M>>>>;

/// A cross-shard event in flight: its full key is precomputed by the
/// sending shard, so the receiving shard just inserts it.
struct RemoteEvent<M> {
    at: SimTime,
    seq: u64,
    dst: NodeIdx,
    kind: EventKind<M>,
    meta: MsgMeta,
    /// Creation-band classification ([`crate::obs::prof`]); the band is a
    /// creation-site fact, so it travels with the event across shards.
    band: u8,
}

/// One shard: a self-contained event loop over the shard's member nodes.
struct ShardCore<A: Application> {
    id: usize,
    /// Application state of member nodes, local index order.
    nodes: Vec<A>,
    /// Local index → global node index (ascending).
    globals: Vec<NodeIdx>,
    /// Liveness bits, local index order.
    alive: BitSet,
    /// Per-origin event creation counters (the low word of event keys).
    counters: Vec<u64>,
    queue: WheelQueue,
    slab: EventSlab<A::Msg>,
    now: SimTime,
    rng: StdRng,
    traffic: ZoneLedger,
    compute_fl_us: Vec<u64>,
    compute_dht_us: Vec<u64>,
    scratch: Vec<Action<A::Msg>>,
    events_processed: u64,
    dropped_loss: u64,
    dropped_dead: u64,
    chaos: Option<ChaosInjector>,
    /// Outgoing cross-shard events, one buffer per destination shard.
    outbox: Vec<Vec<RemoteEvent<A::Msg>>>,
    /// Trace collection: `(dispatch key, emission index, record)`;
    /// `None` when untraced (zero cost, like `NoopSink`).
    trace: Option<Vec<(EventKey, u32, TraceRecord)>>,
    /// Per-origin message-id counters (traced runs only; ids start at 1
    /// so `MsgMeta::is_traced` stays meaningful).
    msg_counters: Vec<u64>,
    /// Causal meta parked per slab slot (traced runs only).
    meta_slots: Vec<MsgMeta>,
    /// Key of the event currently dispatching (trace merge key).
    trace_key: EventKey,
    /// Emission index within the current event.
    trace_sub: u32,
    /// Deterministic engine self-profiling (`obs::prof`); `None` costs a
    /// single predictable branch per hot-path site.
    prof: Option<Box<EngineProf>>,
    /// Wall-clock phase timings (side-channel only); `None` when off.
    wall: Option<ShardWall>,
    /// Cross-shard events this shard handed off (outbox pushes). Always
    /// counted — one add per handoff — surfaced only via the wall-clock
    /// side channel, never on a golden surface.
    remote_sent: u64,
}

impl<A: Application> ShardCore<A> {
    fn new(id: usize, globals: Vec<NodeIdx>, zones: usize, seed: u64) -> Self {
        let local_n = globals.len();
        // Steady-state in-flight events per node is small (a timer plus a
        // couple of messages); a 2x hint keeps slab doubling rare without
        // paying the sequential engine's 4x reservation at 1M nodes.
        let event_cap = local_n.saturating_mul(2).max(64);
        ShardCore {
            id,
            nodes: Vec::with_capacity(local_n),
            alive: BitSet::filled(local_n, true),
            counters: vec![0; local_n],
            queue: WheelQueue::with_capacity(event_cap),
            slab: EventSlab::with_capacity(event_cap),
            now: SimTime::ZERO,
            rng: sub_rng(seed, &format!("shard-{id}")),
            traffic: ZoneLedger::new(zones),
            compute_fl_us: vec![0; zones],
            compute_dht_us: vec![0; zones],
            scratch: Vec::with_capacity(local_n.clamp(16, 1_024)),
            events_processed: 0,
            dropped_loss: 0,
            dropped_dead: 0,
            chaos: None,
            outbox: Vec::new(),
            trace: None,
            msg_counters: Vec::new(),
            meta_slots: Vec::new(),
            globals,
            trace_key: EventKey {
                time: SimTime::ZERO,
                seq: 0,
            },
            trace_sub: 0,
            prof: None,
            wall: None,
            remote_sent: 0,
        }
    }

    #[inline]
    fn traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Mints the next event-key sequence word for events originated by
    /// local node `local`: `(global_index << COUNTER_BITS) | counter`.
    #[inline]
    fn mint_seq(&mut self, local: usize) -> u64 {
        let c = self.counters[local];
        self.counters[local] = c + 1;
        debug_assert!(c < 1 << COUNTER_BITS, "per-node counter overflow");
        ((self.globals[local] as u64) << COUNTER_BITS) | c
    }

    /// Mints a message id for traced sends (a separate id space from
    /// event keys, so tracing never perturbs dispatch order).
    #[inline]
    fn mint_msg_id(&mut self, local: usize) -> u64 {
        let c = self.msg_counters[local];
        self.msg_counters[local] = c + 1;
        ((self.globals[local] as u64) << COUNTER_BITS) | c
    }

    /// Closes the current timestamp: anything scheduled at or before
    /// `now` lands at `now + 1 µs` (see the module docs).
    #[inline]
    fn close(&self, at: SimTime) -> SimTime {
        if at <= self.now {
            self.now + SimDuration::from_micros(1)
        } else {
            at
        }
    }

    fn enqueue(
        &mut self,
        at: SimTime,
        seq: u64,
        node: NodeIdx,
        kind: EventKind<A::Msg>,
        meta: MsgMeta,
        band: u8,
    ) {
        let slot = self.slab.insert(PendingEvent { node, kind });
        if self.traced() {
            let i = slot as usize;
            if self.meta_slots.len() <= i {
                self.meta_slots.resize(i + 1, MsgMeta::NONE);
            }
            self.meta_slots[i] = meta;
        }
        if let Some(p) = self.prof.as_mut() {
            p.note_band(slot, band);
        }
        self.queue.push(EventKey { time: at, seq }, slot);
    }

    /// Classifies an event created *now* and due at `at` into a scheduler
    /// band ([`crate::obs::prof`]). [`BAND_NONE`] unless profiling is on.
    #[inline]
    fn prof_classify(&mut self, at: SimTime) -> u8 {
        match self.prof.as_mut() {
            Some(p) => p.classify(self.now.as_micros(), at.as_micros()),
            None => BAND_NONE,
        }
    }

    /// Counts a cross-region message from `from` to `to` in the engine
    /// profiler (regions, not shards: the profile must not depend on the
    /// shard plan). A no-op unless profiling is on or regions match.
    #[inline]
    fn prof_note_remote(&mut self, topology: &Topology, from: NodeIdx, to: NodeIdx) {
        if self.prof.is_some() {
            let (ra, rb) = (topology.region(from), topology.region(to));
            if ra != rb {
                if let Some(p) = self.prof.as_mut() {
                    p.on_remote(ra, rb);
                }
            }
        }
    }

    /// Enqueues locally or parks in the outbox for the owning shard.
    #[allow(clippy::too_many_arguments)] // Mirrors the event-tuple fields plus the wheel band.
    fn route(
        &mut self,
        plan: &ShardPlan,
        at: SimTime,
        seq: u64,
        dst: NodeIdx,
        kind: EventKind<A::Msg>,
        meta: MsgMeta,
        band: u8,
    ) {
        let shard = plan.node_shard[dst] as usize;
        if shard == self.id {
            self.enqueue(at, seq, dst, kind, meta, band);
        } else {
            self.remote_sent += 1;
            self.outbox[shard].push(RemoteEvent {
                at,
                seq,
                dst,
                kind,
                meta,
                band,
            });
        }
    }

    fn enqueue_remote(&mut self, ev: RemoteEvent<A::Msg>) {
        debug_assert!(ev.at > self.now, "cross-shard event inside the window");
        self.enqueue(ev.at, ev.seq, ev.dst, ev.kind, ev.meta, ev.band);
    }

    /// Earliest pending event time in microseconds (`u64::MAX` if idle).
    fn next_due_us(&mut self) -> u64 {
        self.queue
            .peek()
            .map_or(u64::MAX, |(key, _)| key.time.as_micros())
    }

    #[inline]
    fn record(&mut self, r: TraceRecord) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push((self.trace_key, self.trace_sub, r));
            self.trace_sub += 1;
        }
    }

    /// Dispatches every local event with time strictly below
    /// `end_us` (exclusive).
    fn process_window(&mut self, end_us: u64, topology: &Topology, plan: &ShardPlan) {
        debug_assert!(end_us > 0);
        if let Some(p) = self.prof.as_mut() {
            // Single-shard runs open windows lazily at dispatch; clamping
            // them to this call's bound reproduces the parallel loop's
            // `min(T + L, deadline + 1)` window ends exactly. (Parallel
            // runs pre-open every window and never consult the clamp.)
            p.set_window_clamp(end_us);
        }
        let bound = SimTime::from_micros(end_us.saturating_sub(1));
        while let Some((key, slot)) = self.queue.pop_before(bound) {
            self.dispatch(key, slot, topology, plan);
        }
    }

    fn dispatch(&mut self, key: EventKey, slot: u32, topology: &Topology, plan: &ShardPlan) {
        if self.prof.is_some() {
            let ev = self.slab.peek(slot);
            let dst = ev.node;
            let groupable = !matches!(ev.kind, EventKind::Down | EventKind::Up);
            if let Some(p) = self.prof.as_mut() {
                p.on_dispatch(slot, key.time.as_micros(), dst, groupable);
            }
        }
        let meta = if self.traced() {
            self.meta_slots
                .get(slot as usize)
                .copied()
                .unwrap_or(MsgMeta::NONE)
        } else {
            MsgMeta::NONE
        };
        let PendingEvent { node, kind } = self.slab.take(slot);
        debug_assert!(key.time >= self.now, "time went backwards");
        self.now = key.time;
        self.events_processed += 1;
        self.trace_key = key;
        self.trace_sub = 0;
        let local = plan.local_index[node] as usize;
        let up = self.alive.get(local);
        // Records first (mirroring the sequential engine), then callbacks.
        if self.traced() {
            match &kind {
                EventKind::Deliver { src, msg } => {
                    let (layer, mkind) = tag(msg);
                    let (about, body) = if up {
                        (
                            node,
                            TraceBody::Deliver {
                                from: *src,
                                bytes: msg.size_bytes(),
                                meta,
                            },
                        )
                    } else {
                        (
                            *src,
                            TraceBody::Drop {
                                to: node,
                                bytes: msg.size_bytes(),
                                reason: DropReason::DeadDest,
                                meta,
                            },
                        )
                    };
                    self.record(TraceRecord {
                        at_us: self.now.as_micros(),
                        node: about,
                        layer,
                        kind: mkind,
                        body,
                    });
                }
                EventKind::Timer { token } => {
                    if up {
                        self.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "timer",
                            body: TraceBody::TimerFire { token: *token },
                        });
                    }
                }
                EventKind::Down => {
                    if up {
                        self.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "down",
                            body: TraceBody::NodeDown,
                        });
                    }
                }
                EventKind::Up => {
                    if !up {
                        self.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node,
                            layer: "sim",
                            kind: "up",
                            body: TraceBody::NodeUp,
                        });
                    }
                }
                EventKind::Start | EventKind::SendFailed { .. } => {}
            }
        }
        let cause = match &kind {
            EventKind::Deliver { .. } if up => meta,
            _ => MsgMeta::NONE,
        };
        debug_assert!(self.scratch.is_empty());
        let mut actions = std::mem::take(&mut self.scratch);
        let mut bounce: Option<NodeIdx> = None;
        {
            let mut ctx = Ctx::scoped(self.now, node, &mut actions, &mut self.rng, topology);
            match kind {
                EventKind::Start => {
                    if up {
                        self.nodes[local].on_start(&mut ctx);
                    }
                }
                EventKind::Deliver { src, msg } => {
                    if up {
                        self.traffic
                            .record_recv(topology.region(node), msg.size_bytes());
                        self.nodes[local].on_message(&mut ctx, src, msg);
                    } else {
                        self.dropped_dead += 1;
                        bounce = Some(src);
                    }
                }
                EventKind::SendFailed { peer } => {
                    if up {
                        self.nodes[local].on_send_failed(&mut ctx, peer);
                    }
                }
                EventKind::Timer { token } => {
                    if up {
                        self.nodes[local].on_timer(&mut ctx, token);
                    }
                }
                EventKind::Down => {
                    if up {
                        self.alive.set(local, false);
                        self.nodes[local].on_down();
                    }
                }
                EventKind::Up => {
                    if !up {
                        self.alive.set(local, true);
                        self.nodes[local].on_up(&mut ctx);
                    }
                }
            }
        }
        self.apply_actions(node, local, &mut actions, cause, topology, plan);
        self.scratch = actions;
        if let Some(src) = bounce {
            // TCP-RST-like failure bounce, originated by the dead
            // destination's shard; it re-crosses the shard boundary with
            // at least one full network delay, so the lookahead bound
            // still covers it.
            let delay = topology.sample_delay(node, src, 64, &mut self.rng);
            let at = self.close(self.now + delay);
            let seq = self.mint_seq(local);
            let band = self.prof_classify(at);
            self.prof_note_remote(topology, node, src);
            self.route(
                plan,
                at,
                seq,
                src,
                EventKind::SendFailed { peer: node },
                MsgMeta::NONE,
                band,
            );
        }
    }

    fn apply_actions(
        &mut self,
        src: NodeIdx,
        local: usize,
        actions: &mut Vec<Action<A::Msg>>,
        cause: MsgMeta,
        topology: &Topology,
        plan: &ShardPlan,
    ) {
        let zone = topology.region(src);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg, extra } => {
                    let size = msg.size_bytes();
                    self.traffic.record_send(zone, size);
                    let mut meta = MsgMeta::NONE;
                    if self.traced() {
                        let id = self.mint_msg_id(local);
                        meta = if cause.is_traced() {
                            MsgMeta {
                                trace: cause.trace,
                                id,
                                parent: cause.id,
                                hop: cause.hop.saturating_add(1),
                            }
                        } else {
                            MsgMeta {
                                trace: id,
                                id,
                                parent: ROOT_PARENT,
                                hop: 0,
                            }
                        };
                    }
                    // No loss sampling: `delay_is_deterministic` pins the
                    // base loss probability to zero, and the delay sample
                    // below consumes no RNG.
                    let mut delay = topology.sample_delay(src, to, size, &mut self.rng);
                    let mut duplicate = false;
                    if let Some(chaos) = self.chaos.as_mut() {
                        let verdict = chaos.on_send(self.now, src, to, topology);
                        if verdict.drop {
                            self.dropped_loss += 1;
                            if self.traced() {
                                let (layer, kind) = tag(&msg);
                                let body = TraceBody::Drop {
                                    to,
                                    bytes: size,
                                    reason: DropReason::Chaos,
                                    meta,
                                };
                                self.record(TraceRecord {
                                    at_us: self.now.as_micros(),
                                    node: src,
                                    layer,
                                    kind,
                                    body,
                                });
                            }
                            continue;
                        }
                        if verdict.delay_factor > 1 {
                            delay = delay.saturating_mul(verdict.delay_factor);
                            if self.traced() {
                                let (layer, kind) = tag(&msg);
                                self.record(TraceRecord {
                                    at_us: self.now.as_micros(),
                                    node: src,
                                    layer,
                                    kind,
                                    body: TraceBody::ChaosEffect {
                                        to,
                                        effect: "delay",
                                    },
                                });
                            }
                        }
                        duplicate = verdict.duplicate;
                        if duplicate && self.traced() {
                            let (layer, kind) = tag(&msg);
                            self.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node: src,
                                layer,
                                kind,
                                body: TraceBody::ChaosEffect {
                                    to,
                                    effect: "duplicate",
                                },
                            });
                        }
                    }
                    let at = self.close(self.now + extra + delay);
                    if self.traced() {
                        let (layer, kind) = tag(&msg);
                        self.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node: src,
                            layer,
                            kind,
                            body: TraceBody::Send {
                                to,
                                bytes: size,
                                meta,
                                arrive_at_us: at.as_micros(),
                            },
                        });
                    }
                    if duplicate {
                        let mut dup_meta = MsgMeta::NONE;
                        if self.traced() {
                            let id = self.mint_msg_id(local);
                            dup_meta = MsgMeta { id, ..meta };
                            let (layer, kind) = tag(&msg);
                            self.record(TraceRecord {
                                at_us: self.now.as_micros(),
                                node: src,
                                layer,
                                kind,
                                body: TraceBody::Send {
                                    to,
                                    bytes: size,
                                    meta: dup_meta,
                                    arrive_at_us: at.as_micros(),
                                },
                            });
                        }
                        let seq = self.mint_seq(local);
                        let band = self.prof_classify(at);
                        self.prof_note_remote(topology, src, to);
                        self.route(
                            plan,
                            at,
                            seq,
                            to,
                            EventKind::Deliver {
                                src,
                                msg: msg.clone(),
                            },
                            dup_meta,
                            band,
                        );
                    }
                    let seq = self.mint_seq(local);
                    let band = self.prof_classify(at);
                    self.prof_note_remote(topology, src, to);
                    self.route(
                        plan,
                        at,
                        seq,
                        to,
                        EventKind::Deliver { src, msg },
                        meta,
                        band,
                    );
                }
                Action::Timer { delay, token } => {
                    let at = self.close(self.now + delay);
                    let seq = self.mint_seq(local);
                    let band = self.prof_classify(at);
                    self.enqueue(
                        at,
                        seq,
                        src,
                        EventKind::Timer { token },
                        MsgMeta::NONE,
                        band,
                    );
                }
                Action::Compute { kind, amount } => {
                    match kind {
                        ComputeKind::FlTask => {
                            self.compute_fl_us[zone as usize] += amount.as_micros()
                        }
                        ComputeKind::DhtTask => {
                            self.compute_dht_us[zone as usize] += amount.as_micros()
                        }
                    }
                    if self.traced() {
                        let task = match kind {
                            ComputeKind::FlTask => "fl",
                            ComputeKind::DhtTask => "dht",
                        };
                        self.record(TraceRecord {
                            at_us: self.now.as_micros(),
                            node: src,
                            layer: "sim",
                            kind: "compute",
                            body: TraceBody::Compute {
                                task,
                                us: amount.as_micros(),
                            },
                        });
                    }
                }
            }
        }
    }

    /// Heap bytes reserved by this shard's hot state.
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<A>()
            + self.globals.capacity() * std::mem::size_of::<NodeIdx>()
            + self.alive.heap_bytes()
            + self.counters.capacity() * 8
            + self.queue.heap_bytes()
            + self.slab.heap_bytes()
            + self.msg_counters.capacity() * 8
            + self.meta_slots.capacity() * std::mem::size_of::<MsgMeta>()
    }
}

/// Normalizes a payload's layer/kind tags for record emission (the same
/// normalization as the sequential engine).
#[inline]
fn tag<M: Payload>(msg: &M) -> (&'static str, &'static str) {
    let layer = msg.layer();
    let kind = msg.kind();
    (
        if layer.is_empty() { "app" } else { layer },
        if kind.is_empty() { "msg" } else { kind },
    )
}

/// The sharded simulator: `K` conservative-parallel event loops over one
/// topology. See the module docs for the invariance contract.
pub struct ShardedSim<A: Application> {
    topology: Topology,
    plan: ShardPlan,
    cores: Vec<ShardCore<A>>,
}

impl<A: Application> ShardedSim<A> {
    /// Builds a sharded simulator over `topology` with (at most) `shards`
    /// shards, constructing nodes with `make_node` in global index order.
    /// `on_start` fires for every node at time zero, exactly like
    /// [`Simulator::new`](crate::sim::Simulator::new).
    ///
    /// Fails when the topology is stochastic or (for `shards > 1`) when
    /// no positive lookahead can be derived.
    pub fn new(
        topology: Topology,
        seed: u64,
        shards: usize,
        mut make_node: impl FnMut(NodeIdx) -> A,
    ) -> Result<Self, ShardError> {
        if !topology.delay_is_deterministic() {
            return Err(ShardError::StochasticTopology);
        }
        let plan = ShardPlan::new(&topology, shards)?;
        let k = plan.shards();
        let zones = topology.num_regions().max(1);
        let mut cores: Vec<ShardCore<A>> = (0..k)
            .map(|id| ShardCore::new(id, plan.members[id].clone(), zones, seed))
            .collect();
        for core in &mut cores {
            core.outbox = (0..k).map(|_| Vec::new()).collect();
        }
        // Nodes are constructed in global order (construction may be
        // index-sensitive), then moved to their shard.
        for g in 0..topology.len() {
            let app = make_node(g);
            cores[plan.node_shard[g] as usize].nodes.push(app);
        }
        // Time-zero Start events, one per node, keyed by the node itself.
        for core in &mut cores {
            for local in 0..core.globals.len() {
                let seq = core.mint_seq(local);
                let node = core.globals[local];
                core.enqueue(
                    SimTime::ZERO,
                    seq,
                    node,
                    EventKind::Start,
                    MsgMeta::NONE,
                    BAND_NONE,
                );
            }
        }
        Ok(ShardedSim {
            topology,
            plan,
            cores,
        })
    }

    /// Enables trace collection (records retrieved with
    /// [`ShardedSim::take_trace`]). Must be called before running.
    pub fn with_tracing(mut self) -> Self {
        for core in &mut self.cores {
            core.trace = Some(Vec::new());
            core.msg_counters = vec![1; core.globals.len()];
        }
        self
    }

    /// Enables deterministic engine self-profiling ([`crate::obs::prof`]).
    /// Must be called before running. Every profiled quantity is a
    /// function of simulated state only — the collector is seeded with the
    /// *topology's* lookahead bound, not the plan's (which is zero for one
    /// shard) — so [`ShardedSim::engine_profile`] is byte-identical across
    /// shard counts for a fixed `(scenario, seed)`. Time-zero Start events
    /// predate the collector and stay band-unclassified, uniformly.
    pub fn with_profiling(mut self) -> Self {
        let lookahead = self
            .topology
            .min_inter_region_delay()
            .map_or(0, |d| d.as_micros());
        for core in &mut self.cores {
            core.prof = Some(Box::new(EngineProf::new(lookahead)));
        }
        self
    }

    /// Enables wall-clock per-phase timing (process/barrier/exchange per
    /// shard worker), retrieved with [`ShardedSim::wall_profile`]. The
    /// measurements are host wall time — nondeterministic by nature — and
    /// only ever surface through the `--profile-wall` side channel.
    pub fn with_wall_profiling(mut self) -> Self {
        for core in &mut self.cores {
            core.wall = Some(ShardWall::default());
        }
        self
    }

    /// The merged engine-profile snapshot, if profiling was enabled.
    pub fn engine_profile(&self) -> Option<EngineProfile> {
        if self.cores.iter().all(|c| c.prof.is_none()) {
            return None;
        }
        Some(EngineProf::merged(
            self.cores.iter().filter_map(|c| c.prof.as_deref()),
        ))
    }

    /// The wall-clock side-channel snapshot, if wall profiling was
    /// enabled. Implementation-level by design: reports the *executed*
    /// shard count, per-shard handoff counts, and host-time phase totals.
    pub fn wall_profile(&self) -> Option<WallProfile> {
        if self.cores.iter().all(|c| c.wall.is_none()) {
            return None;
        }
        Some(WallProfile {
            shards: self.cores.len(),
            lookahead_us: self.plan.lookahead().as_micros(),
            per_shard: self
                .cores
                .iter()
                .map(|c| {
                    let mut w = c.wall.clone().unwrap_or_default();
                    w.remote_sent = c.remote_sent;
                    w.events = c.events_processed;
                    w
                })
                .collect(),
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Whether the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.topology.len() == 0
    }

    /// Number of shards actually in use.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// The conservative lookahead window (zero for one shard).
    pub fn lookahead(&self) -> SimDuration {
        self.plan.lookahead()
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulated time: the latest instant any shard has reached.
    pub fn now(&self) -> SimTime {
        self.cores
            .iter()
            .map(|c| c.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.cores.iter().map(|c| c.events_processed).sum()
    }

    /// Messages dropped in flight (chaos faults).
    pub fn dropped_loss(&self) -> u64 {
        self.cores.iter().map(|c| c.dropped_loss).sum()
    }

    /// Messages dropped on arrival at a dead destination.
    pub fn dropped_dead(&self) -> u64 {
        self.cores.iter().map(|c| c.dropped_dead).sum()
    }

    /// Read access to a node's application state.
    pub fn app(&self, i: NodeIdx) -> &A {
        let core = &self.cores[self.plan.node_shard[i] as usize];
        &core.nodes[self.plan.local_index[i] as usize]
    }

    /// Iterates over all application states in global node order.
    pub fn apps(&self) -> impl Iterator<Item = &A> {
        (0..self.len()).map(|i| self.app(i))
    }

    /// Whether node `i` is currently up.
    pub fn alive(&self, i: NodeIdx) -> bool {
        let core = &self.cores[self.plan.node_shard[i] as usize];
        core.alive.get(self.plan.local_index[i] as usize)
    }

    /// The merged per-zone traffic ledger.
    pub fn traffic(&self) -> ZoneLedger {
        let mut merged = ZoneLedger::new(self.topology.num_regions().max(1));
        for core in &self.cores {
            merged.merge(&core.traffic);
        }
        merged
    }

    /// Whole-run traffic totals.
    pub fn traffic_totals(&self) -> TrafficTotals {
        self.traffic().totals()
    }

    /// Total simulated compute microseconds, `(fl, dht)`.
    pub fn compute_totals(&self) -> (u64, u64) {
        let fl = self.cores.iter().flat_map(|c| c.compute_fl_us.iter()).sum();
        let dht = self
            .cores
            .iter()
            .flat_map(|c| c.compute_dht_us.iter())
            .sum();
        (fl, dht)
    }

    /// Merged chaos statistics (zero when no chaos is installed).
    pub fn chaos_stats(&self) -> ChaosStats {
        let mut total = ChaosStats::default();
        for core in &self.cores {
            if let Some(chaos) = core.chaos.as_ref() {
                total.dropped += chaos.stats.dropped;
                total.duplicated += chaos.stats.duplicated;
                total.delayed += chaos.stats.delayed;
            }
        }
        total
    }

    /// Schedules node `i` to go down at `at` (call before running).
    pub fn schedule_down(&mut self, i: NodeIdx, at: SimTime) {
        self.schedule_transition(i, at, true);
    }

    /// Schedules node `i` to come back up at `at` (call before running).
    pub fn schedule_up(&mut self, i: NodeIdx, at: SimTime) {
        self.schedule_transition(i, at, false);
    }

    fn schedule_transition(&mut self, i: NodeIdx, at: SimTime, down: bool) {
        let core = &mut self.cores[self.plan.node_shard[i] as usize];
        let local = self.plan.local_index[i] as usize;
        let seq = core.mint_seq(local);
        let kind = if down { EventKind::Down } else { EventKind::Up };
        let band = core.prof_classify(at);
        core.enqueue(at, seq, i, kind, MsgMeta::NONE, band);
    }

    /// Applies a whole churn schedule (call before running).
    pub fn apply_churn(&mut self, schedule: &ChurnSchedule) {
        for ev in schedule.events() {
            self.schedule_transition(ev.node, ev.at, ev.down);
        }
    }

    /// Installs `plan`'s faults as *keyed* injectors (one per shard,
    /// compiled from the same `(plan, seed)`) plus its churn schedule.
    /// The keyed form is required: see [`FaultPlan::keyed_injector`].
    pub fn apply_plan(&mut self, plan: &FaultPlan, seed: u64) {
        for core in &mut self.cores {
            let injector = plan.keyed_injector(seed);
            debug_assert!(injector.is_keyed());
            core.chaos = Some(injector);
        }
        self.apply_churn(plan.churn());
    }

    /// Merged trace records in the shard-count-invariant
    /// `(time, origin, counter, emission index)` order. Drains every
    /// shard's buffer.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        let mut all: Vec<(EventKey, u32, TraceRecord)> = Vec::new();
        for core in &mut self.cores {
            if let Some(tr) = core.trace.as_mut() {
                all.append(tr);
            }
        }
        all.sort_by_key(|(key, sub, _)| (*key, *sub));
        all.into_iter().map(|(_, _, r)| r).collect()
    }

    /// Heap bytes reserved by per-node simulator state: shard cores
    /// (apps, liveness, counters, queues, slabs), the shard plan's
    /// index tables, and the topology's per-node tables. The
    /// `million_node` workload divides this by the node count for its
    /// bytes-per-node ceiling.
    pub fn state_bytes(&self) -> usize {
        self.cores.iter().map(|c| c.heap_bytes()).sum::<usize>()
            + self.plan.heap_bytes()
            + self.topology.heap_bytes()
    }
}

impl<A: Application + Send> ShardedSim<A>
where
    A::Msg: Send,
{
    /// Runs until every shard's queue holds no event due at or before
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.events_processed();
        if self.cores.len() == 1 {
            // Single shard: no windows, no threads, no handoff — the
            // zero-cost baseline path.
            let end = deadline.as_micros().saturating_add(1);
            let core = &mut self.cores[0];
            let t0 = core.wall.is_some().then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
            core.process_window(end, &self.topology, &self.plan);
            if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                w.process_ns += t0.elapsed().as_nanos() as u64;
            }
        } else {
            self.run_parallel(deadline);
        }
        self.events_processed() - before
    }

    /// Runs until every queue drains. Returns events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// The conservative-parallel window loop. One scoped worker thread
    /// per shard; two phases per window (process, exchange), separated
    /// by barriers so the per-pair mailboxes are never contended.
    fn run_parallel(&mut self, deadline: SimTime) {
        let k = self.cores.len();
        let lookahead_us = self.plan.lookahead().as_micros().max(1);
        let deadline_us = deadline.as_micros();
        let next_due: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let mailboxes: Vec<MailboxRow<A::Msg>> = (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = Barrier::new(k);
        let topology = &self.topology;
        let plan = &self.plan;
        std::thread::scope(|scope| {
            for core in self.cores.iter_mut() {
                let next_due = &next_due;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                scope.spawn(move || loop {
                    // Wall-clock phase timing is taken only when enabled
                    // and only surfaces via the --profile-wall side
                    // channel; it never touches simulated state.
                    let timed = core.wall.is_some();
                    next_due[core.id].store(core.next_due_us(), Ordering::SeqCst);
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    barrier.wait();
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.barrier_ns += t0.elapsed().as_nanos() as u64;
                    }
                    // Every worker computes the same window from the same
                    // published values, so they agree without a leader.
                    let t = next_due
                        .iter()
                        .map(|a| a.load(Ordering::SeqCst))
                        .min()
                        .expect("k >= 1");
                    if t == u64::MAX || t > deadline_us {
                        break;
                    }
                    let end_us = t
                        .saturating_add(lookahead_us)
                        .min(deadline_us.saturating_add(1));
                    if let Some(p) = core.prof.as_mut() {
                        // Pre-open this window on every core — even cores
                        // with nothing due — so per-window event counts
                        // stay index-aligned and merge shard-invariantly.
                        p.window_open(end_us);
                    }
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    core.process_window(end_us, topology, plan);
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.process_ns += t0.elapsed().as_nanos() as u64;
                    }
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    for (j, out) in core.outbox.iter_mut().enumerate() {
                        if !out.is_empty() {
                            mailboxes[core.id][j]
                                .lock()
                                .expect("mailbox poisoned")
                                .append(out);
                        }
                    }
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.exchange_ns += t0.elapsed().as_nanos() as u64;
                    }
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    barrier.wait();
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.barrier_ns += t0.elapsed().as_nanos() as u64;
                    }
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    for row in mailboxes.iter() {
                        let mut inbox = row[core.id].lock().expect("mailbox poisoned");
                        for ev in inbox.drain(..) {
                            core.enqueue_remote(ev);
                        }
                    }
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.exchange_ns += t0.elapsed().as_nanos() as u64;
                    }
                    let t0 = timed.then(Instant::now); // det: allow(entropy: wall-clock phase timing, surfaced only via the --profile-wall side channel)
                    barrier.wait();
                    if let (Some(t0), Some(w)) = (t0, core.wall.as_mut()) {
                        w.barrier_ns += t0.elapsed().as_nanos() as u64;
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::sim::Simulator;
    use crate::topology::{LatencyModel, NodeProfile};

    /// A two-zone topology with fixed latency: `n` nodes split evenly,
    /// zone 0 then zone 1, `latency_us` between any pair.
    fn two_zone(n: usize, latency_us: u64) -> Topology {
        let points: Vec<GeoPoint> = (0..n).map(|_| GeoPoint::new(0.0, 0.0)).collect();
        let regions: Vec<u16> = (0..n).map(|i| if i < n / 2 { 0 } else { 1 }).collect();
        Topology::from_parts(
            points,
            regions,
            vec![NodeProfile::default(); n],
            LatencyModel::Uniform {
                min_us: latency_us,
                max_us: latency_us,
            },
        )
        .with_jitter(0.0)
    }

    /// Like [`two_zone`] but with an arbitrary region-size profile:
    /// `counts[r]` nodes in region `r`, laid out contiguously.
    fn many_zones(counts: &[usize], latency_us: u64) -> Topology {
        let n: usize = counts.iter().sum();
        let mut regions = Vec::with_capacity(n);
        for (r, &c) in counts.iter().enumerate() {
            regions.extend(std::iter::repeat_n(r as u16, c));
        }
        Topology::from_parts(
            vec![GeoPoint::new(0.0, 0.0); n],
            regions,
            vec![NodeProfile::default(); n],
            LatencyModel::Uniform {
                min_us: latency_us,
                max_us: latency_us,
            },
        )
        .with_jitter(0.0)
    }

    #[test]
    fn packs_more_regions_than_shards_greedily() {
        // Five regions of uneven size onto fewer shards: whole regions stay
        // together and the greedy biggest-first/lightest-shard packing is a
        // pure function of the topology. Region r starts at node
        // `first[r]`: sizes 7/1/4/2/5.
        let topo = many_zones(&[7, 1, 4, 2, 5], 300);
        let first = [0usize, 7, 8, 12, 14];
        let plan = ShardPlan::new(&topo, 2).unwrap();
        assert_eq!(plan.shards(), 2);
        // Whole regions never split across shards.
        for i in 0..topo.len() {
            assert_eq!(
                plan.shard_of(i),
                plan.shard_of(first[topo.region(i) as usize]),
                "region of node {i} split"
            );
        }
        // Greedy order (size desc, region id tie-break): r0(7)→s0,
        // r4(5)→s1, r2(4)→s1 (=9), r3(2)→s0 (=9), r1(1)→s0 (=10).
        let rs: Vec<usize> = first.iter().map(|&i| plan.shard_of(i)).collect();
        assert_eq!(rs, [0, 0, 1, 0, 1]);
        assert_eq!((plan.shard_len(0), plan.shard_len(1)), (10, 9));
        assert_eq!(plan.lookahead(), SimDuration::from_micros(300));
        // Three shards, still fewer than regions: r0→s0, r4→s1, r2→s2,
        // r3→s2 (=6), r1→s1 (=6).
        let plan3 = ShardPlan::new(&topo, 3).unwrap();
        let rs3: Vec<usize> = first.iter().map(|&i| plan3.shard_of(i)).collect();
        assert_eq!(rs3, [0, 1, 2, 2, 1]);
        let lens3: Vec<usize> = (0..3).map(|s| plan3.shard_len(s)).collect();
        assert_eq!(lens3, [7, 6, 6]);
    }

    #[test]
    fn empty_regions_do_not_count_toward_the_shard_clamp() {
        // Region 1 exists in the id space but holds no nodes: only the two
        // populated regions can host shards.
        let sparse = many_zones(&[3, 0, 3], 100);
        assert_eq!(ShardPlan::new(&sparse, 4).unwrap().shards(), 2);
    }

    /// Ping-pong across the zone boundary: node `i` exchanges `rounds`
    /// messages with its mirror `n - 1 - i`.
    struct Pong {
        n: usize,
        rounds: u64,
        recvd: u64,
        failed: u64,
    }

    #[derive(Clone)]
    struct Ball(u64);

    impl Payload for Ball {
        fn size_bytes(&self) -> usize {
            16
        }
    }

    impl Application for Pong {
        type Msg = Ball;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ball>) {
            if ctx.me() < self.n / 2 {
                ctx.send(self.n - 1 - ctx.me(), Ball(0));
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Ball>, from: NodeIdx, msg: Ball) {
            self.recvd += 1;
            if msg.0 + 1 < self.rounds * 2 {
                ctx.send(from, Ball(msg.0 + 1));
            }
        }

        fn on_send_failed(&mut self, _ctx: &mut Ctx<'_, Ball>, _peer: NodeIdx) {
            self.failed += 1;
        }
    }

    fn observables(sim: &ShardedSim<Pong>) -> (u64, u64, TrafficTotals, Vec<u64>, u64) {
        (
            sim.events_processed(),
            sim.now().as_micros(),
            sim.traffic_totals(),
            sim.apps().map(|a| a.recvd).collect(),
            sim.dropped_dead(),
        )
    }

    fn run_sharded(n: usize, shards: usize) -> ShardedSim<Pong> {
        let mut sim = ShardedSim::new(two_zone(n, 500), 7, shards, |_| Pong {
            n,
            rounds: 8,
            recvd: 0,
            failed: 0,
        })
        .expect("shardable");
        sim.run_to_quiescence();
        sim
    }

    #[test]
    fn plan_partitions_whole_regions_deterministically() {
        let topo = two_zone(100, 300);
        let plan = ShardPlan::new(&topo, 2).unwrap();
        assert_eq!(plan.shards(), 2);
        for i in 0..100 {
            assert_eq!(
                plan.shard_of(i),
                plan.shard_of(if i < 50 { 0 } else { 99 }),
                "zone split across shards"
            );
        }
        assert_eq!(plan.shard_len(0) + plan.shard_len(1), 100);
        assert_eq!(plan.lookahead(), SimDuration::from_micros(300));
        // More shards than populated regions clamps.
        assert_eq!(ShardPlan::new(&topo, 8).unwrap().shards(), 2);
    }

    #[test]
    fn stochastic_topologies_are_rejected() {
        let topo = Topology::uniform(10, 100, 200);
        assert_eq!(
            ShardedSim::<Pong>::new(topo, 1, 1, |_| unreachable!()).err(),
            Some(ShardError::StochasticTopology)
        );
        let zero = two_zone(10, 0);
        assert_eq!(
            ShardPlan::new(&zero, 2).err(),
            Some(ShardError::ZeroLookahead)
        );
        // One shard needs no lookahead.
        assert!(ShardPlan::new(&zero, 1).is_ok());
    }

    #[test]
    fn results_are_shard_count_invariant() {
        let base = observables(&run_sharded(40, 1));
        for k in [2, 4] {
            // 2 zones -> clamped to 2 shards for k = 4; both must still
            // agree with the single-shard run byte for byte.
            assert_eq!(base, observables(&run_sharded(40, k)), "shards = {k}");
        }
        // Sanity: 40 starts + 20 pairs x 16 deliveries.
        assert_eq!(base.0, 360);
    }

    #[test]
    fn sharded_matches_sequential_on_commutative_observables() {
        let n = 40;
        let make = |_: NodeIdx| Pong {
            n,
            rounds: 8,
            recvd: 0,
            failed: 0,
        };
        let mut seq = Simulator::new(two_zone(n, 500), 7, make);
        seq.run_until_quiet(1_000_000);
        let sharded = run_sharded(n, 2);
        assert_eq!(seq.events_processed(), sharded.events_processed());
        assert_eq!(seq.now(), sharded.now());
        assert_eq!(seq.traffic().totals(), sharded.traffic_totals());
        let seq_recvd: Vec<u64> = seq.apps().map(|a| a.recvd).collect();
        let sh_recvd: Vec<u64> = sharded.apps().map(|a| a.recvd).collect();
        assert_eq!(seq_recvd, sh_recvd);
    }

    #[test]
    #[cfg_attr(miri, ignore = "three full churn sims are too slow under Miri")]
    fn churn_is_shard_invariant_and_matches_sequential() {
        let n = 20;
        let make = |_: NodeIdx| Pong {
            n,
            rounds: 50,
            recvd: 0,
            failed: 0,
        };
        // Mirror node 2 goes down mid-run and comes back; arrivals land
        // on multiples of 500 µs, the transitions on odd times, so the
        // sequential and sharded tie-breaks cannot interleave.
        let down_at = SimTime::from_micros(3_250);
        let up_at = SimTime::from_micros(9_750);
        let run_k = |k: usize| {
            let mut sim = ShardedSim::new(two_zone(n, 500), 3, k, make).unwrap();
            sim.schedule_down(17, down_at);
            sim.schedule_up(17, up_at);
            sim.run_to_quiescence();
            (observables(&sim), sim.apps().map(|a| a.failed).sum::<u64>())
        };
        let (base, base_failed) = run_k(1);
        assert_eq!((base.clone(), base_failed), run_k(2));
        assert!(base.4 > 0, "dead-destination drops must occur");
        assert!(base_failed > 0, "send-failure bounces must fire");

        let mut seq = Simulator::new(two_zone(n, 500), 3, make);
        seq.schedule_down(17, down_at);
        seq.schedule_up(17, up_at);
        seq.run_until_quiet(10_000_000);
        assert_eq!(seq.events_processed(), base.0);
        assert_eq!(seq.dropped_dead(), base.4);
        assert_eq!(seq.apps().map(|a| a.failed).sum::<u64>(), base_failed);
    }

    #[test]
    #[cfg_attr(miri, ignore = "chaos-RNG sims draw per event; too slow under Miri")]
    fn keyed_chaos_is_shard_invariant() {
        use crate::chaos::{Fault, FaultKind};
        let n = 24;
        let plan = FaultPlan::none()
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(20_000),
                FaultKind::LossSpike { prob: 0.2 },
            ))
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(20_000),
                FaultKind::Duplicate { prob: 0.15 },
            ));
        let run_k = |k: usize| {
            let mut sim = ShardedSim::new(two_zone(n, 500), 9, k, |_| Pong {
                n,
                rounds: 30,
                recvd: 0,
                failed: 0,
            })
            .unwrap();
            sim.apply_plan(&plan, 11);
            sim.run_to_quiescence();
            let stats = sim.chaos_stats();
            (observables(&sim), stats, sim.dropped_loss())
        };
        let base = run_k(1);
        assert_eq!(base, run_k(2));
        assert!(base.1.dropped > 0, "loss spike never fired");
        assert!(base.1.duplicated > 0, "duplication never fired");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "profiling reads Instant::now and runs three chaos sims; too slow under Miri"
    )]
    fn engine_profile_is_shard_count_invariant() {
        use crate::chaos::{Fault, FaultKind};
        use crate::trial::TrialReport;
        // Four populated regions so four shards actually run four window
        // loops; chaos (loss + duplication) and churn exercise the drop,
        // duplicate, and bounce creation sites.
        let counts = [7usize, 5, 6, 6];
        let n: usize = counts.iter().sum();
        let plan = FaultPlan::none()
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(20_000),
                FaultKind::LossSpike { prob: 0.2 },
            ))
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(20_000),
                FaultKind::Duplicate { prob: 0.15 },
            ));
        let run_k = |k: usize| {
            let mut sim = ShardedSim::new(many_zones(&counts, 500), 9, k, |_| Pong {
                n,
                rounds: 30,
                recvd: 0,
                failed: 0,
            })
            .unwrap()
            .with_profiling();
            sim.apply_plan(&plan, 11);
            sim.schedule_down(n - 1, SimTime::from_micros(3_250));
            sim.schedule_up(n - 1, SimTime::from_micros(9_750));
            sim.run_to_quiescence();
            let profile = sim.engine_profile().expect("profiling enabled");
            (TrialReport::capture_sharded(&sim).to_json(), profile)
        };
        let (base_json, base) = run_k(1);
        for k in [2, 4] {
            let (json, _) = run_k(k);
            assert_eq!(base_json, json, "shards = {k}");
        }
        // The profile is non-trivial: many conservative windows, real
        // cross-region traffic on every mirror pair, delivery groups with
        // a sane singleton ratio.
        assert!(base.windows > 10, "windows = {}", base.windows);
        assert_eq!(base.barrier_rounds(), 3 * base.windows);
        assert!(base.remote_msgs > 0);
        assert!(base.remote_pairs >= 4, "pairs = {}", base.remote_pairs);
        assert!(base.groups > 0);
        let ratio = base.singleton_ratio();
        assert!((0.0..=1.0).contains(&ratio), "ratio = {ratio}");
        assert!(base.late + base.near + base.far > 0);
        assert!(base_json.contains(",\"engine_profile\":{\"sched\":"));
    }

    #[test]
    fn traces_merge_identically_across_shard_counts() {
        let n = 16;
        let trace_k = |k: usize| {
            let mut sim = ShardedSim::new(two_zone(n, 700), 5, k, |_| Pong {
                n,
                rounds: 4,
                recvd: 0,
                failed: 0,
            })
            .unwrap()
            .with_tracing();
            sim.run_to_quiescence();
            crate::obs::jsonl_trace(&sim.take_trace())
        };
        let t1 = trace_k(1);
        assert_eq!(t1, trace_k(2));
        assert!(t1.lines().count() > n * 4, "trace is non-trivial");
    }

    #[test]
    fn zero_delay_timers_close_the_timestamp() {
        // A timer armed with zero delay must fire 1 µs later, not at the
        // same instant (the closed-timestamp rule), at any shard count.
        struct Zeno {
            fired: u64,
        }
        #[derive(Clone)]
        struct Nil;
        impl Payload for Nil {
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl Application for Zeno {
            type Msg = Nil;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Nil>) {
                ctx.set_timer(SimDuration::ZERO, 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Nil>, _: NodeIdx, _: Nil) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Nil>, _token: u64) {
                self.fired += 1;
                if self.fired < 5 {
                    ctx.set_timer(SimDuration::ZERO, 1);
                }
            }
        }
        let mut sim = ShardedSim::new(two_zone(4, 100), 1, 2, |_| Zeno { fired: 0 }).unwrap();
        sim.run_to_quiescence();
        assert_eq!(sim.now(), SimTime::from_micros(5));
        assert!(sim.apps().all(|a| a.fired == 5));
    }

    #[test]
    #[cfg_attr(miri, ignore = "200-node sim is too slow under Miri")]
    fn state_bytes_scale_with_nodes_not_events() {
        let sim = run_sharded(200, 2);
        let bytes = sim.state_bytes();
        assert!(bytes > 0);
        // Generous sanity ceiling: a few hundred bytes per node.
        assert!(
            bytes < 200 * 2_048,
            "unexpectedly heavy per-node state: {bytes}"
        );
    }
}
