//! Per-node traffic accounting with transport-overhead models.
//!
//! Figure 7 of the paper reports *traffic per node* under TCP and UDP as the
//! number of dataflow trees grows. The ledger therefore records, for every
//! node, payload bytes and on-the-wire bytes under both transports, where
//! the on-the-wire size adds per-packet header overhead after segmenting the
//! payload at the MSS.

use serde::{Deserialize, Serialize};

use crate::topology::NodeIdx;

/// Maximum segment size used to packetize payloads (Ethernet-ish).
pub const MSS_BYTES: usize = 1_460;
/// Per-packet header overhead for TCP over IPv4 (TCP 20 + IP 20).
pub const TCP_HEADER_BYTES: usize = 40;
/// Per-packet header overhead for UDP over IPv4 (UDP 8 + IP 20).
pub const UDP_HEADER_BYTES: usize = 28;
/// Extra bytes charged per *message* under TCP to amortize connection
/// management (SYN/ACK/FIN exchanges and pure ACKs).
pub const TCP_PER_MESSAGE_BYTES: usize = 120;

/// On-the-wire size of a `payload`-byte message under TCP.
pub fn tcp_wire_bytes(payload: usize) -> usize {
    let packets = payload.div_ceil(MSS_BYTES).max(1);
    payload + packets * TCP_HEADER_BYTES + TCP_PER_MESSAGE_BYTES
}

/// On-the-wire size of a `payload`-byte message under UDP.
pub fn udp_wire_bytes(payload: usize) -> usize {
    let packets = payload.div_ceil(MSS_BYTES).max(1);
    payload + packets * UDP_HEADER_BYTES
}

/// Cumulative traffic counters for one node.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct NodeTraffic {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes sent.
    pub payload_sent: u64,
    /// Payload bytes received.
    pub payload_recv: u64,
    /// Wire bytes sent if every message used TCP.
    pub tcp_sent: u64,
    /// Wire bytes sent if every message used UDP.
    pub udp_sent: u64,
}

/// Traffic ledger for an entire simulation.
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    per_node: Vec<NodeTraffic>,
}

impl TrafficLedger {
    /// Creates a ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        TrafficLedger {
            per_node: vec![NodeTraffic::default(); n],
        }
    }

    /// Records a message of `payload` bytes sent from `src`.
    pub fn record_send(&mut self, src: NodeIdx, payload: usize) {
        let t = &mut self.per_node[src];
        t.msgs_sent += 1;
        t.payload_sent += payload as u64;
        t.tcp_sent += tcp_wire_bytes(payload) as u64;
        t.udp_sent += udp_wire_bytes(payload) as u64;
    }

    /// Records a message of `payload` bytes received at `dst`.
    pub fn record_recv(&mut self, dst: NodeIdx, payload: usize) {
        let t = &mut self.per_node[dst];
        t.msgs_recv += 1;
        t.payload_recv += payload as u64;
    }

    /// Records `msgs` messages totalling `payload` bytes received at `dst`
    /// in one ledger update — the batched-delivery fast path, equivalent to
    /// `msgs` calls to [`TrafficLedger::record_recv`].
    pub fn record_recv_batch(&mut self, dst: NodeIdx, msgs: u64, payload: u64) {
        let t = &mut self.per_node[dst];
        t.msgs_recv += msgs;
        t.payload_recv += payload;
    }

    /// Returns the counters for node `i`.
    pub fn node(&self, i: NodeIdx) -> NodeTraffic {
        self.per_node[i]
    }

    /// Returns the counters for every node.
    pub fn all(&self) -> &[NodeTraffic] {
        &self.per_node
    }

    /// Mean TCP wire bytes sent per node.
    pub fn mean_tcp_sent(&self) -> f64 {
        mean(self.per_node.iter().map(|t| t.tcp_sent))
    }

    /// Mean UDP wire bytes sent per node.
    pub fn mean_udp_sent(&self) -> f64 {
        mean(self.per_node.iter().map(|t| t.udp_sent))
    }

    /// Mean payload bytes sent per node.
    pub fn mean_payload_sent(&self) -> f64 {
        mean(self.per_node.iter().map(|t| t.payload_sent))
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.per_node.iter().map(|t| t.msgs_sent).sum()
    }

    /// Resets all counters to zero (e.g. after overlay warm-up, so that only
    /// the workload phase is measured).
    pub fn reset(&mut self) {
        for t in &mut self.per_node {
            *t = NodeTraffic::default();
        }
    }

    /// Sums every node's counters into a mergeable [`TrafficTotals`] value —
    /// the form a finished trial hands back to the benchmark harness.
    pub fn totals(&self) -> TrafficTotals {
        let mut t = TrafficTotals::default();
        for n in &self.per_node {
            t.msgs_sent += n.msgs_sent;
            t.msgs_recv += n.msgs_recv;
            t.payload_sent += n.payload_sent;
            t.payload_recv += n.payload_recv;
            t.tcp_sent += n.tcp_sent;
            t.udp_sent += n.udp_sent;
        }
        t
    }
}

/// Zone-bucketed traffic ledger for million-node trials.
///
/// [`TrafficLedger`] retains one [`NodeTraffic`] record (48 bytes) per
/// node — 48 MB of ledger at a million nodes, almost all of it to answer
/// questions that are asked per *zone* (Figure 7 aggregates by region
/// anyway). `ZoneLedger` streams the same counters into one bucket per
/// topology region instead: a 12-region EUA topology pays 576 bytes total
/// regardless of node count.
///
/// Because each node belongs to exactly one zone and the counters are
/// commutative sums, per-zone totals are independent of the order sends
/// are recorded in — the property the sharded engine relies on to merge
/// per-shard ledgers into a shard-count-invariant report.
#[derive(Clone, Debug, Default)]
pub struct ZoneLedger {
    per_zone: Vec<NodeTraffic>,
}

impl ZoneLedger {
    /// Creates a ledger with `zones` buckets.
    pub fn new(zones: usize) -> Self {
        ZoneLedger {
            per_zone: vec![NodeTraffic::default(); zones],
        }
    }

    /// Number of zone buckets.
    pub fn zones(&self) -> usize {
        self.per_zone.len()
    }

    /// Records a message of `payload` bytes sent by a node in `zone`.
    pub fn record_send(&mut self, zone: u16, payload: usize) {
        let t = &mut self.per_zone[zone as usize];
        t.msgs_sent += 1;
        t.payload_sent += payload as u64;
        t.tcp_sent += tcp_wire_bytes(payload) as u64;
        t.udp_sent += udp_wire_bytes(payload) as u64;
    }

    /// Records a message of `payload` bytes received by a node in `zone`.
    pub fn record_recv(&mut self, zone: u16, payload: usize) {
        let t = &mut self.per_zone[zone as usize];
        t.msgs_recv += 1;
        t.payload_recv += payload as u64;
    }

    /// Returns the counters for `zone`.
    pub fn zone(&self, zone: u16) -> NodeTraffic {
        self.per_zone[zone as usize]
    }

    /// Adds another ledger's buckets into this one (zone counts must match).
    pub fn merge(&mut self, other: &ZoneLedger) {
        assert_eq!(self.per_zone.len(), other.per_zone.len());
        for (a, b) in self.per_zone.iter_mut().zip(&other.per_zone) {
            a.msgs_sent += b.msgs_sent;
            a.msgs_recv += b.msgs_recv;
            a.payload_sent += b.payload_sent;
            a.payload_recv += b.payload_recv;
            a.tcp_sent += b.tcp_sent;
            a.udp_sent += b.udp_sent;
        }
    }

    /// Sums every zone's counters into a mergeable [`TrafficTotals`].
    pub fn totals(&self) -> TrafficTotals {
        let mut t = TrafficTotals::default();
        for n in &self.per_zone {
            t.msgs_sent += n.msgs_sent;
            t.msgs_recv += n.msgs_recv;
            t.payload_sent += n.payload_sent;
            t.payload_recv += n.payload_recv;
            t.tcp_sent += n.tcp_sent;
            t.udp_sent += n.udp_sent;
        }
        t
    }
}

/// Whole-simulation traffic totals, summed over nodes.
///
/// Unlike [`TrafficLedger`] this is a small plain value with no per-node
/// vectors, so trials can return it by value and sweeps can merge it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficTotals {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes sent.
    pub payload_sent: u64,
    /// Payload bytes received.
    pub payload_recv: u64,
    /// Wire bytes sent if every message used TCP.
    pub tcp_sent: u64,
    /// Wire bytes sent if every message used UDP.
    pub udp_sent: u64,
}

impl TrafficTotals {
    /// Adds another total into this one.
    pub fn merge(&mut self, other: &TrafficTotals) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.payload_sent += other.payload_sent;
        self.payload_recv += other.payload_recv;
        self.tcp_sent += other.tcp_sent;
        self.udp_sent += other.udp_sent;
    }

    /// `count / nodes` as a float mean (0 when `nodes` is 0).
    pub fn mean_per_node(&self, count: u64, nodes: usize) -> f64 {
        if nodes == 0 {
            0.0
        } else {
            count as f64 / nodes as f64
        }
    }
}

fn mean(iter: impl Iterator<Item = u64>) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_overhead_exceeds_udp() {
        for payload in [0, 1, 100, 1_460, 1_461, 1_000_000] {
            assert!(tcp_wire_bytes(payload) > udp_wire_bytes(payload));
            assert!(udp_wire_bytes(payload) >= payload);
        }
    }

    #[test]
    fn packetization_at_mss_boundary() {
        // One packet up to MSS, two packets just above it.
        assert_eq!(udp_wire_bytes(MSS_BYTES), MSS_BYTES + UDP_HEADER_BYTES);
        assert_eq!(
            udp_wire_bytes(MSS_BYTES + 1),
            MSS_BYTES + 1 + 2 * UDP_HEADER_BYTES
        );
    }

    #[test]
    fn ledger_accumulates_and_averages() {
        let mut ledger = TrafficLedger::new(3);
        ledger.record_send(0, 1_000);
        ledger.record_send(0, 2_000);
        ledger.record_recv(1, 1_000);
        assert_eq!(ledger.node(0).msgs_sent, 2);
        assert_eq!(ledger.node(0).payload_sent, 3_000);
        assert_eq!(ledger.node(1).msgs_recv, 1);
        assert_eq!(ledger.total_msgs(), 2);
        let expected = (tcp_wire_bytes(1_000) + tcp_wire_bytes(2_000)) as f64 / 3.0;
        assert!((ledger.mean_tcp_sent() - expected).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let mut ledger = TrafficLedger::new(2);
        ledger.record_send(1, 500);
        ledger.reset();
        assert_eq!(ledger.node(1).msgs_sent, 0);
        assert_eq!(ledger.mean_udp_sent(), 0.0);
    }

    #[test]
    fn empty_ledger_mean_is_zero() {
        let ledger = TrafficLedger::new(0);
        assert_eq!(ledger.mean_tcp_sent(), 0.0);
    }

    #[test]
    fn zone_ledger_matches_per_node_totals() {
        // Same sends recorded per-node and per-zone (node i in zone i % 2)
        // must produce identical totals.
        let mut per_node = TrafficLedger::new(4);
        let mut per_zone = ZoneLedger::new(2);
        for (node, payload) in [(0usize, 100usize), (1, 2_000), (2, 50), (3, 1_460)] {
            per_node.record_send(node, payload);
            per_zone.record_send((node % 2) as u16, payload);
            per_node.record_recv((node + 1) % 4, payload);
            per_zone.record_recv((((node + 1) % 4) % 2) as u16, payload);
        }
        assert_eq!(per_node.totals(), per_zone.totals());
        assert_eq!(per_zone.zone(0).msgs_sent, 2);
        assert_eq!(per_zone.zone(1).msgs_sent, 2);
    }

    #[test]
    fn zone_ledger_merge_is_commutative() {
        let mut a = ZoneLedger::new(3);
        let mut b = ZoneLedger::new(3);
        a.record_send(0, 10);
        a.record_recv(2, 10);
        b.record_send(2, 999);
        b.record_send(1, 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.totals(), ba.totals());
        assert_eq!(ab.zone(2).msgs_sent, ba.zone(2).msgs_sent);
        assert_eq!(ab.totals().msgs_sent, 3);
    }
}
