//! Cheap-clone shared payloads for multicast fan-out.
//!
//! Disseminating a model down a fanout-16 tree clones the payload once per
//! child at every hop. For a multi-megabyte update that deep-copy is the
//! dominant simulator cost — and an artifact of the simulation, since a real
//! node serializes the buffer once and hands the same bytes to every
//! connection. [`Shared`] restores that economy: it wraps the payload in an
//! [`Arc`], so cloning a message per child copies a pointer, not tensors.
//!
//! The accounting contract: sharing is invisible to the measured system.
//! `Shared<T>` reports exactly the inner payload's [`Payload::size_bytes`],
//! so traffic ledgers, sampled transmission delays — and therefore RNG
//! streams and event timelines — are byte-identical to a deep-cloned run.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::sim::Payload;

/// An immutable, cheaply clonable payload wrapper.
///
/// `Shared<T>` behaves like `T` for reading (via [`Deref`]) and for wire
/// accounting (via [`Payload`]), but `clone` is an atomic reference-count
/// bump regardless of how large `T` is. Use it for data that fans out to
/// many receivers unchanged (tree broadcasts, leaf-set gossip); keep plain
/// owned values for data that is mutated per receiver.
pub struct Shared<T>(Arc<T>);

impl<T> Shared<T> {
    /// Wraps `value` for sharing.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(value))
    }

    /// Number of live handles to this payload (diagnostics/tests).
    pub fn handles(this: &Self) -> usize {
        Arc::strong_count(&this.0)
    }
}

impl<T: Clone> Shared<T> {
    /// Mutable access, cloning the inner value only if other handles exist
    /// (copy-on-write). An aggregation accumulator that arrived uniquely
    /// owned is therefore mutated in place.
    pub fn make_mut(this: &mut Self) -> &mut T {
        Arc::make_mut(&mut this.0)
    }

    /// Unwraps the inner value, cloning only if other handles exist.
    pub fn into_inner(this: Self) -> T {
        Arc::try_unwrap(this.0).unwrap_or_else(|rc| (*rc).clone())
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> AsRef<T> for Shared<T> {
    fn as_ref(&self) -> &T {
        &self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl<T: Eq> Eq for Shared<T> {}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Self {
        Shared::new(value)
    }
}

impl<T: Payload> Payload for Shared<T> {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }

    // Trace tags pass through: sharing is invisible to observability too.
    fn layer(&self) -> &'static str {
        self.0.layer()
    }

    fn kind(&self) -> &'static str {
        self.0.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(Vec<u8>);

    impl Payload for Blob {
        fn size_bytes(&self) -> usize {
            self.0.len() + 8
        }
    }

    #[test]
    fn shared_reports_identical_size_bytes() {
        // The accounting contract behind byte-identical scenario output:
        // wrapping must not change what the traffic ledger and the delay
        // sampler see.
        for len in [0, 1, 1_460, 1_000_000] {
            let owned = Blob(vec![7; len]);
            let cloned = owned.clone();
            let shared = Shared::new(owned);
            assert_eq!(shared.size_bytes(), cloned.size_bytes());
            assert_eq!(shared.clone().size_bytes(), cloned.size_bytes());
        }
    }

    #[test]
    fn clone_shares_rather_than_copies() {
        let a = Shared::new(Blob(vec![1, 2, 3]));
        let b = a.clone();
        assert_eq!(Shared::handles(&a), 2);
        assert_eq!(*a, *b);
        // Both handles read the same allocation.
        assert!(std::ptr::eq(&*a, &*b));
    }

    #[test]
    fn make_mut_is_in_place_when_unique() {
        let mut a = Shared::new(Blob(vec![1]));
        let before = (&*a) as *const Blob;
        Shared::make_mut(&mut a).0.push(2);
        assert!(std::ptr::eq(before, &*a), "unique handle must not copy");
        assert_eq!(a.as_ref().0, vec![1, 2]);
    }

    #[test]
    fn make_mut_copies_when_shared() {
        let mut a = Shared::new(Blob(vec![1]));
        let b = a.clone();
        Shared::make_mut(&mut a).0.push(2);
        assert_eq!(a.as_ref().0, vec![1, 2]);
        assert_eq!(b.as_ref().0, vec![1], "other handle unaffected");
    }

    #[test]
    fn into_inner_avoids_copy_when_unique() {
        let a = Shared::new(Blob(vec![9; 16]));
        assert_eq!(Shared::into_inner(a).0, vec![9; 16]);
        let b = Shared::new(Blob(vec![3]));
        let keep = b.clone();
        assert_eq!(Shared::into_inner(b).0, vec![3]);
        assert_eq!(keep.as_ref().0, vec![3]);
    }
}
