//! Deterministic engine self-profiling: counters and log-binned
//! histograms over the scheduler and shard runtime.
//!
//! Every quantity in an [`EngineProfile`] is *model-level*: it is defined
//! purely on simulated facts — event creation instants, due times,
//! destinations, region crossings, and the logical conservative-lookahead
//! window recurrence — never on implementation state like a particular
//! wheel's `base_tick` lag, the realized mailbox traffic of one shard
//! plan, or thread scheduling. That is what makes a profile byte-identical
//! across `--jobs` and `--shards`: the dispatched event multiset is
//! shard-count-invariant (the [`crate::shard`] contract), so functions of
//! it are too. Wall-clock phase timings are implementation-level by nature
//! and live in the separate [`WallProfile`] side channel, which is never
//! part of the golden stdout surface.
//!
//! The counter semantics, in terms of the [`crate::queue::WheelQueue`]
//! geometry (`2^6` µs ticks, a `1024`-tick window):
//!
//! * **Scheduler bands** (`late` / `near` / `far`): each event is
//!   classified once, at *creation*, from the creating dispatch's clock
//!   `now` and the scheduled due time `at`. `tick(at) <= tick(now)` is a
//!   late push (the wheel would insertion-sort it into the live drain
//!   tail), a due tick within the wheel window is a bucket push, and
//!   anything beyond spills to the overflow heap. This is the model
//!   approximation of the wheel's three push bands — the real wheel's
//!   `base_tick` can lag `now` per shard, which is exactly the
//!   implementation detail this definition factors out.
//! * **`migrated`**: far-band events that were subsequently dispatched —
//!   each one had to migrate from the overflow heap into the wheel as the
//!   window advanced.
//! * **`horizon_us`**: histogram of `at - now` at creation.
//! * **`tick_occupancy`**: histogram of events per 64 µs tick over the
//!   whole run — the model surrogate for drain-buffer sort sizes.
//! * **Delivery groups** (`groups` / `singletons` / `batched_events`):
//!   a group is the set of dispatched events sharing one
//!   `(time, destination)`, excluding churn transitions (which the
//!   batched delivery path dispatches singly). Groups are counted from
//!   the dispatched multiset, not from realized batch boundaries, so the
//!   singleton fast-path ratio is engine- and shard-count-invariant.
//! * **PDES windows**: the logical conservative-window recurrence. A new
//!   window opens at the first event time `T` at or past the previous
//!   window's end and spans `[T, min(T + L, deadline + 1))`, where `L` is
//!   the topology's inter-region delay lower bound. For a multi-shard run
//!   this is exactly the executed window sequence; a single-shard or
//!   sequential run replays the same recurrence lazily at dispatch, so
//!   `windows`, `events_per_window`, and the derived
//!   `barrier_rounds = 3 * windows` (publish/exchange/advance) agree at
//!   every shard count.
//! * **Remote traffic** (`remote_msgs` / `remote_pairs` / `pair_volume`):
//!   events whose creator and destination live in different topology
//!   regions — the messages that would cross a shard boundary under
//!   maximal sharding, keyed per `(source region, destination region)`
//!   pair.

use std::collections::BTreeMap;

use crate::obs::Histogram;
use crate::queue::{WHEEL_GRANULARITY_SHIFT, WHEEL_NUM_SLOTS};

/// Creation band: not classified (created before profiling was enabled).
pub const BAND_NONE: u8 = 0;
/// Creation band: due tick at or before the creating dispatch's tick.
pub const BAND_LATE: u8 = 1;
/// Creation band: due tick inside the wheel window.
pub const BAND_NEAR: u8 = 2;
/// Creation band: due tick beyond the wheel window (overflow spill).
pub const BAND_FAR: u8 = 3;

/// `at - now` at creation: within one tick / in-wheel / around the wheel
/// window span (1024 ticks = 65.5 ms) / long maintenance horizons.
const HORIZON_BOUNDS: &[u64] = &[64, 4_096, 65_536, 1_048_576];
/// Events per 64 µs tick (drain-sort-size surrogate).
const TICK_OCC_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024];
/// Same-`(time, destination)` delivery-group sizes.
const GROUP_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 64];
/// Events per conservative window.
const WINDOW_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024];
/// Messages per (source region, destination region) pair.
const PAIR_BOUNDS: &[u64] = &[16, 256, 4_096, 65_536];

/// The per-engine-loop profiling collector.
///
/// The sequential [`Simulator`](crate::sim::Simulator) owns one; each
/// [`ShardedSim`](crate::shard::ShardedSim) core owns one and the merged
/// snapshot ([`EngineProf::merged`]) is shard-count-invariant. All methods
/// are cheap enough for the dispatch path but only run when profiling was
/// explicitly enabled — the collector sits behind an `Option` whose `None`
/// branch is a single predictable test.
#[derive(Clone, Debug)]
pub struct EngineProf {
    lookahead_us: u64,
    /// Exclusive clamp on lazily-opened window ends (the current
    /// `deadline + 1`); parallel window loops pre-open their windows and
    /// never consult it.
    clamp_us: u64,
    late: u64,
    near: u64,
    far: u64,
    migrated: u64,
    horizon: Histogram,
    /// Slab slot → creation band, read back (and cleared) at dispatch.
    band: Vec<u8>,
    /// Run-length `(tick, events)` over dispatch times (non-decreasing
    /// per engine loop).
    tick_runs: Vec<(u64, u64)>,
    groups: u64,
    singletons: u64,
    batched_events: u64,
    group_sizes: Histogram,
    /// Timestamp of the delivery-group accumulator below.
    cur_time: u64,
    /// Destinations of groupable events dispatched at `cur_time`.
    cur_dsts: Vec<u32>,
    windows: u64,
    window_end: u64,
    /// Events per window, indexed by window number.
    window_events: Vec<u64>,
    remote_msgs: u64,
    /// `(source region, destination region)` → cross-region messages.
    remote: BTreeMap<(u16, u16), u64>,
}

impl EngineProf {
    /// A collector for an engine whose conservative lookahead is
    /// `lookahead_us` (the topology's inter-region delay lower bound;
    /// zero for single-region topologies).
    pub fn new(lookahead_us: u64) -> Self {
        EngineProf {
            lookahead_us,
            clamp_us: u64::MAX,
            late: 0,
            near: 0,
            far: 0,
            migrated: 0,
            horizon: Histogram::new(HORIZON_BOUNDS),
            band: Vec::new(),
            tick_runs: Vec::new(),
            groups: 0,
            singletons: 0,
            batched_events: 0,
            group_sizes: Histogram::new(GROUP_BOUNDS),
            cur_time: u64::MAX,
            cur_dsts: Vec::new(),
            windows: 0,
            window_end: 0,
            window_events: Vec::new(),
            remote_msgs: 0,
            remote: BTreeMap::new(),
        }
    }

    /// Classifies one event creation (`now` = the creating dispatch's
    /// clock, `at` = the scheduled due time, both µs) into a scheduler
    /// band, recording the horizon histogram. Returns the band for
    /// [`EngineProf::note_band`].
    pub fn classify(&mut self, now_us: u64, at_us: u64) -> u8 {
        self.horizon.observe(at_us.saturating_sub(now_us));
        let dt =
            (at_us >> WHEEL_GRANULARITY_SHIFT).saturating_sub(now_us >> WHEEL_GRANULARITY_SHIFT);
        if dt == 0 {
            self.late += 1;
            BAND_LATE
        } else if dt < WHEEL_NUM_SLOTS as u64 {
            self.near += 1;
            BAND_NEAR
        } else {
            self.far += 1;
            BAND_FAR
        }
    }

    /// Parks a creation band against the event's slab slot so dispatch
    /// can count overflow migrations.
    pub fn note_band(&mut self, slot: u32, band: u8) {
        let i = slot as usize;
        if self.band.len() <= i {
            self.band.resize(i + 1, BAND_NONE);
        }
        self.band[i] = band;
    }

    /// Sets the exclusive clamp for lazily-opened windows (the current
    /// run's `deadline + 1`).
    pub fn set_window_clamp(&mut self, end_us: u64) {
        self.clamp_us = end_us;
    }

    /// Opens the next conservative window ending (exclusively) at
    /// `end_us`. Parallel window loops call this once per window so every
    /// core's window numbering stays aligned; single-loop engines open
    /// windows lazily from [`EngineProf::on_dispatch`].
    pub fn window_open(&mut self, end_us: u64) {
        self.windows += 1;
        self.window_events.push(0);
        self.window_end = end_us;
    }

    /// Accounts one dispatched event: window recurrence, tick occupancy,
    /// overflow-migration readback, and delivery-group accumulation.
    /// `groupable` is false for churn transitions (`Down`/`Up`).
    pub fn on_dispatch(&mut self, slot: u32, t_us: u64, dst: usize, groupable: bool) {
        if t_us >= self.window_end {
            let end = t_us
                .saturating_add(self.lookahead_us.max(1))
                .min(self.clamp_us);
            self.window_open(end);
        }
        if let Some(w) = self.window_events.last_mut() {
            *w += 1;
        }
        let tick = t_us >> WHEEL_GRANULARITY_SHIFT;
        match self.tick_runs.last_mut() {
            Some((t, c)) if *t == tick => *c += 1,
            _ => self.tick_runs.push((tick, 1)),
        }
        if let Some(b) = self.band.get_mut(slot as usize) {
            if *b == BAND_FAR {
                self.migrated += 1;
            }
            *b = BAND_NONE;
        }
        if groupable {
            if t_us != self.cur_time {
                self.flush_groups();
                self.cur_time = t_us;
            }
            self.cur_dsts.push(dst as u32);
        }
    }

    /// Counts one cross-region message from region `from` to region `to`
    /// (callers only invoke this when the regions differ).
    pub fn on_remote(&mut self, from: u16, to: u16) {
        self.remote_msgs += 1;
        *self.remote.entry((from, to)).or_insert(0) += 1;
    }

    /// Folds the accumulated same-timestamp destinations into group
    /// counts.
    fn flush_groups(&mut self) {
        if self.cur_dsts.is_empty() {
            return;
        }
        self.cur_dsts.sort_unstable();
        let mut i = 0;
        while i < self.cur_dsts.len() {
            let mut j = i + 1;
            while j < self.cur_dsts.len() && self.cur_dsts[j] == self.cur_dsts[i] {
                j += 1;
            }
            let c = (j - i) as u64;
            self.groups += 1;
            self.group_sizes.observe(c);
            if c == 1 {
                self.singletons += 1;
            } else {
                self.batched_events += c;
            }
            i = j;
        }
        self.cur_dsts.clear();
    }

    /// This collector's snapshot (a one-element [`EngineProf::merged`]).
    pub fn snapshot(&self) -> EngineProfile {
        EngineProf::merged([self])
    }

    /// Merges per-core collectors into one shard-count-invariant
    /// [`EngineProfile`]: counters sum, per-window event counts sum
    /// elementwise (window numbering is aligned across cores by
    /// construction), tick runs and region pairs merge by key.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a EngineProf>) -> EngineProfile {
        let mut out = EngineProfile {
            horizon_us: Histogram::new(HORIZON_BOUNDS),
            tick_occupancy: Histogram::new(TICK_OCC_BOUNDS),
            group_sizes: Histogram::new(GROUP_BOUNDS),
            events_per_window: Histogram::new(WINDOW_BOUNDS),
            pair_volume: Histogram::new(PAIR_BOUNDS),
            ..EngineProfile::default()
        };
        let mut ticks: BTreeMap<u64, u64> = BTreeMap::new();
        let mut window_events: Vec<u64> = Vec::new();
        let mut remote: BTreeMap<(u16, u16), u64> = BTreeMap::new();
        for p in parts {
            out.late += p.late;
            out.near += p.near;
            out.far += p.far;
            out.migrated += p.migrated;
            out.horizon_us.merge(&p.horizon);
            out.groups += p.groups;
            out.singletons += p.singletons;
            out.batched_events += p.batched_events;
            out.group_sizes.merge(&p.group_sizes);
            // Count the still-open trailing group without mutating `p`.
            let mut pending = p.cur_dsts.clone();
            pending.sort_unstable();
            let mut i = 0;
            while i < pending.len() {
                let mut j = i + 1;
                while j < pending.len() && pending[j] == pending[i] {
                    j += 1;
                }
                let c = (j - i) as u64;
                out.groups += 1;
                out.group_sizes.observe(c);
                if c == 1 {
                    out.singletons += 1;
                } else {
                    out.batched_events += c;
                }
                i = j;
            }
            for &(tick, count) in &p.tick_runs {
                *ticks.entry(tick).or_insert(0) += count;
            }
            out.lookahead_us = out.lookahead_us.max(p.lookahead_us);
            out.windows = out.windows.max(p.windows);
            if window_events.len() < p.window_events.len() {
                window_events.resize(p.window_events.len(), 0);
            }
            for (acc, &n) in window_events.iter_mut().zip(&p.window_events) {
                *acc += n;
            }
            out.remote_msgs += p.remote_msgs;
            for (&pair, &n) in &p.remote {
                *remote.entry(pair).or_insert(0) += n;
            }
        }
        for &count in ticks.values() {
            out.tick_occupancy.observe(count);
        }
        for &n in &window_events {
            out.events_per_window.observe(n);
        }
        out.remote_pairs = remote.len() as u64;
        for &n in remote.values() {
            out.pair_volume.observe(n);
        }
        out
    }
}

/// A serialized-ready engine-profile snapshot. See the module docs for
/// the exact semantics of each counter; all of them are byte-identical
/// across `--jobs` and `--shards` by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineProfile {
    /// Late-band event creations (due tick at or before the creator's).
    pub late: u64,
    /// Near-band event creations (due tick inside the wheel window).
    pub near: u64,
    /// Far-band event creations (overflow spill).
    pub far: u64,
    /// Far-band events later dispatched (overflow → wheel migrations).
    pub migrated: u64,
    /// Histogram of `at - now` at creation, µs.
    pub horizon_us: Histogram,
    /// Histogram of events per 64 µs tick (drain-sort-size surrogate).
    pub tick_occupancy: Histogram,
    /// Same-`(time, destination)` delivery groups.
    pub groups: u64,
    /// Groups of exactly one event (the singleton fast path).
    pub singletons: u64,
    /// Events delivered as part of multi-event groups.
    pub batched_events: u64,
    /// Histogram of delivery-group sizes.
    pub group_sizes: Histogram,
    /// The conservative lookahead bound used by the window recurrence, µs.
    pub lookahead_us: u64,
    /// Conservative windows in the logical window recurrence.
    pub windows: u64,
    /// Histogram of events per conservative window.
    pub events_per_window: Histogram,
    /// Cross-region messages (would cross a shard boundary under maximal
    /// sharding).
    pub remote_msgs: u64,
    /// Distinct `(source region, destination region)` pairs with traffic.
    pub remote_pairs: u64,
    /// Histogram of per-region-pair message volume.
    pub pair_volume: Histogram,
}

impl EngineProfile {
    /// Fraction of delivery groups that were singletons, in `0..=1`
    /// (zero when no groups were observed).
    pub fn singleton_ratio(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.singletons as f64 / self.groups as f64
        }
    }

    /// Logical barrier rounds of the windowed protocol: three per window
    /// (publish `next_due`, exchange mailboxes, advance).
    pub fn barrier_rounds(&self) -> u64 {
        3 * self.windows
    }

    /// Sums another profile into this one (multi-trial aggregation).
    pub fn merge(&mut self, other: &EngineProfile) {
        self.late += other.late;
        self.near += other.near;
        self.far += other.far;
        self.migrated += other.migrated;
        self.horizon_us.merge(&other.horizon_us);
        self.tick_occupancy.merge(&other.tick_occupancy);
        self.groups += other.groups;
        self.singletons += other.singletons;
        self.batched_events += other.batched_events;
        self.group_sizes.merge(&other.group_sizes);
        self.lookahead_us = self.lookahead_us.max(other.lookahead_us);
        self.windows += other.windows;
        self.events_per_window.merge(&other.events_per_window);
        self.remote_msgs += other.remote_msgs;
        self.remote_pairs += other.remote_pairs;
        self.pair_volume.merge(&other.pair_volume);
    }

    /// Deterministic JSON rendering: fixed key order, integer counters,
    /// and one fixed-precision ratio (`{:.6}` formatting is
    /// platform-independent).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sched\":{{\"late\":{},\"near\":{},\"far\":{},\"migrated\":{},",
                "\"horizon_us\":{},\"tick_occupancy\":{}}},",
                "\"batch\":{{\"groups\":{},\"singletons\":{},\"batched_events\":{},",
                "\"singleton_ratio\":{:.6},\"group_sizes\":{}}},",
                "\"pdes\":{{\"lookahead_us\":{},\"windows\":{},\"barrier_rounds\":{},",
                "\"events_per_window\":{},\"remote_msgs\":{},\"remote_pairs\":{},",
                "\"pair_volume\":{}}}}}"
            ),
            self.late,
            self.near,
            self.far,
            self.migrated,
            hist_json(&self.horizon_us),
            hist_json(&self.tick_occupancy),
            self.groups,
            self.singletons,
            self.batched_events,
            self.singleton_ratio(),
            hist_json(&self.group_sizes),
            self.lookahead_us,
            self.windows,
            self.barrier_rounds(),
            hist_json(&self.events_per_window),
            self.remote_msgs,
            self.remote_pairs,
            hist_json(&self.pair_volume),
        )
    }
}

/// Renders a histogram in the same shape as
/// [`crate::obs::MetricsSnapshot`] histograms.
fn hist_json(h: &Histogram) -> String {
    let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
    let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
    format!(
        "{{\"bounds\":[{}],\"counts\":[{}]}}",
        bounds.join(","),
        counts.join(",")
    )
}

/// Wall-clock per-phase timings for one shard worker. Implementation-
/// level by nature (thread scheduling, host load): side-channel only,
/// never part of any golden surface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardWall {
    /// Nanoseconds spent dispatching events inside windows.
    pub process_ns: u64,
    /// Nanoseconds spent blocked on window barriers.
    pub barrier_ns: u64,
    /// Nanoseconds spent pushing outboxes and draining inboxes.
    pub exchange_ns: u64,
    /// Cross-shard events this shard actually handed off.
    pub remote_sent: u64,
    /// Events this shard dispatched.
    pub events: u64,
}

/// The wall-clock side channel: per-shard phase timings for one run,
/// written only behind `--profile-wall PATH`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WallProfile {
    /// Shard count actually executed (after region clamping).
    pub shards: usize,
    /// The executed lookahead in µs (zero for a single shard).
    pub lookahead_us: u64,
    /// Per-shard timings, shard index order.
    pub per_shard: Vec<ShardWall>,
}

impl WallProfile {
    /// JSON rendering (fixed key order; the values themselves are
    /// nondeterministic wall-clock measurements).
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .per_shard
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "{{\"process_ns\":{},\"barrier_ns\":{},\"exchange_ns\":{},",
                        "\"remote_sent\":{},\"events\":{}}}"
                    ),
                    s.process_ns, s.barrier_ns, s.exchange_ns, s.remote_sent, s.events
                )
            })
            .collect();
        format!(
            "{{\"shards\":{},\"lookahead_us\":{},\"per_shard\":[{}]}}",
            self.shards,
            self.lookahead_us,
            shards.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_bands_by_wheel_geometry() {
        let mut p = EngineProf::new(500);
        // Same tick → late; next tick → near; beyond the window → far.
        assert_eq!(p.classify(100, 100), BAND_LATE);
        assert_eq!(p.classify(100, 120), BAND_LATE, "same 64 us tick");
        assert_eq!(p.classify(100, 200), BAND_NEAR);
        let span = (WHEEL_NUM_SLOTS as u64) << WHEEL_GRANULARITY_SHIFT;
        assert_eq!(p.classify(0, span - 1), BAND_NEAR);
        assert_eq!(p.classify(0, span), BAND_FAR);
        let snap = p.snapshot();
        assert_eq!((snap.late, snap.near, snap.far), (2, 2, 1));
        assert_eq!(snap.horizon_us.total(), 5);
    }

    #[test]
    fn migration_counts_far_band_dispatches() {
        let mut p = EngineProf::new(500);
        let span = (WHEEL_NUM_SLOTS as u64) << WHEEL_GRANULARITY_SHIFT;
        let band = p.classify(0, 2 * span);
        p.note_band(7, band);
        let near = p.classify(0, 200);
        p.note_band(3, near);
        p.on_dispatch(3, 200, 0, true);
        p.on_dispatch(7, 2 * span, 1, true);
        // Slot 7 was re-used by an unclassified event: no double count.
        p.on_dispatch(7, 2 * span + 10, 1, true);
        assert_eq!(p.snapshot().migrated, 1);
    }

    #[test]
    fn delivery_groups_ignore_dispatch_interleaving() {
        // Same multiset of (time, dst) events in two different orders
        // must produce identical group stats.
        let orders: [&[(u64, usize)]; 2] = [
            &[(10, 0), (10, 1), (10, 0), (20, 2)],
            &[(10, 0), (10, 0), (10, 1), (20, 2)],
        ];
        let mut snaps = Vec::new();
        for order in orders {
            let mut p = EngineProf::new(1);
            for (i, &(t, d)) in order.iter().enumerate() {
                p.on_dispatch(i as u32, t, d, true);
            }
            snaps.push(p.snapshot());
        }
        assert_eq!(snaps[0], snaps[1]);
        // Groups: {10,0} x2, {10,1} x1, {20,2} x1 → 3 groups, 2 single.
        assert_eq!(snaps[0].groups, 3);
        assert_eq!(snaps[0].singletons, 2);
        assert_eq!(snaps[0].batched_events, 2);
        assert!((snaps[0].singleton_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn window_recurrence_matches_pre_opened_windows() {
        // Lazy (single-loop) window opening must agree with a parallel
        // loop that pre-opens the same windows.
        let times = [0u64, 100, 400, 700, 1_500, 1_600];
        let lookahead = 500;
        let mut lazy = EngineProf::new(lookahead);
        for (i, &t) in times.iter().enumerate() {
            lazy.on_dispatch(i as u32, t, i, true);
        }
        let mut eager = EngineProf::new(lookahead);
        // Windows: [0, 500), [700, 1200), [1500, 2000).
        for (start, evs) in [
            (0u64, &times[..3]),
            (700, &times[3..4]),
            (1_500, &times[4..]),
        ] {
            eager.window_open(start + lookahead);
            for &t in evs {
                eager.on_dispatch(0, t, 0, false);
            }
        }
        let (a, b) = (lazy.snapshot(), eager.snapshot());
        assert_eq!(a.windows, 3);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.events_per_window, b.events_per_window);
        assert_eq!(a.barrier_rounds(), 9);
    }

    #[test]
    fn merged_cores_equal_single_core() {
        // Splitting the same event stream across two collectors (by
        // destination, as sharding would) must merge to the single-
        // collector profile.
        let events = [(0u64, 0usize), (0, 1), (500, 0), (500, 0), (700, 1)];
        let mut single = EngineProf::new(500);
        single.set_window_clamp(u64::MAX);
        for (i, &(t, d)) in events.iter().enumerate() {
            single.on_dispatch(i as u32, t, d, true);
        }
        let mut a = EngineProf::new(500);
        let mut b = EngineProf::new(500);
        // Both cores pre-open every window, then dispatch that window's
        // events — the parallel worker-loop interleaving.
        for (end, window) in [(500u64, &events[..2]), (1_000, &events[2..])] {
            a.window_open(end);
            b.window_open(end);
            for (i, &(t, d)) in window.iter().enumerate() {
                let core = if d == 0 { &mut a } else { &mut b };
                core.on_dispatch(i as u32, t, d, true);
            }
        }
        let merged = EngineProf::merged([&a, &b]);
        let solo = single.snapshot();
        assert_eq!(merged.windows, solo.windows);
        assert_eq!(merged.events_per_window, solo.events_per_window);
        assert_eq!(merged.groups, solo.groups);
        assert_eq!(merged.singletons, solo.singletons);
        assert_eq!(merged.tick_occupancy, solo.tick_occupancy);
    }

    #[test]
    fn json_is_deterministic_and_carries_ratio() {
        let mut p = EngineProf::new(250);
        p.on_remote(0, 1);
        p.on_remote(0, 1);
        p.on_remote(1, 0);
        for i in 0..4u32 {
            p.on_dispatch(i, 100 * u64::from(i), i as usize, true);
        }
        let snap = p.snapshot();
        let json = snap.to_json();
        assert_eq!(json, p.snapshot().to_json());
        assert!(json.starts_with("{\"sched\":{\"late\":"));
        assert!(json.contains("\"singleton_ratio\":1.000000"));
        assert!(json.contains("\"remote_msgs\":3,\"remote_pairs\":2"));
        assert!(json.contains("\"barrier_rounds\":"));
        // Merge doubles the counters and keeps the shape.
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        assert_eq!(doubled.groups, 2 * snap.groups);
        assert_eq!(doubled.lookahead_us, snap.lookahead_us);
    }

    #[test]
    fn wall_profile_serializes() {
        let w = WallProfile {
            shards: 2,
            lookahead_us: 500,
            per_shard: vec![ShardWall::default(); 2],
        };
        let json = w.to_json();
        assert!(json.starts_with("{\"shards\":2,\"lookahead_us\":500,"));
        assert_eq!(json.matches("\"process_ns\"").count(), 2);
    }
}
