//! Churn schedule generation.
//!
//! Edge nodes "fail or lag unexpectedly" (§2.2.2); the adaptivity
//! experiments (Figure 12) kill 5% of each tree's nodes simultaneously. A
//! [`ChurnSchedule`] is a reproducible list of down/up events that an
//! experiment driver feeds into the simulator before running.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeIdx;

/// One scheduled availability change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the change happens.
    pub at: SimTime,
    /// Which node changes state.
    pub node: NodeIdx,
    /// `true` = node goes down, `false` = node comes back up.
    pub down: bool,
}

/// A reproducible list of churn events, sorted by time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule (no churn).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Kills a random `fraction` of `candidates` simultaneously at `at`,
    /// never reviving them — the Figure 12 workload.
    pub fn mass_failure(
        candidates: &[NodeIdx],
        fraction: f64,
        at: SimTime,
        rng: &mut StdRng,
    ) -> Self {
        let mut pool: Vec<NodeIdx> = candidates.to_vec();
        pool.shuffle(rng);
        let k = ((candidates.len() as f64 * fraction).round() as usize).min(pool.len());
        let events = pool[..k]
            .iter()
            .map(|&node| ChurnEvent {
                at,
                node,
                down: true,
            })
            .collect();
        ChurnSchedule { events }
    }

    /// Continuous churn: over `[start, end)`, each event at an exponential
    /// inter-arrival time with mean `mean_gap` takes a random up node down
    /// for `outage` and then revives it.
    pub fn continuous(
        candidates: &[NodeIdx],
        start: SimTime,
        end: SimTime,
        mean_gap: SimDuration,
        outage: SimDuration,
        rng: &mut StdRng,
    ) -> Self {
        let mut events = Vec::new();
        let mut t = start;
        loop {
            let gap = exponential(mean_gap, rng);
            t += gap;
            if t >= end || candidates.is_empty() {
                break;
            }
            let node = candidates[rng.gen_range(0..candidates.len())];
            events.push(ChurnEvent {
                at: t,
                node,
                down: true,
            });
            events.push(ChurnEvent {
                at: t + outage,
                node,
                down: false,
            });
        }
        events.sort_by_key(|e| (e.at, e.node));
        ChurnSchedule { events }
    }

    /// A schedule built from explicit events (sorted canonically).
    pub fn from_events(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.node, e.down));
        ChurnSchedule { events }
    }

    /// Merges two schedules into one canonical event list.
    ///
    /// The result is sorted by `(at, node, down)`, so merging is
    /// commutative and the merged schedule drives the simulator identically
    /// regardless of which plan contributed which event.
    pub fn merge(mut self, other: ChurnSchedule) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| (e.at, e.node, e.down));
        self
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event, if any.
    pub fn last_event_at(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of distinct nodes that go down at least once.
    pub fn nodes_affected(&self) -> usize {
        let mut nodes: Vec<NodeIdx> = self
            .events
            .iter()
            .filter(|e| e.down)
            .map(|e| e.node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Applies the schedule to a simulator.
    pub fn apply<
        A: crate::sim::Application,
        S: crate::obs::TraceSink,
        Q: crate::queue::EventQueue,
    >(
        &self,
        sim: &mut crate::sim::Simulator<A, S, Q>,
    ) {
        for e in &self.events {
            if e.down {
                sim.schedule_down(e.node, e.at);
            } else {
                sim.schedule_up(e.node, e.at);
            }
        }
    }
}

fn exponential(mean: SimDuration, rng: &mut StdRng) -> SimDuration {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sub_rng;

    #[test]
    fn mass_failure_kills_expected_fraction() {
        let mut rng = sub_rng(1, "churn");
        let candidates: Vec<NodeIdx> = (0..200).collect();
        let s =
            ChurnSchedule::mass_failure(&candidates, 0.05, SimTime::from_micros(1_000), &mut rng);
        assert_eq!(s.events().len(), 10);
        assert_eq!(s.nodes_affected(), 10);
        assert!(s.events().iter().all(|e| e.down));
        assert!(s
            .events()
            .iter()
            .all(|e| e.at == SimTime::from_micros(1_000)));
    }

    #[test]
    fn mass_failure_has_no_duplicates() {
        let mut rng = sub_rng(2, "churn");
        let candidates: Vec<NodeIdx> = (0..50).collect();
        let s = ChurnSchedule::mass_failure(&candidates, 0.5, SimTime::ZERO, &mut rng);
        let mut nodes: Vec<NodeIdx> = s.events().iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), s.events().len());
    }

    #[test]
    fn continuous_churn_pairs_down_with_up() {
        let mut rng = sub_rng(3, "churn");
        let candidates: Vec<NodeIdx> = (0..20).collect();
        let s = ChurnSchedule::continuous(
            &candidates,
            SimTime::ZERO,
            SimTime::from_micros(10_000_000),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            &mut rng,
        );
        let downs = s.events().iter().filter(|e| e.down).count();
        let ups = s.events().iter().filter(|e| !e.down).count();
        assert_eq!(downs, ups);
        assert!(downs > 10, "expected many events, got {downs}");
        // Sorted by time.
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_candidates_yield_empty_schedule() {
        let mut rng = sub_rng(4, "churn");
        let s = ChurnSchedule::mass_failure(&[], 0.5, SimTime::ZERO, &mut rng);
        assert!(s.events().is_empty());
    }

    #[test]
    fn merge_basics() {
        let a = ChurnSchedule::from_events(vec![ChurnEvent {
            at: SimTime::from_micros(5),
            node: 1,
            down: true,
        }]);
        let b = ChurnSchedule::none();
        assert!(b.is_empty());
        assert!(!a.is_empty());
        assert_eq!(a.last_event_at(), Some(SimTime::from_micros(5)));
        assert_eq!(b.last_event_at(), None);
        let m = a.clone().merge(b);
        assert_eq!(m.events(), a.events());
    }

    /// Satellite property: merging two schedules preserves the union of
    /// events, canonical ordering, and per-node down/up pairing — and is
    /// commutative, so a merged [`crate::chaos::FaultPlan`] schedules the
    /// exact same simulator down/up events as its parts would.
    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        fn arb_schedule(seed_lo: u64) -> impl Strategy<Value = ChurnSchedule> {
            (seed_lo..seed_lo + 1_000u64, 0usize..30).prop_map(|(seed, n)| {
                let mut rng = sub_rng(seed, "churn-prop");
                let candidates: Vec<NodeIdx> = (0..16).collect();
                let mut events = Vec::new();
                for _ in 0..n {
                    let node = candidates[rng.gen_range(0..candidates.len())];
                    let at = SimTime::from_micros(rng.gen_range(0..1_000_000));
                    let outage = SimDuration::from_micros(rng.gen_range(1..100_000));
                    events.push(ChurnEvent {
                        at,
                        node,
                        down: true,
                    });
                    events.push(ChurnEvent {
                        at: at + outage,
                        node,
                        down: false,
                    });
                }
                ChurnSchedule::from_events(events)
            })
        }

        fn down_up_counts(s: &ChurnSchedule) -> BTreeMap<NodeIdx, (usize, usize)> {
            let mut counts: BTreeMap<NodeIdx, (usize, usize)> = BTreeMap::new();
            for e in s.events() {
                let c = counts.entry(e.node).or_default();
                if e.down {
                    c.0 += 1;
                } else {
                    c.1 += 1;
                }
            }
            counts
        }

        fn sorted_union(a: &ChurnSchedule, b: &ChurnSchedule) -> Vec<ChurnEvent> {
            let mut all: Vec<ChurnEvent> = a.events().iter().chain(b.events()).copied().collect();
            all.sort_by_key(|e| (e.at, e.node, e.down));
            all
        }

        proptest! {
            #[test]
            #[cfg_attr(miri, ignore = "proptest persistence and case volume break under Miri")]
            fn merge_is_union_sorted_and_commutative(
                a in arb_schedule(0),
                b in arb_schedule(10_000),
            ) {
                let ab = a.clone().merge(b.clone());
                let ba = b.clone().merge(a.clone());
                // Multiset union, canonically ordered.
                let union = sorted_union(&a, &b);
                prop_assert_eq!(ab.events(), union.as_slice());
                // Commutative.
                prop_assert_eq!(ab.events(), ba.events());
                // Canonical sort key holds.
                prop_assert!(ab
                    .events()
                    .windows(2)
                    .all(|w| (w[0].at, w[0].node, w[0].down)
                        <= (w[1].at, w[1].node, w[1].down)));
                prop_assert_eq!(
                    ab.last_event_at(),
                    a.last_event_at().max(b.last_event_at())
                );
            }

            #[test]
            #[cfg_attr(miri, ignore = "proptest persistence and case volume break under Miri")]
            fn merge_preserves_down_up_pairing(
                a in arb_schedule(20_000),
                b in arb_schedule(30_000),
            ) {
                // Each generated schedule pairs every down with an up; the
                // merged per-node counts are the sums of the parts, so no
                // pairing is created or destroyed by merging.
                let merged = down_up_counts(&a.clone().merge(b.clone()));
                let (ca, cb) = (down_up_counts(&a), down_up_counts(&b));
                for (node, &(downs, ups)) in &merged {
                    prop_assert_eq!(downs, ups, "node {} unpaired after merge", node);
                    let pa = ca.get(node).copied().unwrap_or((0, 0));
                    let pb = cb.get(node).copied().unwrap_or((0, 0));
                    prop_assert_eq!((downs, ups), (pa.0 + pb.0, pa.1 + pb.1));
                }
            }

            #[test]
            #[cfg_attr(miri, ignore = "proptest persistence and case volume break under Miri")]
            fn merge_is_deterministic(a in arb_schedule(40_000), b in arb_schedule(50_000)) {
                let once = a.clone().merge(b.clone());
                let twice = a.merge(b);
                prop_assert_eq!(once.events(), twice.events());
            }
        }
    }
}
