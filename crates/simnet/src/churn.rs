//! Churn schedule generation.
//!
//! Edge nodes "fail or lag unexpectedly" (§2.2.2); the adaptivity
//! experiments (Figure 12) kill 5% of each tree's nodes simultaneously. A
//! [`ChurnSchedule`] is a reproducible list of down/up events that an
//! experiment driver feeds into the simulator before running.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeIdx;

/// One scheduled availability change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the change happens.
    pub at: SimTime,
    /// Which node changes state.
    pub node: NodeIdx,
    /// `true` = node goes down, `false` = node comes back up.
    pub down: bool,
}

/// A reproducible list of churn events, sorted by time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule (no churn).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Kills a random `fraction` of `candidates` simultaneously at `at`,
    /// never reviving them — the Figure 12 workload.
    pub fn mass_failure(
        candidates: &[NodeIdx],
        fraction: f64,
        at: SimTime,
        rng: &mut StdRng,
    ) -> Self {
        let mut pool: Vec<NodeIdx> = candidates.to_vec();
        pool.shuffle(rng);
        let k = ((candidates.len() as f64 * fraction).round() as usize).min(pool.len());
        let events = pool[..k]
            .iter()
            .map(|&node| ChurnEvent {
                at,
                node,
                down: true,
            })
            .collect();
        ChurnSchedule { events }
    }

    /// Continuous churn: over `[start, end)`, each event at an exponential
    /// inter-arrival time with mean `mean_gap` takes a random up node down
    /// for `outage` and then revives it.
    pub fn continuous(
        candidates: &[NodeIdx],
        start: SimTime,
        end: SimTime,
        mean_gap: SimDuration,
        outage: SimDuration,
        rng: &mut StdRng,
    ) -> Self {
        let mut events = Vec::new();
        let mut t = start;
        loop {
            let gap = exponential(mean_gap, rng);
            t += gap;
            if t >= end || candidates.is_empty() {
                break;
            }
            let node = candidates[rng.gen_range(0..candidates.len())];
            events.push(ChurnEvent {
                at: t,
                node,
                down: true,
            });
            events.push(ChurnEvent {
                at: t + outage,
                node,
                down: false,
            });
        }
        events.sort_by_key(|e| (e.at, e.node));
        ChurnSchedule { events }
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of distinct nodes that go down at least once.
    pub fn nodes_affected(&self) -> usize {
        let mut nodes: Vec<NodeIdx> = self
            .events
            .iter()
            .filter(|e| e.down)
            .map(|e| e.node)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Applies the schedule to a simulator.
    pub fn apply<A: crate::sim::Application>(&self, sim: &mut crate::sim::Simulator<A>) {
        for e in &self.events {
            if e.down {
                sim.schedule_down(e.node, e.at);
            } else {
                sim.schedule_up(e.node, e.at);
            }
        }
    }
}

fn exponential(mean: SimDuration, rng: &mut StdRng) -> SimDuration {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sub_rng;

    #[test]
    fn mass_failure_kills_expected_fraction() {
        let mut rng = sub_rng(1, "churn");
        let candidates: Vec<NodeIdx> = (0..200).collect();
        let s =
            ChurnSchedule::mass_failure(&candidates, 0.05, SimTime::from_micros(1_000), &mut rng);
        assert_eq!(s.events().len(), 10);
        assert_eq!(s.nodes_affected(), 10);
        assert!(s.events().iter().all(|e| e.down));
        assert!(s
            .events()
            .iter()
            .all(|e| e.at == SimTime::from_micros(1_000)));
    }

    #[test]
    fn mass_failure_has_no_duplicates() {
        let mut rng = sub_rng(2, "churn");
        let candidates: Vec<NodeIdx> = (0..50).collect();
        let s = ChurnSchedule::mass_failure(&candidates, 0.5, SimTime::ZERO, &mut rng);
        let mut nodes: Vec<NodeIdx> = s.events().iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), s.events().len());
    }

    #[test]
    fn continuous_churn_pairs_down_with_up() {
        let mut rng = sub_rng(3, "churn");
        let candidates: Vec<NodeIdx> = (0..20).collect();
        let s = ChurnSchedule::continuous(
            &candidates,
            SimTime::ZERO,
            SimTime::from_micros(10_000_000),
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            &mut rng,
        );
        let downs = s.events().iter().filter(|e| e.down).count();
        let ups = s.events().iter().filter(|e| !e.down).count();
        assert_eq!(downs, ups);
        assert!(downs > 10, "expected many events, got {downs}");
        // Sorted by time.
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_candidates_yield_empty_schedule() {
        let mut rng = sub_rng(4, "churn");
        let s = ChurnSchedule::mass_failure(&[], 0.5, SimTime::ZERO, &mut rng);
        assert!(s.events().is_empty());
    }
}
