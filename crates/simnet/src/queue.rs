//! The simulator's pluggable event-queue API.
//!
//! Every pending event is identified by an [`EventKey`] — the `(time, seq)`
//! pair that the determinism contract pins as the *total* dispatch order —
//! plus the `u32` slot of its payload in the simulator's event slab. An
//! [`EventQueue`] stores `(key, slot)` pairs and yields them in ascending
//! key order; the simulator never touches the queue's internals, so the
//! implementation can be swapped without perturbing a single golden byte.
//!
//! Two implementations ship behind the API:
//!
//! * [`HeapQueue`] — the slab-indexed `BinaryHeap` that powered the
//!   simulator through PR 2–6. `O(log n)` push/pop with small fixed-size
//!   sift records; kept as the reference implementation and the
//!   differential-testing oracle.
//! * [`WheelQueue`] — a hierarchical timer wheel for the near-horizon band
//!   with a heap spill for far-future events. Pushes into the wheel window
//!   are `O(1)` bucket appends; due buckets are drained with one contiguous
//!   sort instead of per-event heap sifts, which is what lifts timer-heavy
//!   workloads (every node ticking maintenance) off the heap bottleneck.
//!
//! The two must agree **exactly**: for any interleaving of pushes and pops,
//! both yield the same `(key, slot)` sequence. `tests/queue_equiv.rs`
//! replays random schedules through both and asserts just that, and the
//! `simcore` benchmark times them head to head (`timer_storm` vs
//! `timer_storm_heap`). The trait is sealed: queue behaviour is part of the
//! determinism contract, so implementations live here, next to the proofs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The total-order key of one queued event: primary `time`, tie-broken by
/// the simulator's monotone sequence number. `seq` is unique per simulator,
/// so two keys never compare equal and the order is total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Absolute due time.
    pub time: SimTime,
    /// Monotone enqueue sequence number (ties dispatch FIFO-by-enqueue).
    pub seq: u64,
}

impl EventKey {
    /// The key packed into one `u128` whose integer order equals the
    /// derived lexicographic `(time, seq)` order — a single branchless
    /// compare for the drain-buffer sort.
    #[inline]
    fn packed(self) -> u128 {
        (u128::from(self.time.as_micros()) << 64) | u128::from(self.seq)
    }
}

/// A `(key, slot)` record ordered by key only — `slot` is storage, not
/// identity, exactly as in the pre-API `HeapEntry`.
#[derive(Clone, Copy, Debug)]
struct Entry {
    key: EventKey,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

mod sealed {
    /// Seals [`super::EventQueue`]: the queue order is part of the
    /// determinism contract, so implementations must live in this module
    /// tree where the differential tests can see them.
    pub trait Sealed {}
    impl Sealed for super::HeapQueue {}
    impl Sealed for super::WheelQueue {}
}

/// Priority queue of `(EventKey, slot)` pairs, popped in ascending key
/// order.
///
/// `peek`/`pop`/`pop_before` take `&mut self` deliberately: lazily-ordered
/// implementations (the timer wheel) normalize their head on observation.
/// The trait is sealed — see the module docs.
pub trait EventQueue: sealed::Sealed {
    /// Short stable name for benchmark labels and reports.
    const NAME: &'static str;

    /// Creates a queue sized for roughly `cap` concurrently pending events.
    fn with_capacity(cap: usize) -> Self;

    /// Enqueues `slot` under `key`. Keys may arrive in any order, but a
    /// pushed key is never smaller than the last popped key (the simulator
    /// clamps event times to `now`); implementations may rely on that.
    fn push(&mut self, key: EventKey, slot: u32);

    /// The smallest queued key and its slot, without removing it.
    fn peek(&mut self) -> Option<(EventKey, u32)>;

    /// Removes and returns the smallest queued key and its slot.
    fn pop(&mut self) -> Option<(EventKey, u32)>;

    /// Pops the head only if it is due at or before `deadline` — the
    /// deadline-bounded analogue of [`EventQueue::pop`], one observation
    /// deciding and popping.
    fn pop_before(&mut self, deadline: SimTime) -> Option<(EventKey, u32)> {
        match self.peek() {
            Some((key, _)) if key.time <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of queued events.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every queued `(key, slot)` pair in ascending key order, without
    /// removing anything. `O(n log n)` — an exploration hook for the
    /// bounded model checker, never called on the hot dispatch path.
    fn snapshot(&mut self) -> Vec<(EventKey, u32)>;

    /// Removes the entry queued under exactly `key` (keys are unique —
    /// `seq` is a per-simulator monotone counter) and returns its slot.
    /// `O(n)` worst case; exploration hook only.
    fn remove(&mut self, key: EventKey) -> Option<u32>;
}

// ------------------------------------------------------------------ heap --

/// The reference queue: a `BinaryHeap` of 24-byte `(key, slot)` records.
///
/// This is byte-for-byte the pre-API scheduler (PR 2): heap sifts move
/// small fixed-size records while payloads stay parked in the slab. It
/// remains the differential-testing oracle and the spill store inside
/// [`WheelQueue`].
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl EventQueue for HeapQueue {
    const NAME: &'static str = "heap";

    fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    #[inline]
    fn push(&mut self, key: EventKey, slot: u32) {
        self.heap.push(Reverse(Entry { key, slot }));
    }

    #[inline]
    fn peek(&mut self) -> Option<(EventKey, u32)> {
        self.heap.peek().map(|Reverse(e)| (e.key, e.slot))
    }

    #[inline]
    fn pop(&mut self) -> Option<(EventKey, u32)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.slot))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn snapshot(&mut self) -> Vec<(EventKey, u32)> {
        let mut out: Vec<(EventKey, u32)> =
            self.heap.iter().map(|Reverse(e)| (e.key, e.slot)).collect();
        out.sort_unstable_by_key(|(k, _)| k.packed());
        out
    }

    fn remove(&mut self, key: EventKey) -> Option<u32> {
        let mut slot = None;
        self.heap.retain(|Reverse(e)| {
            if e.key == key {
                slot = Some(e.slot);
                false
            } else {
                true
            }
        });
        slot
    }
}

// ----------------------------------------------------------------- wheel --

/// Bucket granularity: each wheel slot covers `2^GRANULARITY_SHIFT` µs.
/// 64 µs is well under the smallest modelled network delay, so same-bucket
/// events are few and the per-bucket ordering sort stays tiny.
const GRANULARITY_SHIFT: u32 = 6;
/// Number of wheel slots (power of two). With 64 µs buckets the wheel
/// window spans ~65 ms — wider than every hop delay in the evaluation
/// topologies, so steady-state message traffic never touches the spill
/// heap; only long maintenance timers do.
const NUM_SLOTS: usize = 1 << 10;
/// Words in the bucket-occupancy bitmap.
const OCC_WORDS: usize = NUM_SLOTS / 64;

/// Wheel bucket granularity, re-exported for model-level profiling
/// ([`crate::obs::prof`]): each slot covers `2^WHEEL_GRANULARITY_SHIFT` µs.
pub const WHEEL_GRANULARITY_SHIFT: u32 = GRANULARITY_SHIFT;
/// Wheel window span in slots, re-exported for model-level profiling
/// ([`crate::obs::prof`]).
pub const WHEEL_NUM_SLOTS: usize = NUM_SLOTS;

/// Hierarchical timer wheel with a heap spill for the far future.
///
/// # Geometry
///
/// Absolute time is quantized into *ticks* of `2^6 = 64` µs. The wheel
/// holds the next [`NUM_SLOTS`] ticks starting at `base_tick` (the rotating
/// window), one `Vec` bucket per tick, with slot index `tick % NUM_SLOTS`;
/// because the window is exactly `NUM_SLOTS` ticks long, a slot never holds
/// two ticks at once. Events due beyond the window spill to an overflow
/// [`HeapQueue`]-style binary heap and migrate into the wheel as the window
/// advances past their tick.
///
/// # Ordering
///
/// Within a bucket, entries are appended in arrival order, which is *not*
/// `(time, seq)` order (a bucket spans 64 µs, and overflow migration can
/// interleave with direct pushes). Ordering is restored at drain time: the
/// due bucket is moved into a scratch `drain` buffer and sorted once by
/// `(time, seq)` — a contiguous `sort_unstable` over unique keys, which is
/// deterministic. Pops then walk the sorted buffer. Late pushes whose tick
/// already drained (a callback scheduling at the current instant) are
/// insertion-sorted into the live tail of the buffer, preserving the total
/// order. The differential proptests in `tests/queue_equiv.rs` hold this
/// equal to [`HeapQueue`] on random schedules.
pub struct WheelQueue {
    /// One bucket per wheel slot; `slots[tick % NUM_SLOTS]`.
    slots: Vec<Vec<Entry>>,
    /// Occupancy bitmap over `slots`, so advancing over empty buckets is a
    /// word scan, not a `Vec::is_empty` walk.
    occ: [u64; OCC_WORDS],
    /// First tick of the current wheel window. Every bucketed entry has
    /// tick in `[base_tick, base_tick + NUM_SLOTS)`; every drained or
    /// drain-inserted entry has tick `< base_tick`.
    base_tick: u64,
    /// The sorted drain buffer; live entries are `drain[drain_pos..]`.
    drain: Vec<Entry>,
    /// Cursor into `drain` (everything before it was popped).
    drain_pos: usize,
    /// Events with tick at or beyond the window end, ordered by key.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Entries currently resident in wheel buckets.
    wheel_len: usize,
    /// Total entries (buckets + drain tail + overflow).
    len: usize,
}

#[inline]
fn tick_of(time: SimTime) -> u64 {
    time.as_micros() >> GRANULARITY_SHIFT
}

impl WheelQueue {
    /// Heap bytes currently reserved by the wheel (bucket, drain, and
    /// overflow capacities) — memory accounting for million-node trials.
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Entry>();
        let buckets: usize = self.slots.iter().map(|b| b.capacity() * entry).sum();
        buckets
            + self.slots.capacity() * std::mem::size_of::<Vec<Entry>>()
            + self.drain.capacity() * entry
            + self.overflow.capacity() * entry
    }

    /// End of the wheel window (exclusive), in ticks.
    #[inline]
    fn window_end(&self) -> u64 {
        self.base_tick.saturating_add(NUM_SLOTS as u64)
    }

    /// Pulls overflow events whose tick has entered the window into their
    /// buckets. Called whenever `base_tick` advances.
    fn migrate_overflow(&mut self) {
        let end = self.window_end();
        while let Some(Reverse(head)) = self.overflow.peek() {
            if tick_of(head.key.time) >= end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked overflow head vanished");
            self.bucket_push(e);
        }
    }

    /// Appends an in-window entry to its bucket and marks it occupied.
    #[inline]
    fn bucket_push(&mut self, e: Entry) {
        let idx = (tick_of(e.key.time) % NUM_SLOTS as u64) as usize;
        self.slots[idx].push(e);
        self.occ[idx / 64] |= 1u64 << (idx % 64);
        self.wheel_len += 1;
    }

    /// The smallest occupied tick in the window, or `None` if the wheel is
    /// empty. A cyclic bitmap scan starting at `base_tick`'s slot: the slot
    /// at cyclic distance `d` holds tick `base_tick + d`.
    fn next_occupied_tick(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.base_tick % NUM_SLOTS as u64) as usize;
        let (w0, b0) = (start / 64, start % 64);
        for k in 0..=OCC_WORDS {
            let w = (w0 + k) % OCC_WORDS;
            let mut word = self.occ[w];
            if k == 0 {
                word &= !0u64 << b0;
            } else if k == OCC_WORDS {
                // Wrapped fully around: only the bits before `b0` in the
                // start word remain unseen.
                word &= !(!0u64 << b0);
            }
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                let dist = (idx + NUM_SLOTS - start) % NUM_SLOTS;
                return Some(self.base_tick + dist as u64);
            }
        }
        None
    }

    /// Ensures the head of the queue (if any) sits at `drain[drain_pos]`:
    /// refills the drain buffer from the next due bucket, advancing the
    /// window and migrating overflow as needed.
    fn settle(&mut self) {
        loop {
            if self.drain_pos < self.drain.len() {
                return;
            }
            self.drain.clear();
            self.drain_pos = 0;
            if self.len == 0 {
                return;
            }
            if self.wheel_len == 0 {
                // Nothing in-window: jump the window to the overflow head's
                // tick and migrate. `base_tick` only moves forward — the
                // head is at or beyond the old window end.
                let head_tick = {
                    let Reverse(head) = self.overflow.peek().expect("len > 0 with empty wheel");
                    tick_of(head.key.time)
                };
                self.base_tick = self.base_tick.max(head_tick);
                self.migrate_overflow();
                debug_assert!(self.wheel_len > 0);
                continue;
            }
            let due = self.next_occupied_tick().expect("wheel_len > 0");
            let idx = (due % NUM_SLOTS as u64) as usize;
            // Swap the bucket into the (empty) drain buffer; the buffer's
            // old capacity becomes the bucket's, so both recycle.
            std::mem::swap(&mut self.drain, &mut self.slots[idx]);
            self.occ[idx / 64] &= !(1u64 << (idx % 64));
            self.wheel_len -= self.drain.len();
            self.drain.sort_unstable_by_key(|e| e.key.packed());
            // Advance past the drained tick: later pushes for it are "late"
            // and insertion-sort into the drain buffer instead.
            self.base_tick = due + 1;
            self.migrate_overflow();
            debug_assert!(!self.drain.is_empty());
            return;
        }
    }
}

impl EventQueue for WheelQueue {
    const NAME: &'static str = "timer_wheel";

    fn with_capacity(cap: usize) -> Self {
        WheelQueue {
            slots: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            base_tick: 0,
            drain: Vec::new(),
            drain_pos: 0,
            overflow: BinaryHeap::with_capacity(cap.min(1 << 16)),
            wheel_len: 0,
            len: 0,
        }
    }

    fn push(&mut self, key: EventKey, slot: u32) {
        let e = Entry { key, slot };
        self.len += 1;
        let tick = tick_of(key.time);
        if tick < self.base_tick {
            // Late push into an already-drained tick (e.g. a callback
            // scheduling work at the current instant): insertion-sort into
            // the live tail of the drain buffer.
            let tail = &self.drain[self.drain_pos..];
            let at = self.drain_pos + tail.partition_point(|q| q.key < key);
            self.drain.insert(at, e);
        } else if tick < self.window_end() {
            self.bucket_push(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    fn peek(&mut self) -> Option<(EventKey, u32)> {
        self.settle();
        self.drain.get(self.drain_pos).map(|e| (e.key, e.slot))
    }

    fn pop(&mut self) -> Option<(EventKey, u32)> {
        self.settle();
        let e = self.drain.get(self.drain_pos)?;
        self.drain_pos += 1;
        self.len -= 1;
        Some((e.key, e.slot))
    }

    // Overrides the peek-then-pop default so the dispatch loop settles the
    // drain buffer once per event instead of twice.
    fn pop_before(&mut self, deadline: SimTime) -> Option<(EventKey, u32)> {
        self.settle();
        let e = self.drain.get(self.drain_pos)?;
        if e.key.time > deadline {
            return None;
        }
        self.drain_pos += 1;
        self.len -= 1;
        Some((e.key, e.slot))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn snapshot(&mut self) -> Vec<(EventKey, u32)> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.drain[self.drain_pos..].iter().map(|e| (e.key, e.slot)));
        for bucket in &self.slots {
            out.extend(bucket.iter().map(|e| (e.key, e.slot)));
        }
        out.extend(self.overflow.iter().map(|Reverse(e)| (e.key, e.slot)));
        out.sort_unstable_by_key(|(k, _)| k.packed());
        out
    }

    fn remove(&mut self, key: EventKey) -> Option<u32> {
        // The three bands are disjoint by tick: drained/late entries sit
        // below `base_tick`, bucketed entries inside the window, spilled
        // entries at or beyond its end — so each band is probed at most
        // once. The drain tail is sorted by key, so probe it by binary
        // search first (it also covers the in-window tick that was just
        // swapped out by `settle`).
        let tail = &self.drain[self.drain_pos..];
        if let Ok(i) = tail.binary_search_by(|e| e.key.cmp(&key)) {
            let e = self.drain.remove(self.drain_pos + i);
            self.len -= 1;
            return Some(e.slot);
        }
        let tick = tick_of(key.time);
        if tick < self.window_end() {
            let idx = (tick % NUM_SLOTS as u64) as usize;
            let pos = self.slots[idx].iter().position(|e| e.key == key)?;
            let e = self.slots[idx].swap_remove(pos);
            if self.slots[idx].is_empty() {
                self.occ[idx / 64] &= !(1u64 << (idx % 64));
            }
            self.wheel_len -= 1;
            self.len -= 1;
            return Some(e.slot);
        }
        let mut slot = None;
        self.overflow.retain(|Reverse(e)| {
            if e.key == key {
                slot = Some(e.slot);
                false
            } else {
                true
            }
        });
        if slot.is_some() {
            self.len -= 1;
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(us: u64, seq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_micros(us),
            seq,
        }
    }

    /// Pops everything from a queue, returning the key sequence.
    fn drain_all<Q: EventQueue>(q: &mut Q) -> Vec<(EventKey, u32)> {
        let mut out = Vec::new();
        while let Some(kv) = q.pop() {
            out.push(kv);
        }
        out
    }

    fn both_agree(pushes: &[(u64, u64, u32)]) {
        let mut heap = HeapQueue::with_capacity(8);
        let mut wheel = WheelQueue::with_capacity(8);
        for &(us, seq, slot) in pushes {
            heap.push(key(us, seq), slot);
            wheel.push(key(us, seq), slot);
        }
        assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    #[test]
    fn orders_by_time_then_seq() {
        both_agree(&[
            (500, 3, 0),
            (100, 4, 1),
            (100, 2, 2),
            (500, 1, 3),
            (0, 9, 4),
        ]);
    }

    #[test]
    fn same_bucket_orders_by_key_not_arrival() {
        // All five land in the same 64 µs bucket, pushed out of order.
        both_agree(&[(40, 5, 0), (10, 3, 1), (63, 1, 2), (10, 2, 3), (0, 7, 4)]);
    }

    #[test]
    fn far_future_spills_and_returns() {
        // Beyond the 65 ms window: must route through the overflow heap and
        // come back in order as the window advances.
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        both_agree(&[
            (10 * span, 1, 0),
            (100, 2, 1),
            (3 * span + 17, 3, 2),
            (3 * span + 17, 4, 5),
            (span - 1, 5, 3),
            (span, 6, 4),
        ]);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut wheel = WheelQueue::with_capacity(4);
        wheel.push(key(100, 0), 0);
        wheel.push(key(200, 1), 1);
        assert_eq!(wheel.pop_before(SimTime::from_micros(50)), None);
        assert_eq!(
            wheel.pop_before(SimTime::from_micros(100)),
            Some((key(100, 0), 0))
        );
        assert_eq!(wheel.pop_before(SimTime::from_micros(150)), None);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop_before(SimTime::MAX), Some((key(200, 1), 1)));
        assert!(wheel.is_empty());
    }

    #[test]
    fn late_push_lands_in_drained_bucket_order() {
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        for q in [&mut wheel as &mut dyn FnPush, &mut heap] {
            q.do_push(key(10, 0), 0);
            q.do_push(key(40, 1), 1);
        }
        // Pop the first event, then push into the same (now drained) bucket
        // at a time between the two — the late-push insertion path.
        assert_eq!(heap.pop(), wheel.pop());
        heap.push(key(20, 2), 2);
        wheel.push(key(20, 2), 2);
        assert_eq!(heap.peek(), wheel.peek());
        assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    /// Object-safe push shim so the test above can loop over both queues.
    trait FnPush {
        fn do_push(&mut self, key: EventKey, slot: u32);
    }
    impl FnPush for HeapQueue {
        fn do_push(&mut self, key: EventKey, slot: u32) {
            self.push(key, slot);
        }
    }
    impl FnPush for WheelQueue {
        fn do_push(&mut self, key: EventKey, slot: u32) {
            self.push(key, slot);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k-round differential loop is too slow under Miri")]
    fn interleaved_push_pop_over_window_wraps() {
        // A long-lived periodic pattern that repeatedly wraps the wheel:
        // mirrors a re-arming timer with a 97 µs stride.
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        let mut now = 0u64;
        for round in 0..10_000u64 {
            let delay = 97 + (round % 13) * 33;
            heap.push(key(now + delay, round), round as u32);
            wheel.push(key(now + delay, round), round as u32);
            let (hk, hs) = heap.pop().unwrap();
            let (wk, ws) = wheel.pop().unwrap();
            assert_eq!((hk, hs), (wk, ws), "diverged at round {round}");
            now = hk.time.as_micros();
        }
        assert!(heap.is_empty() && wheel.is_empty());
    }

    #[test]
    fn pop_before_at_window_wrap_boundary() {
        // Events straddling the wheel window end: the last in-window µs,
        // the first out-of-window µs (overflow band), and deep overflow.
        // `pop_before` must honour deadlines across the wrap and the
        // overflow migration that `settle` performs at the boundary.
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        let mut wheel = WheelQueue::with_capacity(4);
        wheel.push(key(span - 1, 0), 0);
        wheel.push(key(span, 1), 1);
        wheel.push(key(2 * span + 5, 2), 2);
        assert_eq!(wheel.pop_before(SimTime::from_micros(span - 2)), None);
        assert_eq!(
            wheel.pop_before(SimTime::from_micros(span - 1)),
            Some((key(span - 1, 0), 0))
        );
        // The overflow head migrates into the advanced window but is not
        // yet due at the old deadline.
        assert_eq!(wheel.pop_before(SimTime::from_micros(span - 1)), None);
        assert_eq!(
            wheel.pop_before(SimTime::from_micros(span)),
            Some((key(span, 1), 1))
        );
        assert_eq!(wheel.pop_before(SimTime::from_micros(2 * span)), None);
        assert_eq!(
            wheel.pop_before(SimTime::MAX),
            Some((key(2 * span + 5, 2), 2))
        );
        assert!(wheel.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "2k-round wrap loop is too slow under Miri")]
    fn pop_before_across_many_window_wraps() {
        // A re-arming timer driven purely through `pop_before`, with a
        // stride chosen so `base_tick % NUM_SLOTS` cycles through the whole
        // occupancy bitmap (crossing word boundaries) over the run.
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        let stride = ((NUM_SLOTS as u64) << GRANULARITY_SHIFT) / 3 + 61;
        let mut now = 0u64;
        for round in 0..2_000u64 {
            heap.push(key(now + stride, round), round as u32);
            wheel.push(key(now + stride, round), round as u32);
            let early = SimTime::from_micros(now + stride - 1);
            assert_eq!(wheel.pop_before(early), None, "early pop at {round}");
            let h = heap.pop_before(SimTime::from_micros(now + stride));
            let w = wheel.pop_before(SimTime::from_micros(now + stride));
            assert_eq!(h, w, "diverged at round {round}");
            now = h.expect("event was due").0.time.as_micros();
        }
        assert!(heap.is_empty() && wheel.is_empty());
    }

    #[test]
    fn snapshot_and_remove_agree_across_bands() {
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        let pushes = [
            (10, 0, 0),
            (40, 1, 1),
            (span - 1, 2, 2),
            (span + 3, 3, 3),
            (3 * span, 4, 4),
        ];
        for &(us, seq, slot) in &pushes {
            heap.push(key(us, seq), slot);
            wheel.push(key(us, seq), slot);
        }
        // Pop one to open the drain band, then land a late push in it.
        assert_eq!(heap.pop(), wheel.pop());
        heap.push(key(12, 5), 5);
        wheel.push(key(12, 5), 5);
        assert_eq!(heap.snapshot(), wheel.snapshot());
        // Remove from each band — drain tail, bucket, overflow — plus a
        // miss; lengths and snapshots must stay in lockstep.
        for k in [key(12, 5), key(span - 1, 2), key(3 * span, 4), key(999, 9)] {
            assert_eq!(heap.remove(k), wheel.remove(k), "removing {k:?}");
            assert_eq!(heap.len(), wheel.len());
        }
        assert_eq!(heap.snapshot(), wheel.snapshot());
        assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    #[test]
    fn snapshot_and_remove_on_far_future_overflow_band() {
        // The PR-9 exploration hooks (`snapshot`/`remove`) must see events
        // parked in the far-future heap band exactly as the reference heap
        // does — including events many windows out that no pop has come
        // near yet.
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        let far = [
            (2 * span + 7, 0, 10),
            (5 * span, 1, 11),
            (5 * span, 2, 12), // same µs, later seq — heap-band tiebreak
            (40 * span + 1, 3, 13),
        ];
        for &(us, seq, slot) in &far {
            heap.push(key(us, seq), slot);
            wheel.push(key(us, seq), slot);
        }
        // Snapshot with *everything* in overflow: sorted, complete.
        assert_eq!(heap.snapshot(), wheel.snapshot());
        assert_eq!(wheel.snapshot().len(), 4);
        // Remove straight out of the heap band, twice (head and interior),
        // plus a near-miss key one µs off an occupied slot.
        for k in [
            key(5 * span, 1),
            key(40 * span + 1, 3),
            key(2 * span + 6, 0),
        ] {
            assert_eq!(heap.remove(k), wheel.remove(k), "removing {k:?}");
            assert_eq!(heap.len(), wheel.len());
        }
        assert_eq!(heap.snapshot(), wheel.snapshot());
        assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    #[test]
    fn remove_then_advance_migration_keeps_bands_consistent() {
        // Removing from the overflow band and *then* advancing the window
        // (which migrates the survivors into wheel buckets) must not
        // resurrect the removed event or skew occupancy bookkeeping; and a
        // survivor that migrated must still be removable from its bucket.
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        let mut heap = HeapQueue::with_capacity(4);
        let mut wheel = WheelQueue::with_capacity(4);
        let events = [
            (10, 0, 0),            // in-window anchor
            (span + 5, 1, 1),      // first out-of-window tick
            (span + 5, 2, 2),      // same tick, later seq
            (2 * span + 64, 3, 3), // a full window further out
        ];
        for &(us, seq, slot) in &events {
            heap.push(key(us, seq), slot);
            wheel.push(key(us, seq), slot);
        }
        // Remove one overflow event pre-migration.
        assert_eq!(
            heap.remove(key(span + 5, 1)),
            wheel.remove(key(span + 5, 1))
        );
        // Advance past the window edge: survivors migrate into buckets.
        let cut = SimTime::from_micros(span + 5);
        loop {
            let h = heap.pop_before(cut);
            let w = wheel.pop_before(cut);
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
        assert_eq!(heap.snapshot(), wheel.snapshot());
        // The removed key must not reappear post-migration...
        assert_eq!(heap.remove(key(span + 5, 1)), None);
        assert_eq!(wheel.remove(key(span + 5, 1)), None);
        // ...and a migrated survivor is removable from its new band.
        assert_eq!(
            heap.remove(key(span + 5, 2)),
            wheel.remove(key(span + 5, 2))
        );
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(drain_all(&mut heap), drain_all(&mut wheel));
    }

    #[test]
    fn len_tracks_through_all_bands() {
        let span = (NUM_SLOTS as u64) << GRANULARITY_SHIFT;
        let mut wheel = WheelQueue::with_capacity(4);
        wheel.push(key(5, 0), 0); // wheel band
        wheel.push(key(2 * span, 1), 1); // overflow band
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.pop().map(|(k, _)| k.seq), Some(0));
        wheel.push(key(3, 2), 2); // late push → drain band
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.pop().map(|(k, _)| k.seq), Some(2));
        assert_eq!(wheel.pop().map(|(k, _)| k.seq), Some(1));
        assert_eq!(wheel.len(), 0);
    }
}
