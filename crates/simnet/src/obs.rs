//! Deterministic observability: structured trace records, per-layer
//! metrics, and causal message-path spans.
//!
//! The simulator is generic over a [`TraceSink`] installed at construction
//! time. The default sink is [`NoopSink`], whose `ENABLED` constant is
//! `false`: every record-emission site in the hot path is gated on that
//! associated constant, so with the default sink the compiler removes the
//! observability code entirely and the event loop is byte- and
//! cycle-identical to an untraced build. Installing a [`RecordingSink`]
//! turns on:
//!
//! * **Structured records** ([`TraceRecord`]) for message send / deliver /
//!   drop, timer fires, node churn, compute charges, and chaos-atom
//!   effects, emitted in event-dispatch order — which is `(sim_time, seq)`
//!   order, so a trace for a fixed `(scenario, seed)` is byte-identical
//!   regardless of how many worker threads run *other* trials.
//! * **A metrics registry** ([`MetricsRegistry`]): per-layer counters,
//!   per-layer per-node counters, and fixed-bin histograms quantized with
//!   the same boundary scheme as [`crate::binning`] (see
//!   [`crate::binning::level_of`]). Snapshots serialize deterministically
//!   and merge by summation.
//! * **Causal spans**: every message carries a [`MsgMeta`] — a trace id
//!   plus a parent message id — assigned by the simulator. A send issued
//!   while handling a delivered message inherits that message's trace and
//!   becomes its child; a send issued from a timer, node start, or driver
//!   injection roots a fresh trace. A DHT route, a forest JOIN path, or an
//!   aggregation round can therefore be reconstructed hop-by-hop with
//!   [`span_records`] and exported to Chrome `trace_event` JSON
//!   ([`chrome_trace`]) or JSONL ([`jsonl_trace`]).

use std::collections::BTreeMap;

use crate::binning::level_of;
use crate::topology::NodeIdx;

pub mod prof;

/// Sentinel parent id marking the first message of a span.
pub const ROOT_PARENT: u64 = u64::MAX;

/// Causal identity of one in-flight message.
///
/// Assigned by the simulator on every send when tracing is enabled; with a
/// [`NoopSink`] every message carries [`MsgMeta::NONE`] and no ids are
/// computed. Ids are per-simulator counters starting at 1, so `0` never
/// names a real message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Id of the span's root message (a root message's `trace` is its own
    /// `id`).
    pub trace: u64,
    /// This message's unique id.
    pub id: u64,
    /// Id of the delivered message whose handler issued this send, or
    /// [`ROOT_PARENT`] for a span root.
    pub parent: u64,
    /// Causal depth: 0 for a span root, parent's hop + 1 otherwise.
    pub hop: u16,
}

impl MsgMeta {
    /// The "untraced" meta carried by every message under a [`NoopSink`].
    pub const NONE: MsgMeta = MsgMeta {
        trace: 0,
        id: 0,
        parent: 0,
        hop: 0,
    };

    /// Whether this meta names a real traced message.
    pub fn is_traced(&self) -> bool {
        self.id != 0
    }
}

/// Why a message never reached its destination's handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The topology's stochastic (UDP-like) loss model ate it.
    Loss,
    /// The destination was down when it arrived (TCP-RST-like).
    DeadDest,
    /// A chaos fault (loss spike or partition) dropped it at send time.
    Chaos,
    /// The installed protocol-aware fault filter dropped it at send time.
    Filter,
}

impl DropReason {
    /// Stable lower-case name used in serialized traces.
    pub fn name(&self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::DeadDest => "dead_dest",
            DropReason::Chaos => "chaos",
            DropReason::Filter => "filter",
        }
    }
}

/// What one trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceBody {
    /// `node` put a message on the wire toward `to`.
    Send {
        /// Destination node.
        to: NodeIdx,
        /// Serialized message size.
        bytes: usize,
        /// Causal identity of the message.
        meta: MsgMeta,
        /// Scheduled arrival time in microseconds.
        arrive_at_us: u64,
    },
    /// A message from `from` was delivered to `node`'s handler.
    Deliver {
        /// Source node.
        from: NodeIdx,
        /// Serialized message size.
        bytes: usize,
        /// Causal identity of the message.
        meta: MsgMeta,
    },
    /// A message died before reaching a handler.
    Drop {
        /// Intended destination.
        to: NodeIdx,
        /// Serialized message size.
        bytes: usize,
        /// Why it died.
        reason: DropReason,
        /// Causal identity of the message.
        meta: MsgMeta,
    },
    /// A chaos atom acted on a message without dropping it.
    ChaosEffect {
        /// Destination of the affected message.
        to: NodeIdx,
        /// `"duplicate"` or `"delay"`.
        effect: &'static str,
    },
    /// A timer armed by `node` fired with `token`.
    TimerFire {
        /// The timer's token.
        token: u64,
    },
    /// Churn took `node` down.
    NodeDown,
    /// Churn brought `node` back up.
    NodeUp,
    /// `node` charged simulated CPU time.
    Compute {
        /// `"fl"` or `"dht"`.
        task: &'static str,
        /// Charged microseconds.
        us: u64,
    },
}

/// One structured observability record.
///
/// Records are emitted in event-dispatch order; their position in the
/// sink's buffer is the deterministic `(sim_time, seq)` total order the
/// determinism contract pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the record in microseconds.
    pub at_us: u64,
    /// The node the record is about (sender, receiver, timer owner, ...).
    pub node: NodeIdx,
    /// Protocol layer tag from [`crate::sim::Payload::layer`] (`"sim"` for
    /// simulator-level records like timers and churn).
    pub layer: &'static str,
    /// Message kind from [`crate::sim::Payload::kind`], or the event name.
    pub kind: &'static str,
    /// What happened.
    pub body: TraceBody,
}

impl TraceRecord {
    /// The causal meta of this record, if it is about a traced message.
    pub fn meta(&self) -> Option<MsgMeta> {
        match self.body {
            TraceBody::Send { meta, .. }
            | TraceBody::Deliver { meta, .. }
            | TraceBody::Drop { meta, .. } => Some(meta),
            _ => None,
        }
    }

    /// Deterministic single-line JSON rendering (fixed key order).
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"at_us\":{},\"node\":{},\"layer\":\"{}\",\"kind\":\"{}\"",
            self.at_us, self.node, self.layer, self.kind
        );
        let body = match self.body {
            TraceBody::Send {
                to,
                bytes,
                meta,
                arrive_at_us,
            } => format!(
                ",\"ev\":\"send\",\"to\":{to},\"bytes\":{bytes},\"arrive_at_us\":{arrive_at_us}{}",
                meta_json(meta)
            ),
            TraceBody::Deliver { from, bytes, meta } => format!(
                ",\"ev\":\"deliver\",\"from\":{from},\"bytes\":{bytes}{}",
                meta_json(meta)
            ),
            TraceBody::Drop {
                to,
                bytes,
                reason,
                meta,
            } => format!(
                ",\"ev\":\"drop\",\"to\":{to},\"bytes\":{bytes},\"reason\":\"{}\"{}",
                reason.name(),
                meta_json(meta)
            ),
            TraceBody::ChaosEffect { to, effect } => {
                format!(",\"ev\":\"chaos\",\"to\":{to},\"effect\":\"{effect}\"")
            }
            TraceBody::TimerFire { token } => format!(",\"ev\":\"timer\",\"token\":{token}"),
            TraceBody::NodeDown => ",\"ev\":\"down\"".to_string(),
            TraceBody::NodeUp => ",\"ev\":\"up\"".to_string(),
            TraceBody::Compute { task, us } => {
                format!(",\"ev\":\"compute\",\"task\":\"{task}\",\"us\":{us}")
            }
        };
        format!("{head}{body}}}")
    }
}

fn meta_json(meta: MsgMeta) -> String {
    if !meta.is_traced() {
        return String::new();
    }
    let parent = if meta.parent == ROOT_PARENT {
        "null".to_string()
    } else {
        meta.parent.to_string()
    };
    format!(
        ",\"trace\":{},\"id\":{},\"parent\":{},\"hop\":{}",
        meta.trace, meta.id, parent, meta.hop
    )
}

/// Receiver of trace records, installed on the simulator at construction.
///
/// `ENABLED` is an associated *constant* so that every emission site — and
/// all the meta/size computation feeding it — folds away statically for
/// [`NoopSink`]. Implementations must be cheap: `record` runs inside the
/// event loop.
pub trait TraceSink {
    /// Whether the simulator should compute and emit records at all.
    const ENABLED: bool = true;

    /// Receives one record. Called in deterministic dispatch order.
    fn record(&mut self, rec: TraceRecord);

    /// A metrics snapshot for trial reports, if this sink aggregates one.
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Takes the buffered records out of the sink, if it buffers any.
    /// Lets sink-generic experiment code recover a trace without knowing
    /// the concrete sink type.
    fn drain_records(&mut self) -> Option<Vec<TraceRecord>> {
        None
    }
}

/// The default sink: tracing off, statically removed from the hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A sink that only counts calls — the zero-allocation probe used to test
/// that record emission sites fire (and that [`NoopSink`] elides them).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    /// Number of records received.
    pub records: u64,
}

impl TraceSink for CountingSink {
    #[inline(always)]
    fn record(&mut self, _rec: TraceRecord) {
        self.records += 1;
    }
}

/// Message-size histogram boundaries (bytes): control / small / MTU-ish /
/// bulk / huge.
const SIZE_BOUNDS: &[u64] = &[64, 256, 1_460, 65_536];
/// Causal-hop histogram boundaries.
const HOP_BOUNDS: &[u64] = &[1, 2, 4, 8, 16];

/// The full-capture sink: buffers every record and aggregates a
/// [`MetricsRegistry`] as records arrive.
#[derive(Debug, Default)]
pub struct RecordingSink {
    records: Vec<TraceRecord>,
    metrics: MetricsRegistry,
    filter: Option<String>,
    nodes: usize,
}

impl RecordingSink {
    /// A sink for a simulation of `nodes` nodes (sizes per-node counters).
    pub fn new(nodes: usize) -> Self {
        RecordingSink {
            records: Vec::new(),
            metrics: MetricsRegistry::default(),
            filter: None,
            nodes,
        }
    }

    /// Restricts *buffered* records to the given layer tags — one tag or
    /// a comma-separated list (`"forest,dht"`). Metrics still aggregate
    /// over every layer, so a filtered trace keeps its full registry
    /// snapshot.
    pub fn with_layer_filter(mut self, layer: Option<String>) -> Self {
        self.filter = layer;
        self
    }

    /// The buffered records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Takes the buffered records out of the sink.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// The aggregated metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, rec: TraceRecord) {
        self.metrics.observe(&rec, self.nodes);
        if let Some(filter) = &self.filter {
            if !filter.split(',').any(|layer| layer == rec.layer) {
                return;
            }
        }
        self.records.push(rec);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }

    fn drain_records(&mut self) -> Option<Vec<TraceRecord>> {
        Some(self.take_records())
    }
}

/// A fixed-bin histogram quantized like [`crate::binning`]: `k` boundaries
/// produce `k + 1` bins, and a value lands in
/// [`crate::binning::level_of`]`(bounds, value)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bin boundaries (ascending).
    pub bounds: Vec<u64>,
    /// Per-bin observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[level_of(&self.bounds, value)] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sums another histogram's counts into this one (same bounds).
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds.is_empty() {
            *self = other.clone();
            return;
        }
        debug_assert_eq!(self.bounds, other.bounds, "merging unlike histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Per-layer counters and histograms keyed by static names.
///
/// All maps are `BTreeMap`s so iteration — and therefore serialization —
/// is deterministically ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// `(layer, name)` → count.
    counters: BTreeMap<(&'static str, &'static str), u64>,
    /// `(layer, name)` → per-node counts.
    per_node: BTreeMap<(&'static str, &'static str), Vec<u64>>,
    /// `(layer, name)` → histogram.
    histograms: BTreeMap<(&'static str, &'static str), Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to counter `(layer, name)`.
    pub fn add(&mut self, layer: &'static str, name: &'static str, by: u64) {
        *self.counters.entry((layer, name)).or_insert(0) += by;
    }

    /// Adds `by` to per-node counter `(layer, name)` for `node`.
    pub fn add_node(
        &mut self,
        layer: &'static str,
        name: &'static str,
        node: NodeIdx,
        nodes: usize,
        by: u64,
    ) {
        let v = self
            .per_node
            .entry((layer, name))
            .or_insert_with(|| vec![0; nodes.max(node + 1)]);
        if v.len() <= node {
            v.resize(node + 1, 0);
        }
        v[node] += by;
    }

    /// Records `value` in histogram `(layer, name)` over `bounds`.
    pub fn observe_hist(
        &mut self,
        layer: &'static str,
        name: &'static str,
        bounds: &[u64],
        value: u64,
    ) {
        self.histograms
            .entry((layer, name))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Counter `(layer, name)`, zero if never touched.
    pub fn counter(&self, layer: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|((l, n), _)| *l == layer && *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Folds one record into the registry.
    pub fn observe(&mut self, rec: &TraceRecord, nodes: usize) {
        match rec.body {
            TraceBody::Send { bytes, meta, .. } => {
                self.add(rec.layer, "sends", 1);
                self.add(rec.layer, "send_bytes", bytes as u64);
                self.add_node(rec.layer, "node_sends", rec.node, nodes, 1);
                self.observe_hist(rec.layer, "send_bytes_hist", SIZE_BOUNDS, bytes as u64);
                if meta.is_traced() {
                    self.observe_hist(rec.layer, "causal_hops", HOP_BOUNDS, u64::from(meta.hop));
                }
            }
            TraceBody::Deliver { bytes, .. } => {
                self.add(rec.layer, "delivers", 1);
                self.add(rec.layer, "deliver_bytes", bytes as u64);
                self.add_node(rec.layer, "node_delivers", rec.node, nodes, 1);
            }
            TraceBody::Drop { reason, .. } => {
                self.add(rec.layer, "drops", 1);
                let name = match reason {
                    DropReason::Loss => "drops_loss",
                    DropReason::DeadDest => "drops_dead",
                    DropReason::Chaos => "drops_chaos",
                    DropReason::Filter => "drops_filter",
                };
                self.add(rec.layer, name, 1);
            }
            TraceBody::ChaosEffect { effect, .. } => {
                let name = match effect {
                    "duplicate" => "chaos_duplicates",
                    _ => "chaos_delays",
                };
                self.add(rec.layer, name, 1);
            }
            TraceBody::TimerFire { .. } => self.add(rec.layer, "timer_fires", 1),
            TraceBody::NodeDown => self.add(rec.layer, "node_downs", 1),
            TraceBody::NodeUp => self.add(rec.layer, "node_ups", 1),
            TraceBody::Compute { task, us } => {
                let name = match task {
                    "fl" => "compute_fl_us",
                    _ => "compute_dht_us",
                };
                self.add(rec.layer, name, us);
            }
        }
    }

    /// A plain-value snapshot for embedding in trial reports.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&(l, n), &v)| (format!("{l}.{n}"), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&(l, n), h)| (format!("{l}.{n}"), h.clone()))
                .collect(),
            per_node: self
                .per_node
                .iter()
                .map(|(&(l, n), v)| (format!("{l}.{n}"), v.clone()))
                .collect(),
        }
    }
}

/// A serializable, mergeable snapshot of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `layer.name` → count, sorted by key.
    pub counters: BTreeMap<String, u64>,
    /// `layer.name` → histogram, sorted by key.
    pub histograms: BTreeMap<String, Histogram>,
    /// `layer.name` → per-node counts, sorted by key.
    pub per_node: BTreeMap<String, Vec<u64>>,
}

impl MetricsSnapshot {
    /// Sums another snapshot into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.per_node {
            let mine = self.per_node.entry(k.clone()).or_default();
            if mine.len() < v.len() {
                mine.resize(v.len(), 0);
            }
            for (a, b) in mine.iter_mut().zip(v) {
                *a += b;
            }
        }
    }

    /// Deterministic JSON rendering: keys in `BTreeMap` order, fixed field
    /// order, integers only.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
                let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
                format!(
                    "\"{k}\":{{\"bounds\":[{}],\"counts\":[{}]}}",
                    bounds.join(","),
                    counts.join(",")
                )
            })
            .collect();
        let per_node: Vec<String> = self
            .per_node
            .iter()
            .map(|(k, v)| {
                let vals: Vec<String> = v.iter().map(u64::to_string).collect();
                format!("\"{k}\":[{}]", vals.join(","))
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}},\"per_node\":{{{}}}}}",
            counters.join(","),
            hists.join(","),
            per_node.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Span reconstruction and exporters.
// ---------------------------------------------------------------------------

/// All records belonging to trace `trace`, in emission order.
pub fn span_records(records: &[TraceRecord], trace: u64) -> Vec<&TraceRecord> {
    records
        .iter()
        .filter(|r| r.meta().is_some_and(|m| m.trace == trace))
        .collect()
}

/// Groups every traced record by its trace id (emission order within each
/// span preserved).
pub fn spans(records: &[TraceRecord]) -> BTreeMap<u64, Vec<&TraceRecord>> {
    let mut out: BTreeMap<u64, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        if let Some(m) = r.meta() {
            out.entry(m.trace).or_default().push(r);
        }
    }
    out
}

/// The trace id of the last delivered message in `layer` at or before
/// `at_us` — "what message chain was in flight when the violation fired".
pub fn last_trace_before(records: &[TraceRecord], layer: &str, at_us: u64) -> Option<u64> {
    records
        .iter()
        .rev()
        .filter(|r| r.at_us <= at_us && r.layer == layer)
        .find_map(|r| match r.body {
            TraceBody::Deliver { meta, .. } if meta.is_traced() => Some(meta.trace),
            _ => None,
        })
}

/// Renders one span as human-readable hop lines (for violation reports and
/// debugging): one line per record, `+offset_us` relative to the span root.
pub fn span_report(records: &[TraceRecord], trace: u64) -> Vec<String> {
    let span = span_records(records, trace);
    let t0 = span.first().map(|r| r.at_us).unwrap_or(0);
    span.iter()
        .map(|r| {
            let m = r.meta().expect("span records carry meta");
            let what = match r.body {
                TraceBody::Send { to, .. } => format!("send {} -> {to}", r.node),
                TraceBody::Deliver { from, .. } => format!("deliver {from} -> {}", r.node),
                TraceBody::Drop { to, reason, .. } => {
                    format!("drop {} -> {to} ({})", r.node, reason.name())
                }
                _ => format!("event @{}", r.node),
            };
            format!(
                "+{}us {}/{} {} [msg {} hop {}]",
                r.at_us - t0,
                r.layer,
                r.kind,
                what,
                m.id,
                m.hop
            )
        })
        .collect()
}

/// Exports records as Chrome `trace_event` JSON (load in `chrome://tracing`
/// or Perfetto). Each send becomes a complete (`X`) slice on the sender's
/// track lasting until scheduled arrival; drops, timers, and churn become
/// instant (`i`) events. Output is deterministic.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    chrome_trace_multi(&[(0, records)])
}

/// [`chrome_trace`] over several record groups (one per trial); each group
/// renders as its own `pid` so trials appear as separate processes in the
/// trace viewer.
pub fn chrome_trace_multi(groups: &[(u64, &[TraceRecord])]) -> String {
    let mut events: Vec<String> = Vec::new();
    for &(pid, records) in groups {
        push_chrome_events(records, pid, &mut events);
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

fn push_chrome_events(records: &[TraceRecord], pid: u64, events: &mut Vec<String>) {
    events.reserve(records.len());
    for r in records {
        let name = format!("{}/{}", r.layer, r.kind);
        match r.body {
            TraceBody::Send {
                to,
                bytes,
                meta,
                arrive_at_us,
            } => {
                let args = if meta.is_traced() {
                    format!(
                        "{{\"to\":{to},\"bytes\":{bytes},\"trace\":{},\"id\":{},\"hop\":{}}}",
                        meta.trace, meta.id, meta.hop
                    )
                } else {
                    format!("{{\"to\":{to},\"bytes\":{bytes}}}")
                };
                events.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{args}}}",
                    r.at_us,
                    arrive_at_us.saturating_sub(r.at_us).max(1),
                    r.node
                ));
            }
            TraceBody::Deliver { from, bytes, meta } => {
                let args = if meta.is_traced() {
                    format!(
                        "{{\"from\":{from},\"bytes\":{bytes},\"trace\":{},\"id\":{},\"hop\":{}}}",
                        meta.trace, meta.id, meta.hop
                    )
                } else {
                    format!("{{\"from\":{from},\"bytes\":{bytes}}}")
                };
                events.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{args}}}",
                    r.at_us, r.node
                ));
            }
            TraceBody::Drop { to, reason, .. } => {
                events.push(format!(
                    "{{\"name\":\"{name} drop:{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"to\":{to}}}}}",
                    reason.name(),
                    r.at_us,
                    r.node
                ));
            }
            TraceBody::ChaosEffect { to, effect } => {
                events.push(format!(
                    "{{\"name\":\"chaos:{effect}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"to\":{to}}}}}",
                    r.at_us, r.node
                ));
            }
            TraceBody::TimerFire { token } => {
                events.push(format!(
                    "{{\"name\":\"timer\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"token\":{token}}}}}",
                    r.at_us, r.node
                ));
            }
            TraceBody::NodeDown | TraceBody::NodeUp => {
                let what = if matches!(r.body, TraceBody::NodeDown) {
                    "down"
                } else {
                    "up"
                };
                events.push(format!(
                    "{{\"name\":\"node {what}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{pid},\"tid\":{}}}",
                    r.at_us, r.node
                ));
            }
            TraceBody::Compute { task, us } => {
                events.push(format!(
                    "{{\"name\":\"compute:{task}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}}}",
                    r.at_us,
                    us.max(1),
                    r.node
                ));
            }
        }
    }
}

/// Exports records as JSONL: one [`TraceRecord::to_json`] object per line.
pub fn jsonl_trace(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// [`jsonl_trace`] over several record groups (one per trial); each line
/// gains a leading `"trial":<index>` key identifying its group.
pub fn jsonl_trace_multi(groups: &[(u64, &[TraceRecord])]) -> String {
    let mut out = String::new();
    for &(pid, records) in groups {
        for r in records {
            let json = r.to_json();
            out.push_str(&format!("{{\"trial\":{pid},{}", &json[1..]));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(at: u64, node: usize, to: usize, meta: MsgMeta) -> TraceRecord {
        TraceRecord {
            at_us: at,
            node,
            layer: "forest",
            kind: "join",
            body: TraceBody::Send {
                to,
                bytes: 96,
                meta,
                arrive_at_us: at + 500,
            },
        }
    }

    fn deliver(at: u64, from: usize, node: usize, meta: MsgMeta) -> TraceRecord {
        TraceRecord {
            at_us: at,
            node,
            layer: "forest",
            kind: "join",
            body: TraceBody::Deliver {
                from,
                bytes: 96,
                meta,
            },
        }
    }

    fn chain() -> Vec<TraceRecord> {
        // 0 -> 1 -> 2 -> 3, one trace rooted at msg 10.
        let m0 = MsgMeta {
            trace: 10,
            id: 10,
            parent: ROOT_PARENT,
            hop: 0,
        };
        let m1 = MsgMeta {
            trace: 10,
            id: 11,
            parent: 10,
            hop: 1,
        };
        let m2 = MsgMeta {
            trace: 10,
            id: 12,
            parent: 11,
            hop: 2,
        };
        vec![
            send(0, 0, 1, m0),
            deliver(500, 0, 1, m0),
            send(500, 1, 2, m1),
            deliver(1_000, 1, 2, m1),
            send(1_000, 2, 3, m2),
            deliver(1_500, 2, 3, m2),
        ]
    }

    #[test]
    fn span_records_follow_parent_links() {
        let recs = chain();
        let span = span_records(&recs, 10);
        assert_eq!(span.len(), 6);
        // Every non-root message's parent is an earlier message in the span.
        let mut seen = std::collections::BTreeSet::new();
        for r in &span {
            let m = r.meta().unwrap();
            if m.parent != ROOT_PARENT {
                assert!(seen.contains(&m.parent), "parent {} unseen", m.parent);
            }
            seen.insert(m.id);
        }
        assert!(span_records(&recs, 99).is_empty());
    }

    #[test]
    fn spans_group_by_trace() {
        let mut recs = chain();
        let other = MsgMeta {
            trace: 50,
            id: 50,
            parent: ROOT_PARENT,
            hop: 0,
        };
        recs.push(send(2_000, 4, 5, other));
        let by_trace = spans(&recs);
        assert_eq!(by_trace.len(), 2);
        assert_eq!(by_trace[&10].len(), 6);
        assert_eq!(by_trace[&50].len(), 1);
    }

    #[test]
    fn last_trace_before_finds_in_flight_chain() {
        let recs = chain();
        assert_eq!(last_trace_before(&recs, "forest", 1_200), Some(10));
        assert_eq!(last_trace_before(&recs, "forest", 0), None);
        assert_eq!(last_trace_before(&recs, "dht", 9_999), None);
    }

    #[test]
    fn histogram_bins_match_binning_levels() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2]);
        assert_eq!(h.total(), 6);
        let mut other = Histogram::new(&[10, 100]);
        other.observe(5);
        h.merge(&other);
        assert_eq!(h.counts, vec![3, 2, 2]);
    }

    #[test]
    fn registry_snapshot_is_deterministic_and_merges() {
        let mut reg = MetricsRegistry::default();
        for r in chain() {
            reg.observe(&r, 4);
        }
        assert_eq!(reg.counter("forest", "sends"), 3);
        assert_eq!(reg.counter("forest", "delivers"), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.to_json(), reg.snapshot().to_json());
        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.counters["forest.sends"], 6);
        assert_eq!(merged.per_node["forest.node_sends"].iter().sum::<u64>(), 6);
        assert_eq!(merged.histograms["forest.send_bytes_hist"].total(), 6);
    }

    #[test]
    fn exporters_are_deterministic_and_well_formed() {
        let recs = chain();
        let chrome = chrome_trace(&recs);
        assert_eq!(chrome, chrome_trace(&recs));
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        let jsonl = jsonl_trace(&recs);
        assert_eq!(jsonl.lines().count(), 6);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"layer\":\"forest\""));
        }
    }

    #[test]
    fn counting_sink_counts_without_buffering() {
        let mut sink = CountingSink::default();
        for r in chain() {
            sink.record(r);
        }
        assert_eq!(sink.records, 6);
        assert!(sink.snapshot().is_none());
        const { assert!(!NoopSink::ENABLED) };
        const { assert!(CountingSink::ENABLED) };
    }

    #[test]
    fn recording_sink_filters_records_but_not_metrics() {
        let mut sink = RecordingSink::new(8).with_layer_filter(Some("dht".to_string()));
        for r in chain() {
            sink.record(r);
        }
        assert!(sink.records().is_empty(), "forest records filtered out");
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counters["forest.sends"], 3);
    }

    #[test]
    fn recording_sink_filter_accepts_comma_separated_layer_lists() {
        let mut sink = RecordingSink::new(8).with_layer_filter(Some("forest,dht".to_string()));
        for r in chain() {
            sink.record(r);
        }
        assert_eq!(sink.records().len(), 6, "forest is in the filter list");
        let mut sink = RecordingSink::new(8).with_layer_filter(Some("dht,sim".to_string()));
        for r in chain() {
            sink.record(r);
        }
        assert!(sink.records().is_empty(), "forest is not in the list");
    }
}
