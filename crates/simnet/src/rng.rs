//! Deterministic random-number plumbing.
//!
//! Every stochastic component of the simulator draws from an RNG derived from
//! a single experiment seed via [`derive_seed`], so that independent
//! subsystems (topology jitter, link losses, churn schedules, dataset
//! synthesis, ...) do not perturb each other's random streams when one of
//! them changes how many numbers it draws.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `(root, label)` using the SplitMix64 finalizer.
///
/// The same `(root, label)` pair always yields the same child seed, and
/// distinct labels yield statistically independent streams.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = splitmix64(h);
    }
    splitmix64(h)
}

/// Creates a seeded [`StdRng`] for the subsystem named `label`.
pub fn sub_rng(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "topology"), derive_seed(42, "topology"));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "topology"), derive_seed(42, "churn"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn sub_rngs_reproduce() {
        let a: u64 = sub_rng(7, "x").gen();
        let b: u64 = sub_rng(7, "x").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_label_still_mixes_root() {
        assert_ne!(derive_seed(1, ""), derive_seed(2, ""));
    }
}
