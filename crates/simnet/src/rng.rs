//! Deterministic random-number plumbing.
//!
//! Every stochastic component of the simulator draws from an RNG derived from
//! a single experiment seed via [`derive_seed`], so that independent
//! subsystems (topology jitter, link losses, churn schedules, dataset
//! synthesis, ...) do not perturb each other's random streams when one of
//! them changes how many numbers it draws.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `(root, label)` using the SplitMix64 finalizer.
///
/// The same `(root, label)` pair always yields the same child seed, and
/// distinct labels yield statistically independent streams.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = splitmix64(h);
    }
    splitmix64(h)
}

/// Creates a seeded [`StdRng`] for the subsystem named `label`.
pub fn sub_rng(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// Hashes `(key, parts...)` into a unit-interval sample in `[0, 1)`.
///
/// This is the *keyed* (stateless) analogue of drawing one `f64` from a
/// seeded stream: the result is a pure function of its inputs, so it can
/// be evaluated in any order — or concurrently from several shards — and
/// still reproduce exactly. Used by keyed chaos injection
/// ([`crate::chaos::FaultPlan::keyed_injector`]).
pub fn keyed_unit(key: u64, parts: &[u64]) -> f64 {
    let mut h = key;
    for &p in parts {
        h = splitmix64(h ^ p.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    // Top 53 bits -> [0, 1), the standard double construction.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "topology"), derive_seed(42, "topology"));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "topology"), derive_seed(42, "churn"));
        assert_ne!(derive_seed(42, "a"), derive_seed(43, "a"));
    }

    #[test]
    fn sub_rngs_reproduce() {
        let a: u64 = sub_rng(7, "x").gen();
        let b: u64 = sub_rng(7, "x").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_label_still_mixes_root() {
        assert_ne!(derive_seed(1, ""), derive_seed(2, ""));
    }

    #[test]
    fn keyed_unit_is_pure_and_in_range() {
        let a = keyed_unit(7, &[100, 2, 3]);
        assert_eq!(a, keyed_unit(7, &[100, 2, 3]));
        assert_ne!(a, keyed_unit(8, &[100, 2, 3]));
        assert_ne!(a, keyed_unit(7, &[100, 3, 2]));
        for key in 0..64u64 {
            for t in [0u64, 1, 999_999] {
                let u = keyed_unit(key, &[t, key ^ 1, t ^ 3]);
                assert!((0.0..1.0).contains(&u));
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k statistical draws are too slow under Miri")]
    fn keyed_unit_hits_probabilities_roughly() {
        // ~Bernoulli(0.3) over many distinct part tuples.
        let hits = (0..10_000u64)
            .filter(|&i| keyed_unit(5, &[i, i * 31, i * 7]) < 0.3)
            .count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
