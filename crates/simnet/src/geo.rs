//! Geographic placement of edge nodes.
//!
//! The paper drives its scalability experiments with the EUA dataset: 95,271
//! cellular base stations across 12 Australian states and regions (§7.1).
//! The raw dataset is not redistributable here, so this module synthesizes a
//! geometry with the *published* per-region counts and a clustered spatial
//! layout (cities inside regions), which is what the distributed-binning and
//! zone experiments actually exercise.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A position on a planar map, in kilometres.
///
/// A plane is used instead of spherical coordinates: all consumers only need
/// relative distances, and a plane keeps the arithmetic exact and cheap.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// East-west coordinate in km.
    pub x_km: f64,
    /// North-south coordinate in km.
    pub y_km: f64,
}

impl GeoPoint {
    /// Creates a point from km coordinates.
    pub fn new(x_km: f64, y_km: f64) -> Self {
        GeoPoint { x_km, y_km }
    }

    /// Euclidean distance to `other`, in km.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let dx = self.x_km - other.x_km;
        let dy = self.y_km - other.y_km;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A named geographic region with a target node count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Region {
    /// Region name (e.g. an Australian state code).
    pub name: String,
    /// Center of the region on the map.
    pub center: GeoPoint,
    /// Standard deviation of node placement around city clusters, in km.
    pub spread_km: f64,
    /// Number of nodes to generate in this region.
    pub count: usize,
}

/// One generated edge node: its location and the region it belongs to.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlacedNode {
    /// Node position.
    pub point: GeoPoint,
    /// Index into the region list used for generation.
    pub region: u16,
}

/// Returns the 12 EUA regions with the node counts published in the paper
/// (§7.2): ACT 931, ANT 15, EXT 8, ISL 36, NSW 24574, NT 3137, QLD 21576,
/// SA 7682, TAS 3213, VIC 18163, WA 15933, WLD 3 — 95,271 nodes in total.
///
/// Region centers approximate the relative layout of the Australian states on
/// a ~4000 km x 3500 km plane.
pub fn eua_regions() -> Vec<Region> {
    let mk = |name: &str, x: f64, y: f64, spread: f64, count: usize| Region {
        name: name.to_string(),
        center: GeoPoint::new(x, y),
        spread_km: spread,
        count,
    };
    vec![
        mk("ACT", 3350.0, 950.0, 40.0, 931),
        mk("ANT", 2000.0, 3400.0, 120.0, 15),
        mk("EXT", 200.0, 3300.0, 150.0, 8),
        mk("ISL", 3800.0, 2600.0, 100.0, 36),
        mk("NSW", 3300.0, 1200.0, 300.0, 24_574),
        mk("NT", 2050.0, 2600.0, 350.0, 3_137),
        mk("QLD", 3100.0, 2200.0, 450.0, 21_576),
        mk("SA", 2300.0, 1100.0, 320.0, 7_682),
        mk("TAS", 3050.0, 150.0, 120.0, 3_213),
        mk("VIC", 2950.0, 700.0, 220.0, 18_163),
        mk("WA", 700.0, 1500.0, 500.0, 15_933),
        mk("WLD", 1500.0, 200.0, 80.0, 3),
    ]
}

/// Returns a small, fast variant of [`eua_regions`] that keeps the relative
/// region densities but scales the total to roughly `total` nodes.
///
/// Every region keeps at least one node so that sparse regions (ANT, EXT,
/// WLD) still appear in zone experiments.
pub fn eua_regions_scaled(total: usize) -> Vec<Region> {
    let mut regions = eua_regions();
    let full: usize = regions.iter().map(|r| r.count).sum();
    for r in &mut regions {
        r.count = ((r.count as f64 / full as f64) * total as f64).round() as usize;
        r.count = r.count.max(1);
    }
    regions
}

/// Generates clustered node placements for the given regions.
///
/// Each region is populated around `ceil(sqrt(count))` city clusters whose
/// centers are drawn uniformly inside a disc of radius `2 * spread_km` around
/// the region center; nodes then scatter around their city with a Gaussian of
/// standard deviation `spread_km / 4`. This reproduces the heavy spatial
/// skew of real base-station deployments that Figure 5 relies on.
pub fn generate(regions: &[Region], rng: &mut StdRng) -> Vec<PlacedNode> {
    let mut nodes = Vec::with_capacity(regions.iter().map(|r| r.count).sum());
    for (ri, region) in regions.iter().enumerate() {
        if region.count == 0 {
            continue;
        }
        let num_cities = ((region.count as f64).sqrt().ceil() as usize).max(1);
        let cities: Vec<GeoPoint> = (0..num_cities)
            .map(|_| {
                let angle = rng.gen::<f64>() * std::f64::consts::TAU;
                let radius = rng.gen::<f64>().sqrt() * 2.0 * region.spread_km;
                GeoPoint::new(
                    region.center.x_km + radius * angle.cos(),
                    region.center.y_km + radius * angle.sin(),
                )
            })
            .collect();
        for _ in 0..region.count {
            // Skew node-per-city mass: earlier cities are "bigger".
            let u: f64 = rng.gen::<f64>();
            let city = &cities[((u * u) * num_cities as f64) as usize % num_cities];
            let sd = (region.spread_km / 4.0).max(1.0);
            nodes.push(PlacedNode {
                point: GeoPoint::new(
                    city.x_km + gaussian(rng) * sd,
                    city.y_km + gaussian(rng) * sd,
                ),
                region: ri as u16,
            });
        }
    }
    nodes
}

/// Draws a standard normal variate using the Box-Muller transform.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sub_rng;

    #[test]
    fn eua_counts_match_paper() {
        let regions = eua_regions();
        assert_eq!(regions.len(), 12);
        let total: usize = regions.iter().map(|r| r.count).sum();
        assert_eq!(total, 95_271);
        let nsw = regions.iter().find(|r| r.name == "NSW").unwrap();
        assert_eq!(nsw.count, 24_574);
        let wld = regions.iter().find(|r| r.name == "WLD").unwrap();
        assert_eq!(wld.count, 3);
    }

    #[test]
    fn scaled_regions_keep_all_regions() {
        let regions = eua_regions_scaled(1_000);
        assert_eq!(regions.len(), 12);
        assert!(regions.iter().all(|r| r.count >= 1));
        let total: usize = regions.iter().map(|r| r.count).sum();
        assert!((900..=1_100).contains(&total), "total = {total}");
    }

    #[test]
    fn generate_produces_requested_counts() {
        let regions = eua_regions_scaled(500);
        let mut rng = sub_rng(1, "geo");
        let nodes = generate(&regions, &mut rng);
        let total: usize = regions.iter().map(|r| r.count).sum();
        assert_eq!(nodes.len(), total);
        for (ri, region) in regions.iter().enumerate() {
            let in_region = nodes.iter().filter(|n| n.region == ri as u16).count();
            assert_eq!(in_region, region.count);
        }
    }

    #[test]
    fn nodes_cluster_near_region_center() {
        let regions = vec![Region {
            name: "X".into(),
            center: GeoPoint::new(100.0, 100.0),
            spread_km: 50.0,
            count: 200,
        }];
        let mut rng = sub_rng(2, "geo");
        let nodes = generate(&regions, &mut rng);
        let far = nodes
            .iter()
            .filter(|n| n.point.distance_km(&regions[0].center) > 500.0)
            .count();
        assert_eq!(far, 0, "placements escaped the region envelope");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(1.0, 2.0);
        let b = GeoPoint::new(4.0, 6.0);
        assert_eq!(a.distance_km(&b), b.distance_km(&a));
        assert_eq!(a.distance_km(&a), 0.0);
        assert!((a.distance_km(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(miri, ignore = "20k statistical draws are too slow under Miri")]
    fn gaussian_has_reasonable_moments() {
        let mut rng = sub_rng(3, "gauss");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }
}
