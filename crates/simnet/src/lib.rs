//! # totoro-simnet
//!
//! Deterministic discrete-event network simulator underlying the Totoro
//! reproduction. It provides:
//!
//! * a virtual clock and pluggable event queue ([`sim::Simulator`],
//!   [`queue`] — timer wheel by default, binary heap as reference);
//! * a geographic topology with latency/bandwidth/loss models
//!   ([`topology::Topology`], [`geo`]);
//! * Ratnasamy-Shenker distributed binning and edge-zone formation
//!   ([`binning`]);
//! * per-node traffic and compute ledgers ([`traffic`], Figure 7/13);
//! * reproducible churn schedules ([`churn`], Figure 12).
//!
//! The paper evaluates Totoro by *emulating* up to 100k edge nodes on 500
//! EC2 machines (§7.1); this crate replaces that emulation with an exact
//! event-level simulation so experiments are reproducible on one machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod bitset;
pub mod chaos;
pub mod churn;
pub mod geo;
pub mod numeric;
pub mod obs;
pub mod payload;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod trial;

pub use binning::{assign_zones, BinningConfig, ZoneAssignment, ZoneSummary};
pub use bitset::BitSet;
pub use chaos::{
    run_with_invariants, ChaosInjector, ChaosStats, CheckpointConfig, Fault, FaultFilter,
    FaultKind, FaultPlan, Invariant, InvariantPhase, SendVerdict, Violation,
};
pub use churn::{ChurnEvent, ChurnSchedule};
pub use geo::{GeoPoint, PlacedNode, Region};
pub use obs::prof::{EngineProf, EngineProfile, ShardWall, WallProfile};
pub use obs::{
    chrome_trace, chrome_trace_multi, jsonl_trace, jsonl_trace_multi, last_trace_before,
    span_records, span_report, spans, CountingSink, DropReason, Histogram, MetricsRegistry,
    MetricsSnapshot, MsgMeta, NoopSink, RecordingSink, TraceBody, TraceRecord, TraceSink,
};
pub use payload::Shared;
pub use queue::{EventKey, EventQueue, HeapQueue, WheelQueue};
pub use rng::{derive_seed, keyed_unit, sub_rng};
pub use shard::{ShardError, ShardPlan, ShardedSim};
pub use sim::{Application, ComputeKind, Ctx, Payload, PendingClass, PendingSummary, Simulator};
pub use time::{SimDuration, SimTime};
pub use topology::{LatencyModel, NodeIdx, NodeProfile, Topology, BASE_EDGE_FLOPS};
pub use traffic::{TrafficLedger, TrafficTotals};
pub use trial::TrialReport;
