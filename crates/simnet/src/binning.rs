//! Distributed binning and edge-zone formation.
//!
//! Totoro divides its single P2P ring into `m` locality-aware rings ("edge
//! zones"), each characterized by a maximum desired round-trip time called
//! the *diameter* (§4.2). Zone membership is decided with Ratnasamy and
//! Shenker's distributed binning scheme: every node measures its RTT to a
//! small set of well-known landmark nodes, orders the landmarks by
//! increasing RTT, and quantizes each RTT into a latency level. Nodes that
//! produce the same `(ordering, levels)` signature fall into the same bin
//! and are considered topologically close — all without any pairwise
//! measurement or global view.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::topology::{NodeIdx, Topology};

/// A node's distributed-binning signature.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BinSignature {
    /// Landmark indices ordered by increasing RTT from the node.
    pub ordering: Vec<u8>,
    /// Quantized latency level for each landmark, in RTT order.
    pub levels: Vec<u8>,
}

/// Configuration for binning and zone formation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Number of landmark nodes.
    pub num_landmarks: usize,
    /// RTT quantization boundaries in microseconds; `k` boundaries produce
    /// `k + 1` levels.
    pub level_boundaries_us: Vec<u64>,
    /// Maximum number of zones (`m` in the paper). Bins are merged by
    /// signature proximity until at most this many zones remain.
    pub max_zones: usize,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            num_landmarks: 4,
            level_boundaries_us: vec![5_000, 20_000, 60_000],
            max_zones: 16,
        }
    }
}

/// The result of zone formation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZoneAssignment {
    /// Zone id of each node.
    pub zone_of: Vec<u16>,
    /// Number of zones created.
    pub num_zones: usize,
    /// The landmark nodes used.
    pub landmarks: Vec<NodeIdx>,
}

impl ZoneAssignment {
    /// Returns the members of zone `z`.
    pub fn members(&self, z: u16) -> Vec<NodeIdx> {
        self.zone_of
            .iter()
            .enumerate()
            .filter_map(|(i, &zz)| (zz == z).then_some(i))
            .collect()
    }

    /// Returns per-zone member counts.
    pub fn zone_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_zones];
        for &z in &self.zone_of {
            sizes[z as usize] += 1;
        }
        sizes
    }

    /// Trivial single-zone assignment for `n` nodes (no multi-ring).
    pub fn single_zone(n: usize) -> Self {
        ZoneAssignment {
            zone_of: vec![0; n],
            num_zones: 1,
            landmarks: Vec::new(),
        }
    }

    /// Summarizes this assignment as a small plain value suitable for
    /// embedding in a per-trial report.
    pub fn summary(&self) -> ZoneSummary {
        let sizes = self.zone_sizes();
        let smallest = sizes.iter().copied().min().unwrap_or(0);
        let largest = sizes.iter().copied().max().unwrap_or(0);
        ZoneSummary {
            nodes: self.zone_of.len(),
            num_zones: self.num_zones,
            smallest,
            largest,
        }
    }
}

/// Compact zone-formation statistics for one trial.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneSummary {
    /// Number of nodes binned.
    pub nodes: usize,
    /// Number of zones formed.
    pub num_zones: usize,
    /// Smallest zone's member count.
    pub smallest: usize,
    /// Largest zone's member count.
    pub largest: usize,
}

/// Quantizes `value` against ascending `boundaries`: the returned level is
/// the number of boundaries strictly below `value`, so `k` boundaries give
/// levels `0..=k`. This is the binning scheme's RTT quantization, shared
/// with the observability layer's fixed-bin histograms
/// ([`crate::obs::Histogram`]).
pub fn level_of(boundaries: &[u64], value: u64) -> usize {
    boundaries.iter().filter(|&&b| value > b).count()
}

/// Computes a node's binning signature from its RTTs to the landmarks.
pub fn signature(
    topology: &Topology,
    node: NodeIdx,
    landmarks: &[NodeIdx],
    boundaries_us: &[u64],
) -> BinSignature {
    let mut rtts: Vec<(u8, u64)> = landmarks
        .iter()
        .enumerate()
        .map(|(li, &l)| (li as u8, topology.rtt(node, l).as_micros()))
        .collect();
    rtts.sort_by_key(|&(li, rtt)| (rtt, li));
    let ordering: Vec<u8> = rtts.iter().map(|&(li, _)| li).collect();
    let levels: Vec<u8> = rtts
        .iter()
        .map(|&(_, rtt)| level_of(boundaries_us, rtt) as u8)
        .collect();
    BinSignature { ordering, levels }
}

/// Runs distributed binning over the whole topology and merges bins into at
/// most `config.max_zones` zones.
///
/// Landmarks are drawn uniformly at random (in a deployment they would be
/// well-known infrastructure nodes). Bins are merged smallest-first into the
/// zone whose signature shares the longest common ordering prefix, which
/// keeps merged zones topologically coherent.
pub fn assign_zones(
    topology: &Topology,
    config: &BinningConfig,
    rng: &mut StdRng,
) -> ZoneAssignment {
    let n = topology.len();
    assert!(n > 0, "cannot bin an empty topology");
    let num_landmarks = config.num_landmarks.min(n).max(1);
    let mut all: Vec<NodeIdx> = (0..n).collect();
    all.shuffle(rng);
    let landmarks: Vec<NodeIdx> = all[..num_landmarks].to_vec();

    // Group nodes by signature.
    let mut groups: std::collections::BTreeMap<BinSignature, Vec<NodeIdx>> =
        std::collections::BTreeMap::new();
    for node in 0..n {
        let sig = signature(topology, node, &landmarks, &config.level_boundaries_us);
        groups.entry(sig).or_default().push(node);
    }

    // Largest bins become zone seeds; the rest merge into the most similar
    // seed (longest common ordering+levels prefix).
    let mut bins: Vec<(BinSignature, Vec<NodeIdx>)> = groups.into_iter().collect();
    bins.sort_by_key(|(_, members)| std::cmp::Reverse(members.len()));
    let max_zones = config.max_zones.max(1);
    let num_seeds = bins.len().min(max_zones);
    let mut zone_of = vec![0u16; n];
    let seed_sigs: Vec<BinSignature> = bins[..num_seeds].iter().map(|(s, _)| s.clone()).collect();
    for (zi, (_, members)) in bins[..num_seeds].iter().enumerate() {
        for &m in members {
            zone_of[m] = zi as u16;
        }
    }
    for (sig, members) in &bins[num_seeds..] {
        let best = seed_sigs
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| similarity(sig, s))
            .map(|(zi, _)| zi)
            .unwrap_or(0);
        for &m in members {
            zone_of[m] = best as u16;
        }
    }
    ZoneAssignment {
        zone_of,
        num_zones: num_seeds,
        landmarks,
    }
}

/// Similarity between two signatures: twice the length of the common
/// ordering prefix, plus one for each matching level within that prefix.
fn similarity(a: &BinSignature, b: &BinSignature) -> usize {
    let mut score = 0;
    for i in 0..a.ordering.len().min(b.ordering.len()) {
        if a.ordering[i] != b.ordering[i] {
            break;
        }
        score += 2;
        if a.levels.get(i) == b.levels.get(i) {
            score += 1;
        }
    }
    score
}

/// Measures the realized RTT diameter (max intra-zone RTT) of each zone by
/// sampling up to `samples` random member pairs per zone.
pub fn zone_diameters_us(
    topology: &Topology,
    zones: &ZoneAssignment,
    samples: usize,
    rng: &mut StdRng,
) -> Vec<u64> {
    (0..zones.num_zones as u16)
        .map(|z| {
            let members = zones.members(z);
            if members.len() < 2 {
                return 0;
            }
            let mut max_rtt = 0;
            for _ in 0..samples {
                let a = members[rand::Rng::gen_range(rng, 0..members.len())];
                let b = members[rand::Rng::gen_range(rng, 0..members.len())];
                max_rtt = max_rtt.max(topology.rtt(a, b).as_micros());
            }
            max_rtt
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{eua_regions_scaled, generate};
    use crate::rng::sub_rng;
    use crate::topology::LatencyModel;

    fn geo_topology(n: usize, seed: u64) -> Topology {
        let mut rng = sub_rng(seed, "bin-test");
        let nodes = generate(&eua_regions_scaled(n), &mut rng);
        Topology::from_placements(
            &nodes,
            LatencyModel::Geo {
                base_us: 200,
                per_km_us: 10.0,
            },
        )
    }

    #[test]
    fn every_node_gets_a_zone() {
        let t = geo_topology(400, 5);
        let mut rng = sub_rng(5, "assign");
        let zones = assign_zones(&t, &BinningConfig::default(), &mut rng);
        assert_eq!(zones.zone_of.len(), t.len());
        assert!(zones.num_zones >= 1);
        assert!(zones.num_zones <= BinningConfig::default().max_zones);
        assert!(zones
            .zone_of
            .iter()
            .all(|&z| (z as usize) < zones.num_zones));
        let total: usize = zones.zone_sizes().iter().sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn colocated_nodes_share_a_zone() {
        // Two distant clusters must not be merged into one zone.
        let mut rng = sub_rng(6, "cluster");
        let regions = vec![
            crate::geo::Region {
                name: "A".into(),
                center: crate::geo::GeoPoint::new(0.0, 0.0),
                spread_km: 10.0,
                count: 50,
            },
            crate::geo::Region {
                name: "B".into(),
                center: crate::geo::GeoPoint::new(3_000.0, 3_000.0),
                spread_km: 10.0,
                count: 50,
            },
        ];
        let nodes = generate(&regions, &mut rng);
        let t = Topology::from_placements(
            &nodes,
            LatencyModel::Geo {
                base_us: 100,
                per_km_us: 10.0,
            },
        );
        let cfg = BinningConfig {
            num_landmarks: 3,
            level_boundaries_us: vec![2_000, 10_000, 40_000],
            max_zones: 8,
        };
        let zones = assign_zones(&t, &cfg, &mut rng);
        // Nodes within one tight cluster may split across bins (landmark
        // orderings can flip at close RTTs), but no zone may mix nodes from
        // the two distant clusters.
        let zones_a: std::collections::BTreeSet<u16> =
            zones.zone_of[..50].iter().copied().collect();
        let zones_b: std::collections::BTreeSet<u16> =
            zones.zone_of[50..].iter().copied().collect();
        assert!(
            zones_a.is_disjoint(&zones_b),
            "distant clusters were merged: {zones_a:?} vs {zones_b:?}"
        );
    }

    #[test]
    fn signature_orders_landmarks_by_rtt() {
        let t = geo_topology(100, 7);
        let landmarks = vec![0, 1, 2, 3];
        let sig = signature(&t, 50, &landmarks, &[1_000, 10_000]);
        assert_eq!(sig.ordering.len(), 4);
        let rtts: Vec<u64> = sig
            .ordering
            .iter()
            .map(|&li| t.rtt(50, landmarks[li as usize]).as_micros())
            .collect();
        assert!(rtts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn max_zones_is_enforced() {
        let t = geo_topology(600, 8);
        let mut rng = sub_rng(8, "assign");
        let cfg = BinningConfig {
            max_zones: 3,
            ..BinningConfig::default()
        };
        let zones = assign_zones(&t, &cfg, &mut rng);
        assert!(zones.num_zones <= 3);
    }

    #[test]
    fn diameters_are_finite_and_sampled() {
        let t = geo_topology(200, 9);
        let mut rng = sub_rng(9, "diam");
        let zones = assign_zones(&t, &BinningConfig::default(), &mut rng);
        let diam = zone_diameters_us(&t, &zones, 64, &mut rng);
        assert_eq!(diam.len(), zones.num_zones);
    }

    #[test]
    fn single_zone_helper() {
        let z = ZoneAssignment::single_zone(10);
        assert_eq!(z.num_zones, 1);
        assert_eq!(z.members(0).len(), 10);
    }

    #[test]
    fn summary_matches_sizes() {
        let t = geo_topology(300, 11);
        let mut rng = sub_rng(11, "assign");
        let zones = assign_zones(&t, &BinningConfig::default(), &mut rng);
        let s = zones.summary();
        assert_eq!(s.nodes, t.len());
        assert_eq!(s.num_zones, zones.num_zones);
        let sizes = zones.zone_sizes();
        assert_eq!(s.largest, *sizes.iter().max().unwrap());
        assert_eq!(s.smallest, *sizes.iter().min().unwrap());
    }
}
