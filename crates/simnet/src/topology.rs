//! Network topology: per-pair latency, bandwidth, and loss models.
//!
//! Edge links in the paper are "unpredictable and vary stochastically"
//! (§2.2.2). The topology therefore exposes a *distribution* of delays per
//! node pair: a deterministic propagation component derived from geography
//! plus multiplicative jitter, a transmission component derived from the
//! bottleneck bandwidth, and an independent per-message loss probability.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geo::{GeoPoint, PlacedNode};
use crate::time::SimDuration;

/// Index of a node inside a [`Topology`] / simulator.
pub type NodeIdx = usize;

/// Latency model choices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Propagation delay proportional to geographic distance.
    Geo {
        /// Fixed one-way base latency in microseconds (stack + first hop).
        base_us: u64,
        /// Additional one-way microseconds per kilometre of distance.
        per_km_us: f64,
    },
    /// Uniform one-way delay between `min_us` and `max_us`; useful for unit
    /// tests and experiments that do not care about geography.
    Uniform {
        /// Minimum one-way delay, microseconds.
        min_us: u64,
        /// Maximum one-way delay, microseconds.
        max_us: u64,
    },
}

/// Per-node capability class, used for heterogeneity experiments (§7.5).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Uplink/downlink bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Relative compute speed (1.0 = reference edge node); training time is
    /// divided by this factor.
    pub compute_speed: f64,
    /// Number of CPU cores, used by virtual-node mapping.
    pub cores: u32,
}

impl Default for NodeProfile {
    fn default() -> Self {
        NodeProfile {
            bandwidth_bps: 50_000_000, // 50 Mbps
            compute_speed: 1.0,
            cores: 2,
        }
    }
}

/// Reference edge-device compute rate (FLOP/s) at `compute_speed = 1.0`.
/// Shared by every engine in the workspace so training-time charging is
/// identical across compared systems.
pub const BASE_EDGE_FLOPS: f64 = 2.0e8;

impl NodeProfile {
    /// Simulated time this node needs to crunch `flops`.
    pub fn compute_time(&self, flops: u64) -> SimDuration {
        SimDuration::from_secs_f64(flops as f64 / (BASE_EDGE_FLOPS * self.compute_speed.max(1e-6)))
    }
}

/// The immutable network substrate shared by all protocol layers.
#[derive(Clone, Debug)]
pub struct Topology {
    points: Vec<GeoPoint>,
    regions: Vec<u16>,
    profiles: Vec<NodeProfile>,
    latency: LatencyModel,
    /// Multiplicative jitter amplitude: sampled delay is scaled by a factor
    /// drawn uniformly from `[1, 1 + jitter]`.
    jitter: f64,
    /// Probability that any single message is lost in transit.
    loss_prob: f64,
}

impl Topology {
    /// Builds a topology from geographic placements with default profiles.
    pub fn from_placements(nodes: &[PlacedNode], latency: LatencyModel) -> Self {
        Topology {
            points: nodes.iter().map(|n| n.point).collect(),
            regions: nodes.iter().map(|n| n.region).collect(),
            profiles: vec![NodeProfile::default(); nodes.len()],
            latency,
            jitter: 0.2,
            loss_prob: 0.0,
        }
    }

    /// Builds a topology from explicit parts (used e.g. by virtual-node
    /// expansion, which replicates points/profiles).
    pub fn from_parts(
        points: Vec<GeoPoint>,
        regions: Vec<u16>,
        profiles: Vec<NodeProfile>,
        latency: LatencyModel,
    ) -> Self {
        assert_eq!(points.len(), regions.len());
        assert_eq!(points.len(), profiles.len());
        Topology {
            points,
            regions,
            profiles,
            latency,
            jitter: 0.2,
            loss_prob: 0.0,
        }
    }

    /// Builds an `n`-node topology with no geography and a uniform latency
    /// band — the workhorse for protocol unit tests.
    pub fn uniform(n: usize, min_us: u64, max_us: u64) -> Self {
        Topology {
            points: vec![GeoPoint::new(0.0, 0.0); n],
            regions: vec![0; n],
            profiles: vec![NodeProfile::default(); n],
            latency: LatencyModel::Uniform { min_us, max_us },
            jitter: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sets the multiplicative jitter amplitude (0 = deterministic delays).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Sets the independent per-message loss probability.
    pub fn with_loss(mut self, loss_prob: f64) -> Self {
        self.loss_prob = loss_prob.clamp(0.0, 1.0);
        self
    }

    /// Overrides the capability profile of node `i`.
    pub fn set_profile(&mut self, i: NodeIdx, profile: NodeProfile) {
        self.profiles[i] = profile;
    }

    /// Returns the capability profile of node `i`.
    pub fn profile(&self, i: NodeIdx) -> NodeProfile {
        self.profiles[i]
    }

    /// Returns the geographic position of node `i`.
    pub fn point(&self, i: NodeIdx) -> GeoPoint {
        self.points[i]
    }

    /// Returns the region id of node `i`.
    pub fn region(&self, i: NodeIdx) -> u16 {
        self.regions[i]
    }

    /// Deterministic expected one-way propagation delay between two nodes.
    pub fn propagation(&self, a: NodeIdx, b: NodeIdx) -> SimDuration {
        match self.latency {
            LatencyModel::Geo { base_us, per_km_us } => {
                let d = self.points[a].distance_km(&self.points[b]);
                SimDuration::from_micros(base_us.saturating_add((d * per_km_us).round() as u64))
            }
            LatencyModel::Uniform { min_us, max_us } => {
                SimDuration::from_micros(min_us.saturating_add(max_us) / 2)
            }
        }
    }

    /// Deterministic expected round-trip time, used by distributed binning.
    pub fn rtt(&self, a: NodeIdx, b: NodeIdx) -> SimDuration {
        self.propagation(a, b).saturating_mul(2)
    }

    /// Samples the one-way delay for a message of `size_bytes` from `a` to
    /// `b`: propagation (with jitter) plus bottleneck transmission time.
    pub fn sample_delay(
        &self,
        a: NodeIdx,
        b: NodeIdx,
        size_bytes: usize,
        rng: &mut StdRng,
    ) -> SimDuration {
        let prop_us = match self.latency {
            LatencyModel::Geo { base_us, per_km_us } => {
                let d = self.points[a].distance_km(&self.points[b]);
                base_us as f64 + d * per_km_us
            }
            LatencyModel::Uniform { min_us, max_us } => {
                if max_us > min_us {
                    rng.gen_range(min_us..=max_us) as f64
                } else {
                    min_us as f64
                }
            }
        };
        let jitter_factor = if self.jitter > 0.0 {
            1.0 + rng.gen::<f64>() * self.jitter
        } else {
            1.0
        };
        let bw = self.profiles[a]
            .bandwidth_bps
            .min(self.profiles[b].bandwidth_bps)
            .max(1);
        let tx_us = (size_bytes as f64 * 8.0 / bw as f64) * 1_000_000.0;
        // det: allow(time: f64 addition cannot wrap; the sum is rounded into u64 micros, saturating at the f64-to-int cast)
        SimDuration::from_micros(((prop_us * jitter_factor) + tx_us).round() as u64)
    }

    /// Samples whether a message is lost in transit.
    pub fn sample_loss(&self, rng: &mut StdRng) -> bool {
        self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob
    }

    /// Whether [`Topology::sample_delay`] and [`Topology::sample_loss`] are
    /// pure functions that never touch the RNG stream.
    ///
    /// True when jitter is zero, loss is zero, and the latency model has no
    /// stochastic component (`Geo`, or `Uniform` with `min == max`). The
    /// sharded engine ([`crate::shard`]) requires this: per-shard execution
    /// cannot reproduce a single global RNG stream consumed in dispatch
    /// order, so delays must not depend on one.
    pub fn delay_is_deterministic(&self) -> bool {
        let model_fixed = match self.latency {
            LatencyModel::Geo { .. } => true,
            LatencyModel::Uniform { min_us, max_us } => min_us >= max_us,
        };
        model_fixed && self.jitter == 0.0 && self.loss_prob == 0.0
    }

    /// Heap bytes held by the topology's per-node tables (positions,
    /// regions, profiles) — memory accounting for million-node trials.
    pub fn heap_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<GeoPoint>()
            + self.regions.capacity() * std::mem::size_of::<u16>()
            + self.profiles.capacity() * std::mem::size_of::<NodeProfile>()
    }

    /// Number of region ids in use (`max(region) + 1`, 0 when empty).
    pub fn num_regions(&self) -> usize {
        self.regions
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// A lower bound, in simulated time, on the one-way delay of *any*
    /// message between nodes in different regions — the conservative
    /// lookahead used by the sharded engine to size its synchronization
    /// windows.
    ///
    /// Returns `None` when fewer than two regions are populated (no
    /// inter-region message can exist, so no bound is needed).
    ///
    /// The bound is safe because every term added on top of propagation
    /// only increases delay: the jitter factor is `>= 1`, straggler
    /// chaos factors are `>= 1`, transmission time is `>= 0`, and
    /// caller-supplied `extra` delays are `>= 0`. For `Geo` the
    /// inter-node distance is bounded below per region pair by
    /// `center_distance - radius_a - radius_b` over per-region bounding
    /// circles computed from the actual node positions (triangle
    /// inequality), and the result is floored so rounding in
    /// [`Topology::sample_delay`] can never undercut it.
    pub fn min_inter_region_delay(&self) -> Option<SimDuration> {
        let nregions = self.num_regions();
        let mut count = vec![0u64; nregions];
        let mut sum_x = vec![0f64; nregions];
        let mut sum_y = vec![0f64; nregions];
        for (p, &r) in self.points.iter().zip(&self.regions) {
            count[r as usize] += 1;
            sum_x[r as usize] += p.x_km;
            sum_y[r as usize] += p.y_km;
        }
        if count.iter().filter(|&&c| c > 0).count() < 2 {
            return None;
        }
        match self.latency {
            LatencyModel::Uniform { min_us, .. } => Some(SimDuration::from_micros(min_us)),
            LatencyModel::Geo { base_us, per_km_us } => {
                let centers: Vec<GeoPoint> = (0..nregions)
                    .map(|r| {
                        let c = count[r].max(1) as f64;
                        GeoPoint::new(sum_x[r] / c, sum_y[r] / c)
                    })
                    .collect();
                let mut radius = vec![0f64; nregions];
                for (p, &r) in self.points.iter().zip(&self.regions) {
                    let d = p.distance_km(&centers[r as usize]);
                    if d > radius[r as usize] {
                        radius[r as usize] = d;
                    }
                }
                let mut lb_km = f64::INFINITY;
                for a in 0..nregions {
                    if count[a] == 0 {
                        continue;
                    }
                    for b in (a + 1)..nregions {
                        if count[b] == 0 {
                            continue;
                        }
                        let gap =
                            (centers[a].distance_km(&centers[b]) - radius[a] - radius[b]).max(0.0);
                        if gap < lb_km {
                            lb_km = gap;
                        }
                    }
                }
                // det: allow(time: f64 addition cannot wrap; the sum is floored into u64 micros, saturating at the f64-to-int cast)
                Some(SimDuration::from_micros(
                    (base_us as f64 + lb_km * per_km_us.max(0.0)).floor() as u64,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{eua_regions_scaled, generate};
    use crate::rng::sub_rng;

    fn geo_topology(n: usize) -> Topology {
        let mut rng = sub_rng(11, "topo-test");
        let nodes = generate(&eua_regions_scaled(n), &mut rng);
        Topology::from_placements(
            &nodes,
            LatencyModel::Geo {
                base_us: 500,
                per_km_us: 5.0,
            },
        )
    }

    #[test]
    fn propagation_is_symmetric() {
        let t = geo_topology(100);
        for (a, b) in [(0, 1), (5, 50), (10, 99)] {
            assert_eq!(t.propagation(a, b), t.propagation(b, a));
        }
    }

    #[test]
    fn rtt_is_twice_propagation() {
        let t = geo_topology(50);
        assert_eq!(t.rtt(3, 7).as_micros(), 2 * t.propagation(3, 7).as_micros());
    }

    #[test]
    fn nearby_nodes_have_lower_latency_than_far_ones() {
        let t = geo_topology(300);
        // Find an intra-region pair and an inter-region pair.
        let mut intra = None;
        let mut inter = None;
        'outer: for a in 0..t.len() {
            for b in (a + 1)..t.len() {
                if t.region(a) == t.region(b) && intra.is_none() {
                    intra = Some((a, b));
                }
                if t.region(a) != t.region(b)
                    && t.point(a).distance_km(&t.point(b)) > 1_500.0
                    && inter.is_none()
                {
                    inter = Some((a, b));
                }
                if intra.is_some() && inter.is_some() {
                    break 'outer;
                }
            }
        }
        let (ia, ib) = intra.expect("intra-region pair");
        let (xa, xb) = inter.expect("inter-region pair");
        assert!(t.propagation(ia, ib) < t.propagation(xa, xb));
    }

    #[test]
    fn transmission_time_scales_with_size() {
        let t = Topology::uniform(2, 1_000, 1_000);
        let mut rng = sub_rng(1, "tx");
        let small = t.sample_delay(0, 1, 1_000, &mut rng);
        let big = t.sample_delay(0, 1, 10_000_000, &mut rng);
        assert!(big.as_micros() > small.as_micros() + 1_000_000);
    }

    #[test]
    fn jitter_zero_is_deterministic() {
        let t = Topology::uniform(2, 700, 700);
        let mut rng = sub_rng(2, "det");
        let d1 = t.sample_delay(0, 1, 100, &mut rng);
        let d2 = t.sample_delay(0, 1, 100, &mut rng);
        assert_eq!(d1, d2);
    }

    #[test]
    fn loss_probability_is_respected() {
        let t = Topology::uniform(2, 1, 1).with_loss(0.5);
        let mut rng = sub_rng(3, "loss");
        let lost = (0..10_000).filter(|_| t.sample_loss(&mut rng)).count();
        assert!((4_000..6_000).contains(&lost), "lost = {lost}");
        let t0 = Topology::uniform(2, 1, 1);
        assert!(!(0..100).any(|_| t0.sample_loss(&mut rng)));
    }

    #[test]
    fn degenerate_uniform_and_zero_jitter_consume_no_rng() {
        // `Topology::uniform` defaults to jitter 0; with min == max the
        // range draw is skipped too, so sampling must leave the RNG stream
        // untouched. Scenario determinism depends on these fast paths never
        // starting to draw.
        let t = Topology::uniform(2, 700, 700);
        let mut rng = sub_rng(21, "pin");
        let mut untouched = rng.clone();
        for size in [0, 64, 1_000_000] {
            t.sample_delay(0, 1, size, &mut rng);
        }
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    fn geo_zero_jitter_consumes_no_rng() {
        let t = geo_topology(10).with_jitter(0.0);
        let mut rng = sub_rng(22, "pin-geo");
        let mut untouched = rng.clone();
        t.sample_delay(0, 5, 1_024, &mut rng);
        t.sample_delay(5, 9, 64, &mut rng);
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    fn jitter_consumes_exactly_one_draw_per_sample() {
        // Geo scenarios run with jitter 0.2: each sample must consume
        // exactly one `f64` (the jitter factor) — no more, no fewer — or
        // every downstream draw in a trial would shift.
        let t = geo_topology(10); // jitter defaults to 0.2
        let mut rng = sub_rng(23, "pin-jitter");
        let mut shadow = rng.clone();
        let d = t.sample_delay(2, 7, 0, &mut rng);
        let factor = 1.0 + shadow.gen::<f64>() * 0.2;
        // Reconstruct the sample from the shadow stream (size 0 => no tx
        // term), using the same unrounded propagation expression.
        let prop = 500.0 + t.point(2).distance_km(&t.point(7)) * 5.0;
        assert_eq!(d.as_micros(), (prop * factor).round() as u64);
        // And the streams are in lockstep afterwards.
        assert_eq!(rng.gen::<u64>(), shadow.gen::<u64>());
    }

    #[test]
    fn determinism_predicate_matches_rng_usage() {
        assert!(Topology::uniform(4, 700, 700).delay_is_deterministic());
        assert!(!Topology::uniform(4, 100, 200).delay_is_deterministic());
        assert!(!Topology::uniform(4, 1, 1)
            .with_loss(0.1)
            .delay_is_deterministic());
        assert!(geo_topology(20).with_jitter(0.0).delay_is_deterministic());
        assert!(!geo_topology(20).delay_is_deterministic()); // default jitter 0.2
    }

    #[test]
    fn uniform_lookahead_is_min_latency() {
        // `uniform` puts every node in region 0 — no inter-region pairs.
        assert_eq!(
            Topology::uniform(8, 300, 300).min_inter_region_delay(),
            None
        );
        // Two hand-placed regions: bound is exactly min_us.
        let t = Topology::from_parts(
            vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(9.0, 0.0)],
            vec![0, 1],
            vec![NodeProfile::default(); 2],
            LatencyModel::Uniform {
                min_us: 250,
                max_us: 900,
            },
        );
        assert_eq!(
            t.min_inter_region_delay(),
            Some(SimDuration::from_micros(250))
        );
    }

    #[test]
    fn geo_lookahead_never_exceeds_any_inter_region_delay() {
        let t = geo_topology(200).with_jitter(0.0);
        let lb = t
            .min_inter_region_delay()
            .expect("EUA topology has many regions")
            .as_micros();
        assert!(lb >= 500, "bound includes the 500us base");
        let mut rng = sub_rng(31, "lb-check");
        for a in 0..t.len() {
            for b in 0..t.len() {
                if a != b && t.region(a) != t.region(b) {
                    let d = t.sample_delay(a, b, 0, &mut rng).as_micros();
                    assert!(lb <= d, "lookahead {lb} > sampled inter-region delay {d}");
                }
            }
        }
    }

    #[test]
    fn num_regions_counts_max_plus_one() {
        assert_eq!(Topology::uniform(3, 1, 1).num_regions(), 1);
        let t = geo_topology(300);
        assert_eq!(t.num_regions(), 12, "EUA geography has 12 regions");
    }

    #[test]
    fn bottleneck_bandwidth_is_min_of_endpoints() {
        let mut t = Topology::uniform(2, 0, 0);
        t.set_profile(
            0,
            NodeProfile {
                bandwidth_bps: 8_000_000,
                ..NodeProfile::default()
            },
        );
        t.set_profile(
            1,
            NodeProfile {
                bandwidth_bps: 80_000_000,
                ..NodeProfile::default()
            },
        );
        let mut rng = sub_rng(4, "bw");
        // 1 MB over 8 Mbps = 1 second.
        let d = t.sample_delay(0, 1, 1_000_000, &mut rng);
        assert_eq!(d.as_micros(), 1_000_000);
    }
}
