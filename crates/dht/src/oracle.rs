//! Bulk overlay construction and implicit routing.
//!
//! The paper emulates up to 100k nodes and argues O(log N) hops "with
//! millions of nodes". Replaying hundreds of thousands of protocol-level
//! joins is possible but wasteful when an experiment only needs a
//! *converged* overlay; this module constructs the exact post-convergence
//! routing state directly from the global id list ("omniscient"
//! construction), and additionally evaluates greedy routes over an
//! *implicit* perfect overlay without materializing any tables at all —
//! which scales hop-count measurements to millions of ids.
//!
//! Oracle construction is a measurement device only: protocol-level join,
//! maintenance, and repair are implemented in [`crate::node`] and tested
//! against this oracle for agreement.

use rand::rngs::StdRng;
use rand::Rng;

use crate::id::{closest_on_ring, Id, ID_BITS};
use crate::state::{DhtConfig, DhtState};
use crate::table::Contact;

/// Generates `n` distinct random ids.
pub fn random_ids(n: usize, rng: &mut StdRng) -> Vec<Id> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(Id::new(rng.gen::<u128>()));
    }
    set.into_iter().collect()
}

/// Generates ids whose zone prefix encodes the given zone of each node
/// (multi-ring layout, §4.2) and whose suffix is random.
pub fn ids_for_zones(zones: &[u16], zone_bits: u32, rng: &mut StdRng) -> Vec<Id> {
    let mut seen = std::collections::BTreeSet::new();
    zones
        .iter()
        .map(|&z| loop {
            let suffix: u128 = rng.gen::<u128>() & (u128::MAX >> zone_bits.min(127));
            let id = Id::compose(u64::from(z), zone_bits, suffix);
            if seen.insert(id) {
                break id;
            }
        })
        .collect()
}

/// The range of raw id values matching `my_id`'s first `row` digits with
/// digit `row` replaced by `col`; `None` when the row is beyond id width.
fn slot_range(my_id: Id, row: u32, col: u32, b: u32) -> Option<(u128, u128)> {
    let start_bit = row * b;
    if start_bit >= ID_BITS {
        return None;
    }
    let width = b.min(ID_BITS - start_bit);
    if col >= (1 << width) {
        return None;
    }
    let shift = ID_BITS - start_bit - width;
    let high_mask = if start_bit == 0 {
        0
    } else {
        !(u128::MAX >> start_bit)
    };
    let low = (my_id.raw() & high_mask) | (u128::from(col) << shift);
    let high = low | (if shift == 0 { 0 } else { (1u128 << shift) - 1 });
    Some((low, high))
}

/// Builds the fully converged routing state for every node.
///
/// `ids` must be unique (any order); node `i`'s identifier is `ids[i]` and
/// its network address is `i`.
pub fn build_states(ids: &[Id], config: DhtConfig) -> Vec<DhtState> {
    build_states_inner(ids, config, None)
}

/// Like [`build_states`], with Pastry's *proximity neighbor selection*:
/// when several nodes qualify for a routing-table slot, the one with the
/// lowest RTT to the owner is chosen (the locality property Totoro's
/// multi-ring design builds on — nearby hops early in a route keep total
/// route stretch low). Also fills neighborhood sets by measured RTT.
pub fn build_states_with_proximity(
    ids: &[Id],
    config: DhtConfig,
    topology: &totoro_simnet::Topology,
) -> Vec<DhtState> {
    build_states_inner(ids, config, Some(topology))
}

fn build_states_inner(
    ids: &[Id],
    config: DhtConfig,
    topology: Option<&totoro_simnet::Topology>,
) -> Vec<DhtState> {
    let n = ids.len();
    // Ring order with original addresses preserved.
    let mut ring: Vec<(Id, usize)> = ids.iter().copied().zip(0..n).collect();
    ring.sort_unstable();
    assert!(
        ring.windows(2).all(|w| w[0].0 < w[1].0),
        "ids must be unique"
    );
    let pos_of_addr = {
        let mut pos = vec![0usize; n];
        for (p, &(_, addr)) in ring.iter().enumerate() {
            pos[addr] = p;
        }
        pos
    };
    let b = config.base_bits;
    let per_side = (config.leaf_set_size / 2).max(1);
    let mut states = Vec::with_capacity(n);
    for (addr, &my_id) in ids.iter().enumerate() {
        let i = pos_of_addr[addr];
        let mut st = DhtState::new(my_id, addr, config);
        // Leaf set: ring neighbors on each side.
        for k in 1..=per_side.min(n.saturating_sub(1)) {
            let right = (i + k) % n;
            let left = (i + n - k) % n;
            st.leaf_set.consider(Contact {
                id: ring[right].0,
                addr: ring[right].1,
            });
            if left != right {
                st.leaf_set.consider(Contact {
                    id: ring[left].0,
                    addr: ring[left].1,
                });
            }
        }
        // Routing table rows, stopping once this node is alone under its
        // prefix (all deeper rows are necessarily empty).
        'rows: for row in 0..Id::num_digits(b) {
            let my_digit = my_id.digit(row, b);
            for col in 0..(1u32 << b) {
                if col == my_digit {
                    continue;
                }
                if let Some((low, high)) = slot_range(my_id, row, col, b) {
                    let lo = ring.partition_point(|x| x.0.raw() < low);
                    let hi = ring.partition_point(|x| x.0.raw() <= high);
                    if lo >= n || ring[lo].0.raw() > high {
                        continue;
                    }
                    let pick = match topology {
                        // Proximity neighbor selection: the candidate with
                        // the lowest RTT to the owner (bounded scan keeps
                        // construction O(n log n)-ish).
                        Some(topo) => ring[lo..hi]
                            .iter()
                            .take(16)
                            .min_by_key(|&&(_, a)| topo.rtt(addr, a).as_micros())
                            .copied()
                            .expect("non-empty range"),
                        None => ring[lo],
                    };
                    st.routing_table.consider(Contact {
                        id: pick.0,
                        addr: pick.1,
                    });
                }
            }
            // Alone under the first `row + 1` digits?
            if let Some((low, high)) = slot_range(my_id, row, my_digit, b) {
                let lo = ring.partition_point(|x| x.0.raw() < low);
                let hi = ring.partition_point(|x| x.0.raw() <= high);
                if hi - lo <= 1 {
                    break 'rows;
                }
            }
        }
        // Two-level fingers from the leaf+table contacts plus a sample of
        // ring positions (cheap but sufficient for inter-zone coverage).
        let contacts: Vec<Contact> = st
            .routing_table
            .contacts()
            .chain(st.leaf_set.members())
            .collect();
        for c in contacts {
            st.two_level.consider(c);
            if let Some(topo) = topology {
                st.neighborhood
                    .consider(c, topo.rtt(addr, c.addr).as_micros());
            }
        }
        states.push(st);
    }
    states
}

/// Greedy prefix routing over an *implicit* perfect overlay: returns the
/// number of hops from `ids[from]` to the node numerically closest to
/// `key`. `ids` must be sorted. No routing tables are materialized, so this
/// scales to millions of ids.
pub fn implicit_route_hops(ids: &[Id], from: usize, key: Id, b: u32) -> u32 {
    let dest = closest_on_ring(ids, key);
    let mut cur = from;
    let mut hops = 0;
    while cur != dest {
        let cur_id = ids[cur];
        let row = cur_id.shared_prefix_digits(key, b);
        // Ideal prefix step: any node matching one more digit of the key.
        let next = (row < Id::num_digits(b))
            .then(|| {
                let col = key.digit(row, b);
                slot_range(cur_id, row, col, b)
            })
            .flatten()
            .and_then(|(low, high)| {
                let lo = ids.partition_point(|x| x.raw() < low);
                (lo < ids.len() && ids[lo].raw() <= high).then_some(lo)
            });
        cur = match next {
            Some(next) => next,
            // Leaf-set step: jump straight to the destination, exactly what
            // a saturated leaf set resolves in one hop.
            None => dest,
        };
        hops += 1;
        debug_assert!(hops <= 2 * ID_BITS, "implicit routing diverged");
    }
    hops
}

/// Spawns a simulator over `topology` whose nodes run converged DHT state
/// (oracle-built) with upper layers produced by `mk_upper`.
///
/// Node ids are generated deterministically from `seed` (or pass explicit
/// `ids` in any order; `ids[i]` is node `i`'s identifier). Returns the
/// simulator and the per-address id list.
pub fn spawn_overlay<U: crate::node::UpperLayer>(
    topology: totoro_simnet::Topology,
    seed: u64,
    config: DhtConfig,
    ids: Option<Vec<Id>>,
    mk_upper: impl FnMut(usize) -> U,
) -> (totoro_simnet::Simulator<crate::node::DhtNode<U>>, Vec<Id>) {
    spawn_overlay_with_sink(
        topology,
        seed,
        config,
        ids,
        totoro_simnet::NoopSink,
        mk_upper,
    )
}

/// [`spawn_overlay`] with an explicit trace sink installed on the simulator
/// (observability runs; the default [`totoro_simnet::NoopSink`] build pays
/// nothing for this hook).
pub fn spawn_overlay_with_sink<U: crate::node::UpperLayer, S: totoro_simnet::TraceSink>(
    topology: totoro_simnet::Topology,
    seed: u64,
    config: DhtConfig,
    ids: Option<Vec<Id>>,
    sink: S,
    mut mk_upper: impl FnMut(usize) -> U,
) -> (
    totoro_simnet::Simulator<crate::node::DhtNode<U>, S>,
    Vec<Id>,
) {
    let n = topology.len();
    let ids = ids.unwrap_or_else(|| {
        let mut rng = totoro_simnet::sub_rng(seed, "overlay-ids");
        random_ids(n, &mut rng)
    });
    assert_eq!(ids.len(), n, "one id per topology node");
    let states = std::cell::RefCell::new(
        build_states_with_proximity(&ids, config, &topology)
            .into_iter()
            .map(Some)
            .collect::<Vec<_>>(),
    );
    let sim = totoro_simnet::Simulator::with_sink(topology, seed, sink, |i| {
        let st = states.borrow_mut()[i].take().expect("state built once");
        let mut node = crate::node::DhtNode::new(ids[i], i, config, None, mk_upper(i));
        node.state = st;
        node.set_joined();
        node
    });
    (sim, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{next_hop, NextHop};
    use totoro_simnet::sub_rng;

    #[test]
    fn random_ids_are_sorted_unique() {
        let mut rng = sub_rng(1, "oracle");
        let ids = random_ids(500, &mut rng);
        assert_eq!(ids.len(), 500);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ids_for_zones_encode_zone_prefix() {
        let mut rng = sub_rng(2, "oracle");
        let zones = vec![0u16, 3, 7, 3, 1];
        let ids = ids_for_zones(&zones, 8, &mut rng);
        for (id, &z) in ids.iter().zip(&zones) {
            assert_eq!(id.zone(8), u64::from(z));
        }
    }

    #[test]
    fn slot_range_covers_exactly_matching_prefix() {
        let me = Id::new(0xAB00_0000_0000_0000_0000_0000_0000_0000);
        let (low, high) = slot_range(me, 1, 0xC, 4).unwrap();
        assert_eq!(low, 0xAC00_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(high, 0xACFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF);
        assert!(slot_range(me, 32, 0, 4).is_none());
    }

    #[test]
    fn bulk_states_route_to_global_closest() {
        let mut rng = sub_rng(3, "oracle");
        let ids = random_ids(256, &mut rng);
        let states = build_states(&ids, DhtConfig::default());
        for trial in 0..40 {
            let key = Id::new(rng.gen::<u128>());
            let mut cur = trial % ids.len();
            let mut hops = 0;
            loop {
                match next_hop(&states[cur], key) {
                    NextHop::Deliver => break,
                    NextHop::Forward(c) => cur = c.addr,
                }
                hops += 1;
                assert!(hops < 64, "diverged");
            }
            assert_eq!(cur, closest_on_ring(&ids, key), "wrong destination");
        }
    }

    #[test]
    fn bulk_states_hops_are_logarithmic() {
        let mut rng = sub_rng(4, "oracle");
        let ids = random_ids(1_024, &mut rng);
        let states = build_states(&ids, DhtConfig::default());
        let mut total_hops = 0u32;
        let trials = 100;
        for trial in 0..trials {
            let key = Id::new(rng.gen::<u128>());
            let mut cur = trial % ids.len();
            let mut hops = 0;
            loop {
                match next_hop(&states[cur], key) {
                    NextHop::Deliver => break,
                    NextHop::Forward(c) => cur = c.addr,
                }
                hops += 1;
            }
            total_hops += hops;
        }
        let mean = f64::from(total_hops) / trials as f64;
        // ceil(log_16(1024)) = 3; allow slack for leaf-set last steps.
        assert!(mean <= 4.5, "mean hops too high: {mean}");
    }

    #[test]
    fn implicit_routing_matches_destination_and_log_bound() {
        let mut rng = sub_rng(5, "oracle");
        let ids = random_ids(4_096, &mut rng);
        for trial in 0..50 {
            let key = Id::new(rng.gen::<u128>());
            let hops = implicit_route_hops(&ids, trial % ids.len(), key, 4);
            // log_16(4096) = 3, plus at most one leaf hop.
            assert!(hops <= 5, "hops = {hops}");
        }
    }

    #[test]
    fn implicit_routing_zero_hops_when_source_is_destination() {
        let mut rng = sub_rng(6, "oracle");
        let ids = random_ids(64, &mut rng);
        let key = ids[10];
        assert_eq!(implicit_route_hops(&ids, 10, key, 4), 0);
    }

    #[test]
    fn leaf_sets_hold_ring_neighbors() {
        let mut rng = sub_rng(7, "oracle");
        let ids = random_ids(100, &mut rng);
        let states = build_states(&ids, DhtConfig::default());
        for (i, st) in states.iter().enumerate() {
            assert_eq!(
                st.leaf_set.successor().map(|c| c.addr),
                Some((i + 1) % ids.len())
            );
            assert_eq!(
                st.leaf_set.predecessor().map(|c| c.addr),
                Some((i + ids.len() - 1) % ids.len())
            );
        }
    }
}
