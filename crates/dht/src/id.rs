//! 128-bit identifiers for the circular NodeId space.
//!
//! Each edge node owns a unique 128-bit NodeId in a circular space (§4.2).
//! Prefix routing interprets an id as a string of base-`2^b` digits, most
//! significant first; the paper configures tree fanouts 8/16/32 by setting
//! the routing base bits `b` to 3/4/5. For the multi-ring structure the top
//! `m` bits of an id are the *zone id* and the remainder is the suffix
//! within the zone: `D = P * 2^n + S`.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Total bits in an identifier.
pub const ID_BITS: u32 = 128;

/// A 128-bit identifier on the circular NodeId/key space.
///
/// # Examples
///
/// ```
/// use totoro_dht::Id;
///
/// // Prefix digits in base 2^4 (fanout-16 routing).
/// let id = Id::new(0xAB00_0000_0000_0000_0000_0000_0000_0000);
/// assert_eq!(id.digit(0, 4), 0xA);
/// assert_eq!(id.digit(1, 4), 0xB);
///
/// // The multi-ring layout: zone prefix + suffix.
/// let in_zone_3 = Id::compose(3, 8, 0xFEED);
/// assert_eq!(in_zone_3.zone(8), 3);
/// assert_eq!(in_zone_3.suffix(8), 0xFEED);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Id(pub u128);

impl Id {
    /// The zero identifier.
    pub const ZERO: Id = Id(0);

    /// Builds an id from a raw value.
    pub const fn new(v: u128) -> Self {
        Id(v)
    }

    /// Raw value.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Number of base-`2^b` digits in an id (the last digit may be narrower
    /// when `b` does not divide 128).
    pub fn num_digits(b: u32) -> u32 {
        ID_BITS.div_ceil(b)
    }

    /// Extracts digit `i` (0 = most significant) in base `2^b`.
    pub fn digit(self, i: u32, b: u32) -> u32 {
        debug_assert!((1..=8).contains(&b), "digit width out of range");
        let start = i * b;
        debug_assert!(start < ID_BITS);
        let width = b.min(ID_BITS - start);
        let shift = ID_BITS - start - width;
        ((self.0 >> shift) & ((1u128 << width) - 1)) as u32
    }

    /// Returns a copy of `self` with digit `i` (base `2^b`) replaced by `d`.
    pub fn with_digit(self, i: u32, b: u32, d: u32) -> Id {
        let start = i * b;
        let width = b.min(ID_BITS - start);
        let shift = ID_BITS - start - width;
        let mask = ((1u128 << width) - 1) << shift;
        Id((self.0 & !mask) | ((u128::from(d) << shift) & mask))
    }

    /// Length (in digits, base `2^b`) of the longest common prefix of two
    /// ids. Equal ids share all digits.
    pub fn shared_prefix_digits(self, other: Id, b: u32) -> u32 {
        if self == other {
            return Self::num_digits(b);
        }
        let diff_bit = (self.0 ^ other.0).leading_zeros();
        diff_bit / b
    }

    /// Distance on the circular id space: `min(|a-b|, 2^128 - |a-b|)`.
    pub fn ring_distance(self, other: Id) -> u128 {
        let d = self.0.wrapping_sub(other.0);
        d.min(d.wrapping_neg())
    }

    /// Clockwise distance from `self` to `other` (how far `other` is ahead).
    pub fn clockwise_distance(self, other: Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the half-open clockwise arc `(from, to]`.
    pub fn in_arc(self, from: Id, to: Id) -> bool {
        if from == to {
            // Whole-ring arc.
            return true;
        }
        from.clockwise_distance(self) <= from.clockwise_distance(to) && self != from
    }

    /// The zone id: the top `zone_bits` bits of the identifier.
    pub fn zone(self, zone_bits: u32) -> u64 {
        if zone_bits == 0 {
            return 0;
        }
        (self.0 >> (ID_BITS - zone_bits)) as u64
    }

    /// The suffix within the zone: the low `128 - zone_bits` bits.
    pub fn suffix(self, zone_bits: u32) -> u128 {
        if zone_bits == 0 {
            return self.0;
        }
        self.0 & (u128::MAX >> zone_bits)
    }

    /// Composes an id from a zone id and an intra-zone suffix:
    /// `D = P * 2^n + S` with `n = 128 - zone_bits` (§4.2).
    pub fn compose(zone: u64, zone_bits: u32, suffix: u128) -> Id {
        if zone_bits == 0 {
            return Id(suffix);
        }
        let n = ID_BITS - zone_bits;
        let p = (u128::from(zone) & ((1u128 << zone_bits) - 1)) << n;
        Id(p | (suffix & (u128::MAX >> zone_bits)))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:032x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Finds the index of the id in `sorted` numerically closest to `key` on the
/// ring. `sorted` must be sorted ascending and non-empty. Ties are broken
/// toward the smaller id, matching the deterministic rendezvous rule used
/// for tree roots.
pub fn closest_on_ring(sorted: &[Id], key: Id) -> usize {
    debug_assert!(!sorted.is_empty());
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let i = sorted.partition_point(|id| id.0 < key.0);
    // Candidates: predecessor and successor (with wraparound).
    let succ = i % sorted.len();
    let pred = (i + sorted.len() - 1) % sorted.len();
    let ds = sorted[succ].ring_distance(key);
    let dp = sorted[pred].ring_distance(key);
    match ds.cmp(&dp) {
        std::cmp::Ordering::Less => succ,
        std::cmp::Ordering::Greater => pred,
        std::cmp::Ordering::Equal => {
            if sorted[succ].0 <= sorted[pred].0 {
                succ
            } else {
                pred
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_round_trip_for_all_bases() {
        let id = Id::new(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978);
        for b in 1..=8 {
            let digits: Vec<u32> = (0..Id::num_digits(b)).map(|i| id.digit(i, b)).collect();
            // Rebuild the id from digits.
            let mut rebuilt = Id::ZERO;
            for (i, &d) in digits.iter().enumerate() {
                rebuilt = rebuilt.with_digit(i as u32, b, d);
            }
            assert_eq!(rebuilt, id, "base 2^{b}");
        }
    }

    #[test]
    fn num_digits_matches_paper_bases() {
        assert_eq!(Id::num_digits(3), 43); // fanout 8
        assert_eq!(Id::num_digits(4), 32); // fanout 16
        assert_eq!(Id::num_digits(5), 26); // fanout 32
    }

    #[test]
    fn first_digit_is_most_significant() {
        let id = Id::new(0xF000_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.digit(0, 4), 0xF);
        assert_eq!(id.digit(1, 4), 0);
    }

    #[test]
    fn shared_prefix_counts_digits() {
        let a = Id::new(0xAB00_0000_0000_0000_0000_0000_0000_0000);
        let b4 = Id::new(0xAB10_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_digits(b4, 4), 2);
        assert_eq!(a.shared_prefix_digits(a, 4), 32);
        let c = Id::new(0x0B00_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_digits(c, 4), 0);
    }

    #[test]
    fn ring_distance_is_symmetric_and_wraps() {
        let a = Id::new(5);
        let b = Id::new(u128::MAX - 4); // 10 apart across the wrap
        assert_eq!(a.ring_distance(b), 10);
        assert_eq!(b.ring_distance(a), 10);
        assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn arcs_wrap_correctly() {
        let a = Id::new(10);
        let b = Id::new(20);
        assert!(Id::new(15).in_arc(a, b));
        assert!(!Id::new(25).in_arc(a, b));
        // Wrapping arc (20, 10]: 25 and 5 are inside, 15 is not.
        assert!(Id::new(25).in_arc(b, a));
        assert!(Id::new(5).in_arc(b, a));
        assert!(!Id::new(15).in_arc(b, a));
    }

    #[test]
    fn zone_compose_round_trips() {
        for zone_bits in [0u32, 4, 8, 16] {
            let zone = 0b1010u64 & ((1 << zone_bits.min(4)) - 1);
            let suffix = 0x1234_5678_9abc_def0u128;
            let id = Id::compose(zone, zone_bits, suffix);
            assert_eq!(id.zone(zone_bits), zone, "zone_bits={zone_bits}");
            assert_eq!(id.suffix(zone_bits), suffix, "zone_bits={zone_bits}");
        }
    }

    #[test]
    fn compose_matches_paper_formula() {
        // D = P * 2^n + S.
        let zone_bits = 8;
        let n = 128 - zone_bits;
        let p = 0x42u64;
        let s = 0xdead_beefu128;
        let id = Id::compose(p, zone_bits, s);
        assert_eq!(id.raw(), (u128::from(p) << n) + s);
    }

    #[test]
    fn closest_on_ring_picks_nearest() {
        let sorted = vec![Id::new(10), Id::new(100), Id::new(1_000)];
        assert_eq!(closest_on_ring(&sorted, Id::new(12)), 0);
        assert_eq!(closest_on_ring(&sorted, Id::new(90)), 1);
        assert_eq!(closest_on_ring(&sorted, Id::new(999)), 2);
        // Wraparound: u128::MAX is closest to 10.
        assert_eq!(closest_on_ring(&sorted, Id::new(u128::MAX)), 0);
        // Exact hit.
        assert_eq!(closest_on_ring(&sorted, Id::new(100)), 1);
    }

    #[test]
    fn closest_on_ring_tie_breaks_to_smaller_id() {
        let sorted = vec![Id::new(10), Id::new(20)];
        // 15 is equidistant; smaller id wins.
        assert_eq!(closest_on_ring(&sorted, Id::new(15)), 0);
    }
}
