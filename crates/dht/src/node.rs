//! The DHT protocol node: join, routing, maintenance, failure detection.
//!
//! A [`DhtNode`] implements [`totoro_simnet::Application`] and carries an
//! [`UpperLayer`] (the pub/sub forest in the full stack). The upper layer
//! sees three primitives, mirroring what FreePastry offered the original
//! implementation: key-based routing with per-hop interception (the hook
//! Scribe trees are built on), direct messages, and failure notifications.

use std::collections::HashMap; // det: allow(unordered: import only; every declaration and construction site below carries its own proof)

use totoro_simnet::{ComputeKind, Ctx, NodeIdx, Payload, Shared, SimDuration, SimTime};

use crate::id::Id;
use crate::routing::{next_hop, NextHop};
use crate::state::{DhtConfig, DhtState};
use crate::table::Contact;
use crate::two_level::BoundaryDecision;

/// Timer tokens at or above this value belong to the upper layer; the DHT
/// reserves the space below.
pub const UPPER_TIMER_BASE: u64 = 1 << 32;

const TIMER_MAINTENANCE: u64 = 0;
/// Wire-size estimate of one serialized contact (id + address + port).
const CONTACT_WIRE_BYTES: usize = 24;
/// Wire-size estimate of fixed message headers.
const HEADER_BYTES: usize = 32;
/// Routing hop budget; exceeding it forces local delivery (defensive).
const MAX_HOPS: u16 = 192;

/// Messages exchanged by DHT nodes. `P` is the upper layer's payload.
#[derive(Clone, Debug)]
pub enum DhtMsg<P> {
    /// A joining node's request, routed toward its own id; every hop
    /// contributes routing-table rows.
    Join {
        /// The joining node.
        joiner: Contact,
        /// Contacts collected along the join path.
        collected: Vec<Contact>,
        /// Hops taken so far.
        hops: u16,
    },
    /// The numerically-closest node's reply to a joiner.
    JoinReply {
        /// Contacts for seeding the joiner's state (rows + leaf set).
        contacts: Vec<Contact>,
        /// The responding node.
        responder: Contact,
    },
    /// A newcomer announcing itself so peers fold it into their tables.
    Announce {
        /// The announcing node.
        contact: Contact,
    },
    /// Periodic liveness beacon to leaf-set members.
    Heartbeat {
        /// The sender.
        from: Contact,
    },
    /// Periodic leaf-set gossip for convergence and post-failure refill.
    LeafExchange {
        /// The sender.
        from: Contact,
        /// The sender's current leaf-set members, shared across the whole
        /// gossip fan-out (every member receives the same snapshot).
        members: Shared<Vec<Contact>>,
    },
    /// Key-routed upper-layer payload.
    Route {
        /// Destination key.
        key: Id,
        /// Address of the originating node.
        origin: NodeIdx,
        /// Hops taken so far.
        hops: u16,
        /// Whether the payload must not leave its origin zone (§4.2
        /// administrative isolation).
        zone_restricted: bool,
        /// Upper-layer payload.
        payload: P,
    },
    /// Direct (non-routed) upper-layer payload.
    Direct {
        /// Upper-layer payload.
        payload: P,
    },
}

impl<P: Payload> Payload for DhtMsg<P> {
    fn size_bytes(&self) -> usize {
        match self {
            DhtMsg::Join { collected, .. } => {
                HEADER_BYTES + (collected.len() + 1) * CONTACT_WIRE_BYTES
            }
            DhtMsg::JoinReply { contacts, .. } => {
                HEADER_BYTES + (contacts.len() + 1) * CONTACT_WIRE_BYTES
            }
            DhtMsg::Announce { .. } => HEADER_BYTES + CONTACT_WIRE_BYTES,
            DhtMsg::Heartbeat { .. } => HEADER_BYTES + CONTACT_WIRE_BYTES,
            DhtMsg::LeafExchange { members, .. } => {
                HEADER_BYTES + (members.len() + 1) * CONTACT_WIRE_BYTES
            }
            DhtMsg::Route { payload, .. } => HEADER_BYTES + 16 + payload.size_bytes(),
            DhtMsg::Direct { payload } => HEADER_BYTES + payload.size_bytes(),
        }
    }

    // Control traffic is DHT-layer; routed/direct envelopes tag as the
    // wrapped upper-layer payload, which is the interesting message.
    fn layer(&self) -> &'static str {
        match self {
            DhtMsg::Route { payload, .. } => payload.layer(),
            DhtMsg::Direct { payload } => payload.layer(),
            _ => "dht",
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            DhtMsg::Join { .. } => "join",
            DhtMsg::JoinReply { .. } => "join_reply",
            DhtMsg::Announce { .. } => "announce",
            DhtMsg::Heartbeat { .. } => "heartbeat",
            DhtMsg::LeafExchange { .. } => "leaf_exchange",
            DhtMsg::Route { payload, .. } => payload.kind(),
            DhtMsg::Direct { payload } => payload.kind(),
        }
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct DhtStats {
    /// Route messages originated by this node.
    pub routed: u64,
    /// Route messages delivered at this node.
    pub delivered: u64,
    /// Route messages forwarded through this node.
    pub forwarded: u64,
    /// Packets blocked at a zone boundary.
    pub blocked: u64,
    /// Sum of hop counts over delivered messages.
    pub hops_sum: u64,
    /// Maximum hop count observed on a delivered message.
    pub hops_max: u16,
    /// Leaf-set peers declared failed.
    pub peers_failed: u64,
}

/// The interface the DHT exposes to its upper layer during callbacks.
pub struct DhtApi<'a, 'b, P: Payload> {
    /// The node's routing state (read access is common; mutation is for
    /// maintenance logic).
    pub state: &'a mut DhtState,
    stats: &'a mut DhtStats,
    ctx: &'a mut Ctx<'b, DhtMsg<P>>,
    pending_local: &'a mut Vec<(Id, NodeIdx, P)>,
}

impl<P: Payload> DhtApi<'_, '_, P> {
    /// This node's ring id.
    pub fn id(&self) -> Id {
        self.state.id()
    }

    /// This node's network address.
    pub fn addr(&self) -> NodeIdx {
        self.state.addr()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The shared network topology (read-only).
    pub fn topology(&self) -> &totoro_simnet::Topology {
        self.ctx.topology()
    }

    /// The node's deterministic random stream.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    /// Charges simulated compute time (see [`ComputeKind`]).
    pub fn charge_compute(&mut self, kind: ComputeKind, amount: SimDuration) {
        self.ctx.charge_compute(kind, amount);
    }

    /// Arms an upper-layer timer; it will surface as
    /// [`UpperLayer::on_timer`] with the same `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.ctx.set_timer(delay, token + UPPER_TIMER_BASE);
    }

    /// Routes `payload` toward `key`. If this node is itself the closest,
    /// the payload is delivered locally (asynchronously, after the current
    /// callback returns). Returns `false` if the packet was blocked at the
    /// zone boundary.
    pub fn route(&mut self, key: Id, payload: P, zone_restricted: bool) -> bool {
        if zone_restricted
            && self.state.two_level.boundary_check(key, true) == BoundaryDecision::Block
        {
            self.stats.blocked += 1;
            return false;
        }
        self.stats.routed += 1;
        let decision = if zone_restricted {
            crate::routing::next_hop_in_zone(self.state, key, self.state.zone())
        } else {
            next_hop(self.state, key)
        };
        match decision {
            NextHop::Deliver => {
                let me = self.state.addr();
                self.pending_local.push((key, me, payload));
            }
            NextHop::Forward(c) => {
                self.ctx.send(
                    c.addr,
                    DhtMsg::Route {
                        key,
                        origin: self.state.addr(),
                        hops: 1,
                        zone_restricted,
                        payload,
                    },
                );
            }
        }
        true
    }

    /// Sends `payload` directly to a known peer address (no routing).
    pub fn send_direct(&mut self, to: NodeIdx, payload: P) {
        self.ctx.send(to, DhtMsg::Direct { payload });
    }

    /// Like [`DhtApi::send_direct`] with an extra local processing delay
    /// before the message enters the network (models local compute such as
    /// training before an upload).
    pub fn send_direct_after(&mut self, to: NodeIdx, payload: P, extra: SimDuration) {
        self.ctx.send_after(to, DhtMsg::Direct { payload }, extra);
    }
}

/// Behaviour layered on top of the DHT (e.g. the pub/sub forest).
pub trait UpperLayer: Sized {
    /// The payload type carried inside [`DhtMsg::Route`] / [`DhtMsg::Direct`].
    type P: Payload;

    /// Invoked once at node start (before any join completes).
    fn on_start(&mut self, api: &mut DhtApi<'_, '_, Self::P>) {
        let _ = api;
    }

    /// Invoked when the node revives after an outage. Timers that fired
    /// while the node was down were silently discarded, so any upper-layer
    /// self-perpetuating timer chain (e.g. the forest maintenance tick) is
    /// dead and must be re-armed here — otherwise the revived node keeps
    /// its layered state but never again runs maintenance on it.
    fn on_up(&mut self, api: &mut DhtApi<'_, '_, Self::P>) {
        let _ = api;
    }

    /// A routed payload reached the node numerically closest to `key`.
    fn on_deliver(
        &mut self,
        api: &mut DhtApi<'_, '_, Self::P>,
        key: Id,
        origin: NodeIdx,
        payload: Self::P,
    );

    /// A routed payload is about to be forwarded to `next`; `prev` is the
    /// previous hop. Return `false` to consume the message here instead —
    /// the hook Scribe-style tree construction relies on. The payload may
    /// be mutated in place (e.g. to re-write the subscribing child).
    fn on_forward(
        &mut self,
        api: &mut DhtApi<'_, '_, Self::P>,
        key: Id,
        prev: NodeIdx,
        payload: &mut Self::P,
        next: Contact,
    ) -> bool {
        let _ = (api, key, prev, payload, next);
        true
    }

    /// A direct payload arrived from `from`.
    fn on_direct(&mut self, api: &mut DhtApi<'_, '_, Self::P>, from: NodeIdx, payload: Self::P);

    /// An upper-layer timer armed via [`DhtApi::set_timer`] fired.
    fn on_timer(&mut self, api: &mut DhtApi<'_, '_, Self::P>, token: u64) {
        let _ = (api, token);
    }

    /// The DHT declared the peer at `addr` failed (missed heartbeats).
    fn on_peer_failed(&mut self, api: &mut DhtApi<'_, '_, Self::P>, addr: NodeIdx) {
        let _ = (api, addr);
    }

    /// Approximate upper-layer state size in bytes (Figure 13b).
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Maintenance knobs.
#[derive(Clone, Copy, Debug)]
pub struct MaintenanceConfig {
    /// Interval between heartbeat/maintenance ticks.
    pub heartbeat_interval: SimDuration,
    /// A leaf peer silent for this many intervals is declared failed.
    pub failure_after_ticks: u32,
    /// Every this many ticks, gossip the leaf set to leaf members.
    pub gossip_every_ticks: u32,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            heartbeat_interval: SimDuration::from_secs(2),
            failure_after_ticks: 3,
            gossip_every_ticks: 4,
        }
    }
}

/// A DHT node with upper layer `U`, runnable on the simulator.
pub struct DhtNode<U: UpperLayer> {
    /// Routing state.
    pub state: DhtState,
    /// The layered application.
    pub upper: U,
    /// Protocol counters.
    pub stats: DhtStats,
    maintenance: MaintenanceConfig,
    bootstrap: Option<NodeIdx>,
    joined: bool,
    tick: u64,
    // det: allow(unordered: keyed insert/remove/contains/entry by peer address only; liveness sweeps iterate the ordered leaf set and probe this map per key, so hash order never decides any protocol step)
    last_seen: HashMap<NodeIdx, SimTime>,
    pending_local: Vec<(Id, NodeIdx, U::P)>,
}

impl<U: UpperLayer> DhtNode<U> {
    /// Creates a node. `bootstrap` is the address of an existing overlay
    /// member (or `None` for the first node, or when state is bulk-built).
    pub fn new(
        id: Id,
        addr: NodeIdx,
        config: DhtConfig,
        bootstrap: Option<NodeIdx>,
        upper: U,
    ) -> Self {
        DhtNode {
            state: DhtState::new(id, addr, config),
            upper,
            stats: DhtStats::default(),
            maintenance: MaintenanceConfig::default(),
            bootstrap,
            joined: bootstrap.is_none(),
            tick: 0,
            last_seen: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            pending_local: Vec::new(),
        }
    }

    /// Overrides maintenance parameters.
    pub fn with_maintenance(mut self, m: MaintenanceConfig) -> Self {
        self.maintenance = m;
        self
    }

    /// Marks the node as already joined (used after bulk construction).
    pub fn set_joined(&mut self) {
        self.joined = true;
    }

    /// Whether the node completed its join.
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Mean hops over messages delivered at this node.
    pub fn mean_delivery_hops(&self) -> f64 {
        if self.stats.delivered == 0 {
            0.0
        } else {
            self.stats.hops_sum as f64 / self.stats.delivered as f64
        }
    }

    fn api<'a, 'b>(
        state: &'a mut DhtState,
        stats: &'a mut DhtStats,
        pending_local: &'a mut Vec<(Id, NodeIdx, U::P)>,
        ctx: &'a mut Ctx<'b, DhtMsg<U::P>>,
    ) -> DhtApi<'a, 'b, U::P> {
        DhtApi {
            state,
            stats,
            ctx,
            pending_local,
        }
    }

    /// Runs `f` with an upper-layer API view, then drains local deliveries.
    pub fn with_api<R>(
        &mut self,
        ctx: &mut Ctx<'_, DhtMsg<U::P>>,
        f: impl FnOnce(&mut U, &mut DhtApi<'_, '_, U::P>) -> R,
    ) -> R {
        let r = {
            let mut api = Self::api(
                &mut self.state,
                &mut self.stats,
                &mut self.pending_local,
                ctx,
            );
            f(&mut self.upper, &mut api)
        };
        self.drain_local(ctx);
        r
    }

    fn drain_local(&mut self, ctx: &mut Ctx<'_, DhtMsg<U::P>>) {
        while let Some((key, origin, payload)) = self.pending_local.pop() {
            self.note_delivery(0);
            let mut api = Self::api(
                &mut self.state,
                &mut self.stats,
                &mut self.pending_local,
                ctx,
            );
            self.upper.on_deliver(&mut api, key, origin, payload);
        }
    }

    fn note_delivery(&mut self, hops: u16) {
        self.stats.delivered += 1;
        self.stats.hops_sum += u64::from(hops);
        self.stats.hops_max = self.stats.hops_max.max(hops);
    }

    fn measured_rtt_us(ctx: &Ctx<'_, DhtMsg<U::P>>, me: NodeIdx, peer: NodeIdx) -> u64 {
        ctx.topology().rtt(me, peer).as_micros()
    }

    fn learn(&mut self, ctx: &Ctx<'_, DhtMsg<U::P>>, c: Contact) {
        if c.addr == self.state.addr() {
            return;
        }
        let rtt = Self::measured_rtt_us(ctx, self.state.addr(), c.addr);
        let was_leaf = self.state.leaf_set.members().any(|m| m.addr == c.addr);
        self.state.add_contact(c, Some(rtt));
        let is_leaf = self.state.leaf_set.members().any(|m| m.addr == c.addr);
        if is_leaf && !was_leaf {
            self.last_seen.insert(c.addr, ctx.now());
        }
    }

    fn start_maintenance(&mut self, ctx: &mut Ctx<'_, DhtMsg<U::P>>) {
        ctx.set_timer(self.maintenance.heartbeat_interval, TIMER_MAINTENANCE);
    }

    fn maintenance_tick(&mut self, ctx: &mut Ctx<'_, DhtMsg<U::P>>) {
        self.tick += 1;
        let now = ctx.now();
        let me = self.state.contact();

        // Declare silent leaf peers failed.
        let timeout = self
            .maintenance
            .heartbeat_interval
            .saturating_mul(u64::from(self.maintenance.failure_after_ticks));
        let leafs: Vec<Contact> = self.state.leaf_set.members().collect();
        let mut failed: Vec<NodeIdx> = Vec::new();
        for c in &leafs {
            let seen = *self.last_seen.entry(c.addr).or_insert(now);
            if now.saturating_since(seen) > timeout {
                failed.push(c.addr);
            }
        }
        for addr in failed {
            self.state.remove_addr(addr);
            self.last_seen.remove(&addr);
            self.stats.peers_failed += 1;
            let mut api = Self::api(
                &mut self.state,
                &mut self.stats,
                &mut self.pending_local,
                ctx,
            );
            self.upper.on_peer_failed(&mut api, addr);
        }
        self.drain_local(ctx);

        // Heartbeat surviving leaf members; occasionally gossip leaf sets.
        let gossip = self
            .tick
            .is_multiple_of(u64::from(self.maintenance.gossip_every_ticks.max(1)));
        let members: Vec<Contact> = self.state.leaf_set.members().collect();
        let count = members.len();
        if gossip {
            // One shared snapshot for the whole fan-out: each member's copy
            // of the gossip is a reference-count bump, not a Vec clone.
            let members = Shared::new(members);
            for i in 0..count {
                ctx.send(
                    members[i].addr,
                    DhtMsg::LeafExchange {
                        from: me,
                        members: members.clone(),
                    },
                );
            }
        } else {
            for c in &members {
                ctx.send(c.addr, DhtMsg::Heartbeat { from: me });
            }
        }
        ctx.charge_compute(
            ComputeKind::DhtTask,
            SimDuration::from_micros((2 * count as u64).saturating_add(20)),
        );
        self.start_maintenance(ctx);
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the Route message fields.
    fn handle_route(
        &mut self,
        ctx: &mut Ctx<'_, DhtMsg<U::P>>,
        prev: NodeIdx,
        key: Id,
        origin: NodeIdx,
        hops: u16,
        zone_restricted: bool,
        mut payload: U::P,
    ) {
        ctx.charge_compute(ComputeKind::DhtTask, SimDuration::from_micros(15));
        if zone_restricted
            && self.state.two_level.boundary_check(key, true) == BoundaryDecision::Block
        {
            // The previous hop leaked a restricted packet toward a foreign
            // zone; the boundary administrator drops it (§4.2).
            self.stats.blocked += 1;
            return;
        }
        let decision = if hops >= MAX_HOPS {
            NextHop::Deliver
        } else if zone_restricted {
            crate::routing::next_hop_in_zone(&self.state, key, self.state.zone())
        } else {
            next_hop(&self.state, key)
        };
        match decision {
            NextHop::Deliver => {
                self.note_delivery(hops);
                let mut api = Self::api(
                    &mut self.state,
                    &mut self.stats,
                    &mut self.pending_local,
                    ctx,
                );
                self.upper.on_deliver(&mut api, key, origin, payload);
                self.drain_local(ctx);
            }
            NextHop::Forward(c) => {
                let cont = {
                    let mut api = Self::api(
                        &mut self.state,
                        &mut self.stats,
                        &mut self.pending_local,
                        ctx,
                    );
                    self.upper.on_forward(&mut api, key, prev, &mut payload, c)
                };
                self.drain_local(ctx);
                if cont {
                    self.stats.forwarded += 1;
                    ctx.send(
                        c.addr,
                        DhtMsg::Route {
                            key,
                            origin,
                            hops: hops + 1,
                            zone_restricted,
                            payload,
                        },
                    );
                }
            }
        }
    }
}

impl<U: UpperLayer> totoro_simnet::Application for DhtNode<U> {
    type Msg = DhtMsg<U::P>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(boot) = self.bootstrap {
            ctx.send(
                boot,
                DhtMsg::Join {
                    joiner: self.state.contact(),
                    collected: Vec::new(),
                    hops: 0,
                },
            );
        }
        self.start_maintenance(ctx);
        let mut api = Self::api(
            &mut self.state,
            &mut self.stats,
            &mut self.pending_local,
            ctx,
        );
        self.upper.on_start(&mut api);
        self.drain_local(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeIdx, msg: Self::Msg) {
        if self.last_seen.contains_key(&from) {
            self.last_seen.insert(from, ctx.now());
        }
        match msg {
            DhtMsg::Join {
                joiner,
                mut collected,
                hops,
            } => {
                ctx.charge_compute(ComputeKind::DhtTask, SimDuration::from_micros(40));
                // Contribute the row the joiner will index at our shared
                // prefix depth, plus ourselves.
                let row = self
                    .state
                    .id()
                    .shared_prefix_digits(joiner.id, self.state.config().base_bits);
                collected.extend(self.state.routing_table.row(row as usize));
                collected.push(self.state.contact());
                let decision = next_hop(&self.state, joiner.id);
                // Learn about the joiner only after routing, so the join
                // message never short-circuits into the joiner itself.
                self.learn(ctx, joiner);
                match decision {
                    NextHop::Deliver => {
                        collected.extend(self.state.leaf_set.members());
                        ctx.send(
                            joiner.addr,
                            DhtMsg::JoinReply {
                                contacts: collected,
                                responder: self.state.contact(),
                            },
                        );
                    }
                    NextHop::Forward(c) => {
                        if c.addr == joiner.addr {
                            // We already knew the joiner (re-join after an
                            // outage): answer directly instead.
                            collected.extend(self.state.leaf_set.members());
                            ctx.send(
                                joiner.addr,
                                DhtMsg::JoinReply {
                                    contacts: collected,
                                    responder: self.state.contact(),
                                },
                            );
                        } else {
                            ctx.send(
                                c.addr,
                                DhtMsg::Join {
                                    joiner,
                                    collected,
                                    hops: hops + 1,
                                },
                            );
                        }
                    }
                }
            }
            DhtMsg::JoinReply {
                contacts,
                responder,
            } => {
                self.learn(ctx, responder);
                for c in contacts {
                    self.learn(ctx, c);
                }
                self.joined = true;
                // Announce to everyone we learned so they fold us in.
                let me = self.state.contact();
                let peers: Vec<NodeIdx> = {
                    let mut v: Vec<NodeIdx> = self.state.known_contacts().map(|c| c.addr).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                for addr in peers {
                    ctx.send(addr, DhtMsg::Announce { contact: me });
                }
            }
            DhtMsg::Announce { contact } => {
                self.learn(ctx, contact);
            }
            DhtMsg::Heartbeat { from } => {
                self.learn(ctx, from);
                self.last_seen.insert(from.addr, ctx.now());
            }
            DhtMsg::LeafExchange { from, members } => {
                self.learn(ctx, from);
                self.last_seen.insert(from.addr, ctx.now());
                for &c in members.iter() {
                    self.learn(ctx, c);
                }
            }
            DhtMsg::Route {
                key,
                origin,
                hops,
                zone_restricted,
                payload,
            } => {
                self.handle_route(ctx, from, key, origin, hops, zone_restricted, payload);
            }
            DhtMsg::Direct { payload } => {
                let mut api = Self::api(
                    &mut self.state,
                    &mut self.stats,
                    &mut self.pending_local,
                    ctx,
                );
                self.upper.on_direct(&mut api, from, payload);
                self.drain_local(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64) {
        if token >= UPPER_TIMER_BASE {
            let mut api = Self::api(
                &mut self.state,
                &mut self.stats,
                &mut self.pending_local,
                ctx,
            );
            self.upper.on_timer(&mut api, token - UPPER_TIMER_BASE);
            self.drain_local(ctx);
        } else if token == TIMER_MAINTENANCE {
            self.maintenance_tick(ctx);
        }
    }

    fn on_send_failed(&mut self, ctx: &mut Ctx<'_, Self::Msg>, peer: NodeIdx) {
        // Transport-level failure (the paper's substrate reacts to broken
        // TCP connections): purge the peer from all routing structures and
        // tell the upper layer so trees can repair immediately.
        if self.state.remove_addr(peer) {
            self.last_seen.remove(&peer);
            self.stats.peers_failed += 1;
        }
        let mut api = Self::api(
            &mut self.state,
            &mut self.stats,
            &mut self.pending_local,
            ctx,
        );
        self.upper.on_peer_failed(&mut api, peer);
        self.drain_local(ctx);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        // Timers were discarded during the outage: re-arm maintenance and
        // re-announce so peers refresh us.
        self.start_maintenance(ctx);
        if !self.joined {
            // The outage swallowed the initial join: retry it.
            if let Some(boot) = self.bootstrap {
                ctx.send(
                    boot,
                    DhtMsg::Join {
                        joiner: self.state.contact(),
                        collected: Vec::new(),
                        hops: 0,
                    },
                );
            }
        }
        let me = self.state.contact();
        let peers: Vec<NodeIdx> = self.state.leaf_set.members().map(|c| c.addr).collect();
        for addr in peers {
            ctx.send(addr, DhtMsg::Announce { contact: me });
        }
        let mut api = Self::api(
            &mut self.state,
            &mut self.stats,
            &mut self.pending_local,
            ctx,
        );
        self.upper.on_up(&mut api);
        self.drain_local(ctx);
    }

    fn memory_bytes(&self) -> usize {
        self.state.memory_bytes()
            + self.upper.memory_bytes()
            + self.last_seen.len() * std::mem::size_of::<(NodeIdx, SimTime)>()
    }
}
