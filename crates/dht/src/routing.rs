//! The prefix-routing decision procedure.
//!
//! Pastry-style greedy routing (§4.2): a message for `key` is delivered to
//! the live node whose id is numerically closest to `key`. Each step either
//! (1) resolves within the leaf set, (2) follows the routing-table entry
//! that extends the shared prefix by one digit, or (3) falls back to any
//! known node that is strictly closer to the key without shortening the
//! prefix — guaranteeing progress, hence termination, in
//! `⌈log_{2^b} N⌉ + O(1)` expected hops.

use crate::id::Id;
use crate::state::DhtState;
use crate::table::Contact;

/// The routing decision for one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// This node is (as far as it can tell) the numerically closest live
    /// node: deliver locally.
    Deliver,
    /// Forward to this contact.
    Forward(Contact),
}

/// Computes the next hop for `key` from `state`.
pub fn next_hop(state: &DhtState, key: Id) -> NextHop {
    next_hop_filtered(state, key, None)
}

/// Computes the next hop for a zone-restricted packet: only contacts inside
/// `zone` are eligible forwarding targets, guaranteeing path convergence
/// within the edge site (§4.2). The key itself must live in `zone`.
pub fn next_hop_in_zone(state: &DhtState, key: Id, zone: u64) -> NextHop {
    next_hop_filtered(state, key, Some(zone))
}

fn next_hop_filtered(state: &DhtState, key: Id, zone: Option<u64>) -> NextHop {
    let me = state.id();
    if key == me {
        return NextHop::Deliver;
    }
    let zone_bits = state.config().zone_bits;
    let in_zone =
        |id: Id| -> bool { zone.is_none_or(|z| zone_bits == 0 || id.zone(zone_bits) == z) };

    // (1) Leaf-set resolution: if the key falls inside the leaf-set arc, the
    // closest eligible node in {leafs} ∪ {me} is the destination.
    if state.leaf_set.covers(key) {
        match state.leaf_set.closest_to(key) {
            None => return NextHop::Deliver,
            Some(c) if in_zone(c.id) => return NextHop::Forward(c),
            Some(_) => {} // Closest leaf is foreign: fall through to (3).
        }
    }

    // (2) Prefix step.
    if let Some(c) = state.routing_table.entry_for(key) {
        if in_zone(c.id) {
            return NextHop::Forward(c);
        }
    }

    // (3) Rare case: no eligible entry — take any known eligible contact
    // that shares at least as long a prefix with the key and is strictly
    // numerically closer.
    let b = state.routing_table.base_bits();
    let my_prefix = me.shared_prefix_digits(key, b);
    let my_dist = me.ring_distance(key);
    let best = state
        .known_contacts()
        .filter(|c| in_zone(c.id))
        .filter(|c| c.id.shared_prefix_digits(key, b) >= my_prefix)
        .filter(|c| {
            let d = c.id.ring_distance(key);
            d < my_dist || (d == my_dist && c.id < me)
        })
        .min_by_key(|c| (c.id.ring_distance(key), c.id));
    match best {
        Some(c) => NextHop::Forward(c),
        None => NextHop::Deliver,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DhtConfig, DhtState};

    fn mk_state(id: u128, b: u32) -> DhtState {
        DhtState::new(
            Id::new(id),
            0,
            DhtConfig {
                base_bits: b,
                leaf_set_size: 8,
                neighborhood_size: 4,
                zone_bits: 0,
            },
        )
    }

    fn c(id: u128, addr: usize) -> Contact {
        Contact {
            id: Id::new(id),
            addr,
        }
    }

    #[test]
    fn delivers_to_self_for_own_id() {
        let state = mk_state(500, 4);
        assert_eq!(next_hop(&state, Id::new(500)), NextHop::Deliver);
    }

    #[test]
    fn empty_state_delivers_everything() {
        let state = mk_state(500, 4);
        assert_eq!(next_hop(&state, Id::new(12345)), NextHop::Deliver);
    }

    #[test]
    fn leaf_set_resolves_nearby_keys() {
        let mut state = mk_state(1_000, 4);
        state.add_contact(c(900, 1), None);
        state.add_contact(c(1_100, 2), None);
        assert_eq!(next_hop(&state, Id::new(920)), NextHop::Forward(c(900, 1)));
        assert_eq!(next_hop(&state, Id::new(1_002)), NextHop::Deliver);
    }

    #[test]
    fn prefix_step_extends_shared_prefix() {
        let top = 124;
        let me = 0x1u128 << top;
        let mut state = mk_state(me, 4);
        let peer = c(0x7u128 << top, 9);
        state.add_contact(peer, None);
        // Key far outside the leaf arc with first digit 7.
        let key = Id::new(0x70_00_00u128 << (top - 20));
        match next_hop(&state, key) {
            NextHop::Forward(f) => assert_eq!(f, peer),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn fallback_moves_strictly_closer() {
        // Routing table slot for the key's digit is empty, but a known node
        // is closer: the fallback must pick it rather than deliver.
        let me = 0u128;
        let mut state = mk_state(me, 4);
        // Fill the leaf set so its arc does NOT cover the key region.
        for i in 1..=4u128 {
            state.add_contact(c(i, i as usize), None);
            state.add_contact(c(u128::MAX - i + 1, 100 + i as usize), None);
        }
        let key = Id::new(0x0123_4567u128 << 64);
        // A contact close to the key but whose routing-table slot collides
        // with an already-occupied one... construct directly: both contacts
        // share digit prefix with key.
        let near = c(0x0123_0000u128 << 64, 7);
        state.routing_table.consider(near);
        let hop = next_hop(&state, key);
        assert_eq!(hop, NextHop::Forward(near));
    }

    #[test]
    fn progress_is_monotone_under_greedy_routing() {
        // Simulate routing across a random static ring where every node
        // knows a perfect state; distance to the key must never increase.
        use rand::Rng;
        let mut rng = totoro_simnet::sub_rng(42, "routing-test");
        let n = 64;
        let b = 4;
        let ids: Vec<Id> = (0..n).map(|_| Id::new(rng.gen::<u128>())).collect();
        let mut states: Vec<DhtState> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut s = mk_state(id.raw(), b);
                s.set_addr(i);
                s
            })
            .collect();
        for (i, st) in states.iter_mut().enumerate() {
            for (j, &id) in ids.iter().enumerate() {
                if i != j {
                    st.add_contact(Contact { id, addr: j }, None);
                }
            }
        }
        for trial in 0..50 {
            let key = Id::new(rng.gen::<u128>());
            let mut cur = trial % n;
            let mut hops = 0;
            loop {
                match next_hop(&states[cur], key) {
                    NextHop::Deliver => break,
                    NextHop::Forward(c) => {
                        let before = ids[cur].ring_distance(key);
                        let after = c.id.ring_distance(key);
                        assert!(
                            after < before || (after == before && c.id < ids[cur]),
                            "hop failed to make progress"
                        );
                        cur = c.addr;
                    }
                }
                hops += 1;
                assert!(hops <= 2 * n, "routing did not terminate");
            }
            // Destination must be the globally closest node.
            let mut sorted = ids.clone();
            sorted.sort();
            let want = sorted[crate::id::closest_on_ring(&sorted, key)];
            assert_eq!(ids[cur], want, "delivered to a non-closest node");
        }
    }
}
