//! Boundary-aware two-level routing table (§4.2, innovation 2).
//!
//! Standard DHTs optimize search paths without regard to administrative
//! boundaries, so a packet can traverse a foreign edge site whenever that
//! site holds a node with a longer matching prefix. Totoro instead splits
//! every NodeId into an `m`-bit zone prefix `P` and an `n`-bit suffix `S`
//! (`D = P * 2^n + S`) and gives every node two finger tables:
//!
//! * **Level 1** — `m` entries; entry `i` targets zone
//!   `(P_x + 2^(i-1)) mod 2^m`, enabling O(log m) greedy routing *between*
//!   zones.
//! * **Level 2** — `n` entries; entry `i` targets suffix
//!   `(S_y + 2^(i-1)) mod 2^n`, enabling greedy routing *within* a zone.
//!
//! Administrators achieve isolation by checking a packet's destination zone
//! prefix at the boundary: if it differs from the local zone and the
//! application is zone-restricted, the packet is blocked before leaving.

use serde::{Deserialize, Serialize};

use crate::id::{Id, ID_BITS};
use crate::table::Contact;

/// Outcome of a boundary check on a routed packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundaryDecision {
    /// The packet may proceed.
    Allow,
    /// The packet targets a foreign zone and the application is restricted
    /// to its home zone: the administrator blocks it (§4.2).
    Block,
}

/// The two-level finger table of one node.
#[derive(Clone, Debug)]
pub struct TwoLevelTable {
    my_id: Id,
    zone_bits: u32,
    /// Level-1 fingers: `level1[i]` holds a contact in zone
    /// `(P + 2^i) mod 2^m` (`i` is zero-based; the paper's `i` is one-based).
    level1: Vec<Option<Contact>>,
    /// Level-2 fingers: `level2[i]` holds a same-zone contact whose suffix
    /// is the first known at or clockwise-after `(S + 2^i) mod 2^n`.
    level2: Vec<Option<Contact>>,
}

impl TwoLevelTable {
    /// Creates an empty table for `my_id` with `zone_bits` = `m`.
    pub fn new(my_id: Id, zone_bits: u32) -> Self {
        assert!(
            zone_bits < ID_BITS,
            "zone bits must leave room for suffixes"
        );
        let n = ID_BITS - zone_bits;
        TwoLevelTable {
            my_id,
            zone_bits,
            level1: vec![None; zone_bits as usize],
            level2: vec![None; n as usize],
        }
    }

    /// The number of zone bits `m`.
    pub fn zone_bits(&self) -> u32 {
        self.zone_bits
    }

    /// The owner's zone id.
    pub fn my_zone(&self) -> u64 {
        self.my_id.zone(self.zone_bits)
    }

    /// Offers a contact for both levels. Returns `true` if stored anywhere.
    pub fn consider(&mut self, c: Contact) -> bool {
        if c.id == self.my_id {
            return false;
        }
        let mut stored = false;
        let m = self.zone_bits;
        if m > 0 && c.id.zone(m) != self.my_zone() {
            // Level 1: find which finger interval the contact's zone falls
            // into: interval i covers zones [P + 2^i, P + 2^(i+1)).
            let gap = zone_cw_dist(self.my_zone(), c.id.zone(m), m);
            debug_assert!(gap > 0);
            let i = (63 - gap.leading_zeros()) as usize; // floor(log2(gap))
            if i < self.level1.len() {
                let my_zone = self.my_zone();
                let slot = &mut self.level1[i];
                let replace = match slot {
                    None => true,
                    // Prefer the contact nearest the interval start.
                    Some(old) => gap < zone_cw_dist(my_zone, old.id.zone(m), m),
                };
                if replace {
                    *slot = Some(c);
                    stored = true;
                }
            }
        } else {
            // Level 2: same-zone contact keyed by suffix distance.
            let n = ID_BITS - m;
            let gap = suffix_cw_dist(self.my_id.suffix(m), c.id.suffix(m), n);
            if gap > 0 {
                let i = (127 - gap.leading_zeros()) as usize;
                if i < self.level2.len() {
                    let slot = &mut self.level2[i];
                    let replace = match slot {
                        None => true,
                        Some(old) => {
                            gap < suffix_cw_dist(self.my_id.suffix(m), old.id.suffix(m), n)
                        }
                    };
                    if replace {
                        *slot = Some(c);
                        stored = true;
                    }
                }
            }
        }
        stored
    }

    /// Removes all fingers pointing at `addr`. Returns how many.
    pub fn remove_addr(&mut self, addr: totoro_simnet::NodeIdx) -> usize {
        let mut removed = 0;
        for slot in self.level1.iter_mut().chain(self.level2.iter_mut()) {
            if slot.map(|c| c.addr) == Some(addr) {
                *slot = None;
                removed += 1;
            }
        }
        removed
    }

    /// Greedy inter-zone step: the level-1 finger that makes the most
    /// clockwise progress toward `target_zone` without overshooting it.
    pub fn next_hop_toward_zone(&self, target_zone: u64) -> Option<Contact> {
        let m = self.zone_bits;
        if m == 0 || target_zone == self.my_zone() {
            return None;
        }
        let budget = zone_cw_dist(self.my_zone(), target_zone, m);
        self.level1
            .iter()
            .flatten()
            .filter(|c| {
                let prog = zone_cw_dist(self.my_zone(), c.id.zone(m), m);
                prog > 0 && prog <= budget
            })
            .max_by_key(|c| zone_cw_dist(self.my_zone(), c.id.zone(m), m))
            .copied()
    }

    /// Greedy intra-zone step: the level-2 finger that makes the most
    /// clockwise suffix progress toward `key` without overshooting.
    pub fn next_hop_toward_suffix(&self, key: Id) -> Option<Contact> {
        let m = self.zone_bits;
        let n = ID_BITS - m;
        let budget = suffix_cw_dist(self.my_id.suffix(m), key.suffix(m), n);
        if budget == 0 {
            return None;
        }
        self.level2
            .iter()
            .flatten()
            .filter(|c| {
                let prog = suffix_cw_dist(self.my_id.suffix(m), c.id.suffix(m), n);
                prog > 0 && prog <= budget
            })
            .max_by_key(|c| suffix_cw_dist(self.my_id.suffix(m), c.id.suffix(m), n))
            .copied()
    }

    /// The administrator's boundary check for a packet destined to `key`:
    /// blocked iff the application is `zone_restricted` and `key` lives in a
    /// foreign zone.
    pub fn boundary_check(&self, key: Id, zone_restricted: bool) -> BoundaryDecision {
        if zone_restricted && self.zone_bits > 0 && key.zone(self.zone_bits) != self.my_zone() {
            BoundaryDecision::Block
        } else {
            BoundaryDecision::Allow
        }
    }

    /// Iterates over all populated fingers (both levels).
    pub fn contacts(&self) -> impl Iterator<Item = Contact> + '_ {
        self.level1
            .iter()
            .chain(self.level2.iter())
            .filter_map(|s| *s)
    }

    /// Approximate memory footprint in bytes (for Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        (self.level1.len() + self.level2.len()) * std::mem::size_of::<Option<Contact>>()
    }
}

/// Clockwise distance on the `2^m`-zone ring.
fn zone_cw_dist(from: u64, to: u64, m: u32) -> u64 {
    debug_assert!(m <= 63);
    let modulus = 1u64 << m;
    (to.wrapping_sub(from)) & (modulus - 1)
}

/// Clockwise distance on the `2^n`-suffix ring.
fn suffix_cw_dist(from: u128, to: u128, n: u32) -> u128 {
    if n >= 128 {
        to.wrapping_sub(from)
    } else {
        (to.wrapping_sub(from)) & ((1u128 << n) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: u32 = 4; // 16 zones

    fn id_in_zone(zone: u64, suffix: u128) -> Id {
        Id::compose(zone, M, suffix)
    }

    fn contact(zone: u64, suffix: u128, addr: usize) -> Contact {
        Contact {
            id: id_in_zone(zone, suffix),
            addr,
        }
    }

    #[test]
    fn level1_fingers_fill_exponential_intervals() {
        let me = id_in_zone(0, 100);
        let mut t = TwoLevelTable::new(me, M);
        assert!(t.consider(contact(1, 0, 1))); // gap 1 -> finger 0
        assert!(t.consider(contact(2, 0, 2))); // gap 2 -> finger 1
        assert!(t.consider(contact(5, 0, 3))); // gap 5 -> finger 2
        assert!(t.consider(contact(9, 0, 4))); // gap 9 -> finger 3
        assert_eq!(t.contacts().count(), 4);
    }

    #[test]
    fn level1_prefers_interval_start() {
        let me = id_in_zone(0, 0);
        let mut t = TwoLevelTable::new(me, M);
        assert!(t.consider(contact(7, 0, 1))); // finger 2 covers zones 4..8
        assert!(t.consider(contact(4, 0, 2))); // closer to 4: replaces
        let f: Vec<u64> = t.contacts().map(|c| c.id.zone(M)).collect();
        assert!(f.contains(&4) && !f.contains(&7));
    }

    #[test]
    fn interzone_greedy_never_overshoots() {
        let me = id_in_zone(0, 0);
        let mut t = TwoLevelTable::new(me, M);
        t.consider(contact(1, 0, 1));
        t.consider(contact(2, 0, 2));
        t.consider(contact(4, 0, 3));
        t.consider(contact(8, 0, 4));
        // Target zone 5: best non-overshooting finger is zone 4.
        let hop = t.next_hop_toward_zone(5).unwrap();
        assert_eq!(hop.id.zone(M), 4);
        // Target zone 15: zone 8 is the farthest finger.
        assert_eq!(t.next_hop_toward_zone(15).unwrap().id.zone(M), 8);
        // Target own zone: no inter-zone hop.
        assert!(t.next_hop_toward_zone(0).is_none());
    }

    #[test]
    fn interzone_routing_converges_in_log_hops() {
        // Build a full 16-zone ring where every zone has one node that knows
        // perfect fingers; greedy hop count must be <= m.
        let nodes: Vec<Contact> = (0..16).map(|z| contact(z, 0, z as usize)).collect();
        let tables: Vec<TwoLevelTable> = nodes
            .iter()
            .map(|me| {
                let mut t = TwoLevelTable::new(me.id, M);
                for c in &nodes {
                    t.consider(*c);
                }
                t
            })
            .collect();
        for start in 0..16u64 {
            for target in 0..16u64 {
                let mut cur = start;
                let mut hops = 0;
                while cur != target {
                    let hop = tables[cur as usize]
                        .next_hop_toward_zone(target)
                        .expect("greedy step exists");
                    cur = hop.id.zone(M);
                    hops += 1;
                    assert!(hops <= M, "too many inter-zone hops");
                }
            }
        }
    }

    #[test]
    fn level2_routes_within_zone() {
        let me = id_in_zone(3, 0);
        let mut t = TwoLevelTable::new(me, M);
        t.consider(contact(3, 1 << 10, 1));
        t.consider(contact(3, 1 << 50, 2));
        let hop = t
            .next_hop_toward_suffix(id_in_zone(3, (1 << 50) + 5))
            .unwrap();
        assert_eq!(hop.addr, 2);
        // Key behind all fingers: nearest small finger.
        let hop2 = t
            .next_hop_toward_suffix(id_in_zone(3, (1 << 10) + 1))
            .unwrap();
        assert_eq!(hop2.addr, 1);
        // Key equal to own suffix: delivered locally.
        assert!(t.next_hop_toward_suffix(me).is_none());
    }

    #[test]
    fn boundary_check_blocks_foreign_zone_when_restricted() {
        let me = id_in_zone(2, 7);
        let t = TwoLevelTable::new(me, M);
        let foreign = id_in_zone(5, 7);
        let local = id_in_zone(2, 99);
        assert_eq!(t.boundary_check(foreign, true), BoundaryDecision::Block);
        assert_eq!(t.boundary_check(foreign, false), BoundaryDecision::Allow);
        assert_eq!(t.boundary_check(local, true), BoundaryDecision::Allow);
    }

    #[test]
    fn remove_addr_clears_fingers() {
        let me = id_in_zone(0, 0);
        let mut t = TwoLevelTable::new(me, M);
        t.consider(contact(1, 0, 9));
        t.consider(contact(0, 500, 9));
        assert_eq!(t.remove_addr(9), 2);
        assert_eq!(t.contacts().count(), 0);
    }

    #[test]
    fn zone_distance_wraps() {
        assert_eq!(zone_cw_dist(14, 2, 4), 4);
        assert_eq!(zone_cw_dist(2, 14, 4), 12);
        assert_eq!(zone_cw_dist(5, 5, 4), 0);
    }
}
