//! # totoro-dht
//!
//! A from-scratch Pastry-style DHT implementing Totoro's Layer 1: the
//! locality-aware P2P multi-ring structure (§4.2 of the paper).
//!
//! * [`id`] — the 128-bit circular identifier space, digit arithmetic for
//!   base-`2^b` prefix routing, and zone-prefix composition.
//! * [`hash`] — SHA-1 (from the FIPS spec) for deriving NodeIds and AppIds.
//! * [`table`] — the three per-node structures: routing table, leaf set,
//!   neighborhood set.
//! * [`two_level`] — the boundary-aware two-level routing table that gives
//!   administrative isolation across edge zones.
//! * [`routing`] — the greedy prefix-routing decision procedure.
//! * [`node`] — the protocol node (join, maintenance, failure detection,
//!   key routing with per-hop interception for the pub/sub layer).
//! * [`oracle`] — omniscient overlay construction and implicit routing for
//!   large-scale hop-count experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod id;
pub mod node;
pub mod oracle;
pub mod routing;
pub mod state;
pub mod table;
pub mod two_level;

pub use hash::{app_id, id_from_bytes, node_id, sha1};
pub use id::{closest_on_ring, Id, ID_BITS};
pub use node::{
    DhtApi, DhtMsg, DhtNode, DhtStats, MaintenanceConfig, UpperLayer, UPPER_TIMER_BASE,
};
pub use oracle::{
    build_states, build_states_with_proximity, ids_for_zones, implicit_route_hops, random_ids,
    spawn_overlay, spawn_overlay_with_sink,
};
pub use routing::{next_hop, next_hop_in_zone, NextHop};
pub use state::{DhtConfig, DhtState};
pub use table::{Contact, LeafSet, NeighborhoodSet, RoutingTable};
pub use two_level::{BoundaryDecision, TwoLevelTable};
