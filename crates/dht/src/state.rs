//! Aggregate per-node DHT state.

use serde::{Deserialize, Serialize};
use totoro_simnet::NodeIdx;

use crate::id::Id;
use crate::table::{Contact, LeafSet, NeighborhoodSet, RoutingTable};
use crate::two_level::TwoLevelTable;

/// Static DHT parameters shared by all nodes of an overlay.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DhtConfig {
    /// Routing base bits `b`; the routing table has `2^b` columns and trees
    /// built over the overlay have fanout `2^b` (paper: 3, 4, or 5).
    pub base_bits: u32,
    /// Total leaf-set capacity (paper configures 24).
    pub leaf_set_size: usize,
    /// Neighborhood-set capacity.
    pub neighborhood_size: usize,
    /// Zone-prefix bits `m` of the multi-ring structure (0 = single ring).
    pub zone_bits: u32,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            base_bits: 4,
            leaf_set_size: 24,
            neighborhood_size: 16,
            zone_bits: 0,
        }
    }
}

impl DhtConfig {
    /// Tree fanout implied by the routing base (`2^b`).
    pub fn fanout(&self) -> usize {
        1 << self.base_bits
    }

    /// Config preset with the given tree fanout (must be a power of two).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout.is_power_of_two() && fanout >= 2);
        DhtConfig {
            base_bits: fanout.trailing_zeros(),
            ..DhtConfig::default()
        }
    }
}

/// The complete routing state of one DHT node.
#[derive(Clone, Debug)]
pub struct DhtState {
    id: Id,
    addr: NodeIdx,
    config: DhtConfig,
    /// Prefix routing table (§4.2 "routing table").
    pub routing_table: RoutingTable,
    /// Ring neighbors (§4.2 "leaf set").
    pub leaf_set: LeafSet,
    /// Physically nearest peers (§4.2 "neighborhood set").
    pub neighborhood: NeighborhoodSet,
    /// Boundary-aware two-level finger table (§4.2 innovation 2).
    pub two_level: TwoLevelTable,
}

impl DhtState {
    /// Creates empty state for a node with identifier `id` at address
    /// `addr`.
    pub fn new(id: Id, addr: NodeIdx, config: DhtConfig) -> Self {
        DhtState {
            id,
            addr,
            config,
            routing_table: RoutingTable::new(id, config.base_bits),
            leaf_set: LeafSet::new(id, config.leaf_set_size),
            neighborhood: NeighborhoodSet::new(config.neighborhood_size),
            two_level: TwoLevelTable::new(id, config.zone_bits),
        }
    }

    /// The node's ring identifier.
    pub fn id(&self) -> Id {
        self.id
    }

    /// The node's network address.
    pub fn addr(&self) -> NodeIdx {
        self.addr
    }

    /// Updates the network address (used by tests and bulk construction).
    pub fn set_addr(&mut self, addr: NodeIdx) {
        self.addr = addr;
    }

    /// The overlay configuration.
    pub fn config(&self) -> DhtConfig {
        self.config
    }

    /// This node as a [`Contact`].
    pub fn contact(&self) -> Contact {
        Contact {
            id: self.id,
            addr: self.addr,
        }
    }

    /// The node's zone on the multi-ring structure.
    pub fn zone(&self) -> u64 {
        self.id.zone(self.config.zone_bits)
    }

    /// Offers a contact to every applicable data structure. `rtt_us`, when
    /// known, also feeds the neighborhood set.
    pub fn add_contact(&mut self, c: Contact, rtt_us: Option<u64>) {
        if c.id == self.id {
            return;
        }
        self.routing_table.consider(c);
        self.leaf_set.consider(c);
        self.two_level.consider(c);
        if let Some(rtt) = rtt_us {
            self.neighborhood.consider(c, rtt);
        }
    }

    /// Removes a failed peer from every data structure. Returns `true` if
    /// the peer was known anywhere.
    pub fn remove_addr(&mut self, addr: NodeIdx) -> bool {
        let a = self.routing_table.remove_addr(addr) > 0;
        let b = self.leaf_set.remove_addr(addr);
        let c = self.neighborhood.remove_addr(addr);
        let d = self.two_level.remove_addr(addr) > 0;
        a || b || c || d
    }

    /// Iterates over every known contact (all structures, may repeat).
    pub fn known_contacts(&self) -> impl Iterator<Item = Contact> + '_ {
        self.routing_table
            .contacts()
            .chain(self.leaf_set.members())
            .chain(self.neighborhood.members())
            .chain(self.two_level.contacts())
    }

    /// Approximate memory footprint of all routing state, in bytes
    /// (Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        self.routing_table.memory_bytes()
            + self.leaf_set.memory_bytes()
            + self.neighborhood.memory_bytes()
            + self.two_level.memory_bytes()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_presets_match_paper() {
        assert_eq!(DhtConfig::with_fanout(8).base_bits, 3);
        assert_eq!(DhtConfig::with_fanout(16).base_bits, 4);
        assert_eq!(DhtConfig::with_fanout(32).base_bits, 5);
        assert_eq!(DhtConfig::with_fanout(32).fanout(), 32);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_fanout_panics() {
        let _ = DhtConfig::with_fanout(12);
    }

    #[test]
    fn add_contact_populates_all_structures() {
        let mut s = DhtState::new(Id::new(1_000), 0, DhtConfig::default());
        let c = Contact {
            id: Id::new(2_000),
            addr: 5,
        };
        s.add_contact(c, Some(300));
        assert!(!s.routing_table.is_empty());
        assert!(!s.leaf_set.is_empty());
        assert!(!s.neighborhood.is_empty());
        assert!(s.remove_addr(5));
        assert!(!s.remove_addr(5));
        assert!(s.leaf_set.is_empty());
    }

    #[test]
    fn self_contact_is_ignored() {
        let mut s = DhtState::new(Id::new(1), 0, DhtConfig::default());
        s.add_contact(s.contact(), Some(1));
        assert_eq!(s.known_contacts().count(), 0);
    }

    #[test]
    fn memory_accounting_is_positive_and_grows() {
        let mut s = DhtState::new(Id::new(1), 0, DhtConfig::default());
        let base = s.memory_bytes();
        for i in 2..100u128 {
            s.add_contact(
                Contact {
                    id: Id::new(i << 64),
                    addr: i as usize,
                },
                Some(i as u64),
            );
        }
        assert!(s.memory_bytes() > base);
    }
}
