//! SHA-1 and id derivation.
//!
//! AppIds are "the cryptographic hash of the application's textual name, the
//! creator's public key, and a random salt ... computed using the collision
//! resistant SHA-1 hash function, ensuring a uniform distribution of AppIds"
//! (§4.3). SHA-1 is implemented here from the FIPS 180-1 specification to
//! avoid an external dependency; collision resistance is irrelevant for the
//! simulation — only the uniform spread of digests matters.

use crate::id::Id;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    // Pad: 0x80, zeros, then the 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Derives a 128-bit id from arbitrary bytes: the first 16 bytes of the
/// SHA-1 digest.
pub fn id_from_bytes(data: &[u8]) -> Id {
    let digest = sha1(data);
    let mut b = [0u8; 16];
    b.copy_from_slice(&digest[..16]);
    Id::new(u128::from_be_bytes(b))
}

/// Derives an application id (tree topic / rendezvous key) from the
/// application's textual name, creator key, and salt — the §4.3 recipe.
pub fn app_id(name: &str, creator_key: &str, salt: u64) -> Id {
    let mut data = Vec::with_capacity(name.len() + creator_key.len() + 9);
    data.extend_from_slice(name.as_bytes());
    data.push(0);
    data.extend_from_slice(creator_key.as_bytes());
    data.push(0);
    data.extend_from_slice(&salt.to_be_bytes());
    id_from_bytes(&data)
}

/// Derives a node id from a stable node identity (e.g. "ip:port").
pub fn node_id(identity: &str) -> Id {
    id_from_bytes(identity.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha1_known_vectors() {
        // FIPS 180-1 / RFC 3174 test vectors.
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn sha1_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn sha1_handles_block_boundaries() {
        // Lengths straddling the 55/56/63/64-byte padding boundaries must
        // all produce distinct digests without panicking.
        let mut seen = std::collections::BTreeSet::new();
        for len in 50..70 {
            let data = vec![0x5Au8; len];
            assert!(seen.insert(sha1(&data)));
        }
    }

    #[test]
    fn app_ids_are_distinct_and_stable() {
        let a = app_id("activity-recognition", "alice-pk", 1);
        let b = app_id("activity-recognition", "alice-pk", 2);
        let c = app_id("fitness-tracking", "alice-pk", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, app_id("activity-recognition", "alice-pk", 1));
    }

    #[test]
    fn app_id_fields_do_not_collide_by_concatenation() {
        // ("ab","c") must differ from ("a","bc") thanks to separators.
        assert_ne!(app_id("ab", "c", 0), app_id("a", "bc", 0));
    }

    #[test]
    fn ids_spread_uniformly() {
        // Hash 4096 node identities and check the top 4 bits are roughly
        // uniform (chi-square-ish sanity bound).
        let mut buckets = [0usize; 16];
        for i in 0..4096 {
            let id = node_id(&format!("10.0.{}.{}:4160", i / 256, i % 256));
            buckets[(id.raw() >> 124) as usize] += 1;
        }
        for &count in &buckets {
            assert!((156..=356).contains(&count), "skewed bucket: {count}");
        }
    }
}
