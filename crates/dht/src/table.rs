//! Per-node routing state: routing table, leaf set, neighborhood set.
//!
//! §4.2: every node maintains three data structures — a prefix-organized
//! *routing table* used for routing FL data, a *leaf set* of the nodes
//! numerically closest on the ring (used for the last routing step and for
//! rebuilding tables upon failures), and a *neighborhood set* of the nodes
//! physically closest in the underlying network (used to keep locality).

use serde::{Deserialize, Serialize};
use totoro_simnet::NodeIdx;

use crate::id::Id;

/// A known peer: its ring identifier and its network address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// Ring identifier.
    pub id: Id,
    /// Network address (simulator node index; stands in for IP:port).
    pub addr: NodeIdx,
}

/// Prefix-routing table: `num_digits` rows of `2^b` columns. The entry at
/// `(row r, column c)` is a node sharing the first `r` digits with the
/// owner and having digit `c` at position `r`.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    my_id: Id,
    b: u32,
    rows: Vec<Vec<Option<Contact>>>,
}

impl RoutingTable {
    /// Creates an empty table for `my_id` with base `2^b`.
    pub fn new(my_id: Id, b: u32) -> Self {
        assert!((1..=8).contains(&b), "routing base bits must be in 1..=8");
        RoutingTable {
            my_id,
            b,
            rows: Vec::new(),
        }
    }

    /// The routing base bits `b`.
    pub fn base_bits(&self) -> u32 {
        self.b
    }

    /// Number of columns per row (`2^b`), which also bounds tree fanout.
    pub fn columns(&self) -> usize {
        1 << self.b
    }

    /// Offers a contact to the table; it is stored if its slot is empty.
    /// Returns `true` if the table changed.
    pub fn consider(&mut self, c: Contact) -> bool {
        if c.id == self.my_id {
            return false;
        }
        let row = self.my_id.shared_prefix_digits(c.id, self.b) as usize;
        let col = c.id.digit(row as u32, self.b) as usize;
        debug_assert_ne!(
            col,
            self.my_id.digit(row as u32, self.b) as usize,
            "contact with same digit would share a longer prefix"
        );
        while self.rows.len() <= row {
            self.rows.push(vec![None; self.columns()]);
        }
        let slot = &mut self.rows[row][col];
        if slot.is_none() {
            *slot = Some(c);
            true
        } else {
            false
        }
    }

    /// The entry a prefix-routing step would use for `key`: row = shared
    /// prefix length with the owner, column = `key`'s digit there.
    pub fn entry_for(&self, key: Id) -> Option<Contact> {
        let row = self.my_id.shared_prefix_digits(key, self.b) as usize;
        let col = key.digit(row as u32, self.b) as usize;
        self.rows.get(row)?.get(col).copied().flatten()
    }

    /// Removes every entry whose address is `addr`. Returns how many were
    /// removed.
    pub fn remove_addr(&mut self, addr: NodeIdx) -> usize {
        let mut removed = 0;
        for row in &mut self.rows {
            for slot in row.iter_mut() {
                if slot.map(|c| c.addr) == Some(addr) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Iterates over all populated entries.
    pub fn contacts(&self) -> impl Iterator<Item = Contact> + '_ {
        self.rows.iter().flatten().filter_map(|s| *s)
    }

    /// Returns row `r` (entries sharing `r` leading digits with the owner),
    /// used during joins to seed a newcomer's table.
    pub fn row(&self, r: usize) -> Vec<Contact> {
        self.rows
            .get(r)
            .map(|row| row.iter().filter_map(|s| *s).collect())
            .unwrap_or_default()
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.contacts().count()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes (for Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.columns() * std::mem::size_of::<Option<Contact>>()
    }
}

/// The leaf set: the `capacity/2` nodes immediately counterclockwise and the
/// `capacity/2` nodes immediately clockwise of the owner on the ring.
#[derive(Clone, Debug)]
pub struct LeafSet {
    my_id: Id,
    per_side: usize,
    /// Counterclockwise neighbors, nearest first.
    left: Vec<Contact>,
    /// Clockwise neighbors, nearest first.
    right: Vec<Contact>,
}

impl LeafSet {
    /// Creates an empty leaf set with `capacity` total slots (paper: 24).
    pub fn new(my_id: Id, capacity: usize) -> Self {
        LeafSet {
            my_id,
            per_side: (capacity / 2).max(1),
            left: Vec::new(),
            right: Vec::new(),
        }
    }

    /// Offers a contact. Returns `true` if the set changed.
    pub fn consider(&mut self, c: Contact) -> bool {
        if c.id == self.my_id {
            return false;
        }
        let cw = self.my_id.clockwise_distance(c.id);
        let ccw = c.id.clockwise_distance(self.my_id);
        // A node is a right (clockwise) leaf if it is ahead of us; nearer
        // side wins when the ring is tiny and both distances exist.
        let (side, dist) = if cw <= ccw {
            (&mut self.right, cw)
        } else {
            (&mut self.left, ccw)
        };
        if side.iter().any(|x| x.id == c.id) {
            return false;
        }
        let key = |x: &Contact| {
            if cw <= ccw {
                self.my_id.clockwise_distance(x.id)
            } else {
                x.id.clockwise_distance(self.my_id)
            }
        };
        let pos = side.partition_point(|x| key(x) < dist);
        side.insert(pos, c);
        if side.len() > self.per_side {
            side.pop();
            // Changed only if the new contact survived.
            side.iter().any(|x| x.id == c.id)
        } else {
            true
        }
    }

    /// Removes a contact by address. Returns `true` if present.
    pub fn remove_addr(&mut self, addr: NodeIdx) -> bool {
        let before = self.left.len() + self.right.len();
        self.left.retain(|c| c.addr != addr);
        self.right.retain(|c| c.addr != addr);
        before != self.left.len() + self.right.len()
    }

    /// Whether `key` falls within the arc spanned by the leaf set (from the
    /// farthest left leaf to the farthest right leaf, through the owner).
    /// When the set is saturated this means the owner's immediate
    /// neighborhood is authoritative for `key`.
    pub fn covers(&self, key: Id) -> bool {
        if key == self.my_id {
            return true;
        }
        let leftmost = self.left.last().map(|c| c.id).unwrap_or(self.my_id);
        let rightmost = self.right.last().map(|c| c.id).unwrap_or(self.my_id);
        if leftmost == rightmost && self.left.is_empty() && self.right.is_empty() {
            return true; // Alone on the ring.
        }
        key.in_arc(leftmost, rightmost) || key == leftmost
    }

    /// The member (or the owner) numerically closest to `key`.
    /// Returns `None` when the owner itself is closest.
    pub fn closest_to(&self, key: Id) -> Option<Contact> {
        let my_dist = self.my_id.ring_distance(key);
        self.members()
            .min_by_key(|c| (c.id.ring_distance(key), c.id))
            .filter(|c| {
                let d = c.id.ring_distance(key);
                d < my_dist || (d == my_dist && c.id < self.my_id)
            })
    }

    /// Iterates over all members.
    pub fn members(&self) -> impl Iterator<Item = Contact> + '_ {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// The immediate clockwise neighbor, if known.
    pub fn successor(&self) -> Option<Contact> {
        self.right.first().copied()
    }

    /// The immediate counterclockwise neighbor, if known.
    pub fn predecessor(&self) -> Option<Contact> {
        self.left.first().copied()
    }

    /// Approximate memory footprint in bytes (for Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        (self.left.len() + self.right.len()) * std::mem::size_of::<Contact>()
    }
}

/// The neighborhood set: the `capacity` peers with the lowest network RTT,
/// regardless of their position on the ring.
#[derive(Clone, Debug)]
pub struct NeighborhoodSet {
    capacity: usize,
    /// `(rtt_us, contact)` sorted by ascending RTT.
    members: Vec<(u64, Contact)>,
}

impl NeighborhoodSet {
    /// Creates an empty set holding up to `capacity` neighbors.
    pub fn new(capacity: usize) -> Self {
        NeighborhoodSet {
            capacity,
            members: Vec::new(),
        }
    }

    /// Offers a contact with its measured RTT. Returns `true` if kept.
    pub fn consider(&mut self, c: Contact, rtt_us: u64) -> bool {
        if self.members.iter().any(|(_, x)| x.id == c.id) {
            return false;
        }
        let pos = self.members.partition_point(|&(r, _)| r < rtt_us);
        if pos >= self.capacity {
            return false;
        }
        self.members.insert(pos, (rtt_us, c));
        self.members.truncate(self.capacity);
        true
    }

    /// Removes a contact by address. Returns `true` if present.
    pub fn remove_addr(&mut self, addr: NodeIdx) -> bool {
        let before = self.members.len();
        self.members.retain(|(_, c)| c.addr != addr);
        before != self.members.len()
    }

    /// Iterates over members in ascending RTT order.
    pub fn members(&self) -> impl Iterator<Item = Contact> + '_ {
        self.members.iter().map(|&(_, c)| c)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Approximate memory footprint in bytes (for Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        self.members.len() * std::mem::size_of::<(u64, Contact)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u128, addr: NodeIdx) -> Contact {
        Contact {
            id: Id::new(id),
            addr,
        }
    }

    const TOP: u32 = 124; // Shift to place a hex digit at the most significant position.

    #[test]
    fn routing_table_places_by_prefix() {
        let me = Id::new(0x5u128 << TOP);
        let mut t = RoutingTable::new(me, 4);
        // Shares 0 digits, first digit 7 -> row 0, col 7.
        let peer = c(0x7u128 << TOP, 1);
        assert!(t.consider(peer));
        assert_eq!(t.entry_for(Id::new(0x7123u128 << (TOP - 12))), Some(peer));
        // Duplicate slot is not replaced.
        assert!(!t.consider(c(0x71u128 << (TOP - 4), 2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn routing_table_ignores_self_and_removes_by_addr() {
        let me = Id::new(42);
        let mut t = RoutingTable::new(me, 4);
        assert!(!t.consider(c(42, 0)));
        assert!(t.consider(c(7u128 << TOP, 3)));
        assert_eq!(t.remove_addr(3), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn routing_table_rows_grow_with_prefix() {
        let me = Id::new(0xAB00u128 << (TOP - 12));
        let mut t = RoutingTable::new(me, 4);
        // Shares 2 digits (A, B) -> row 2.
        let peer = c(0xAB70u128 << (TOP - 12), 1);
        assert!(t.consider(peer));
        assert_eq!(t.row(2), vec![peer]);
        assert!(t.row(0).is_empty());
    }

    #[test]
    fn leaf_set_keeps_nearest_per_side() {
        let me = Id::new(1_000);
        let mut l = LeafSet::new(me, 4); // 2 per side
        assert!(l.consider(c(1_010, 1)));
        assert!(l.consider(c(1_020, 2)));
        assert!(l.consider(c(990, 3)));
        // 1_030 is clockwise but farther than both existing right leaves.
        assert!(!l.consider(c(1_030, 4)));
        assert_eq!(l.successor(), Some(c(1_010, 1)));
        assert_eq!(l.predecessor(), Some(c(990, 3)));
        // A nearer right neighbor evicts the farthest.
        assert!(l.consider(c(1_005, 5)));
        assert_eq!(l.successor(), Some(c(1_005, 5)));
        let members: Vec<NodeIdx> = l.members().map(|c| c.addr).collect();
        assert!(!members.contains(&2), "farthest right leaf not evicted");
    }

    #[test]
    fn leaf_set_covers_its_arc() {
        let me = Id::new(1_000);
        let mut l = LeafSet::new(me, 4);
        l.consider(c(900, 1));
        l.consider(c(1_100, 2));
        assert!(l.covers(Id::new(950)));
        assert!(l.covers(Id::new(1_000)));
        assert!(l.covers(Id::new(1_100)));
        assert!(l.covers(Id::new(900)));
        assert!(!l.covers(Id::new(2_000)));
        assert!(!l.covers(Id::new(10)));
    }

    #[test]
    fn leaf_set_closest_to_picks_min_distance() {
        let me = Id::new(1_000);
        let mut l = LeafSet::new(me, 4);
        l.consider(c(900, 1));
        l.consider(c(1_100, 2));
        assert_eq!(l.closest_to(Id::new(910)), Some(c(900, 1)));
        assert_eq!(l.closest_to(Id::new(1_090)), Some(c(1_100, 2)));
        // Owner is closest.
        assert_eq!(l.closest_to(Id::new(1_001)), None);
    }

    #[test]
    fn leaf_set_wraps_around_zero() {
        let me = Id::new(5);
        let mut l = LeafSet::new(me, 4);
        assert!(l.consider(c(u128::MAX - 10, 1))); // counterclockwise neighbor
        assert!(l.consider(c(20, 2)));
        assert_eq!(l.predecessor(), Some(c(u128::MAX - 10, 1)));
        assert!(l.covers(Id::new(0)));
        assert!(l.covers(Id::new(u128::MAX - 5)));
    }

    #[test]
    fn leaf_set_remove() {
        let me = Id::new(0);
        let mut l = LeafSet::new(me, 8);
        l.consider(c(10, 1));
        assert!(l.remove_addr(1));
        assert!(!l.remove_addr(1));
        assert!(l.is_empty());
    }

    #[test]
    fn neighborhood_keeps_lowest_rtt() {
        let mut n = NeighborhoodSet::new(2);
        assert!(n.consider(c(1, 1), 500));
        assert!(n.consider(c(2, 2), 100));
        assert!(!n.consider(c(3, 3), 900)); // Full of closer nodes.
        assert!(n.consider(c(4, 4), 50));
        let members: Vec<NodeIdx> = n.members().map(|c| c.addr).collect();
        assert_eq!(members, vec![4, 2]);
        assert!(n.remove_addr(2));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn neighborhood_rejects_duplicates() {
        let mut n = NeighborhoodSet::new(4);
        assert!(n.consider(c(1, 1), 10));
        assert!(!n.consider(c(1, 1), 5));
        assert_eq!(n.len(), 1);
    }
}
