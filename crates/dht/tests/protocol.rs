//! Protocol-level DHT tests: nodes join over the network, route keys, and
//! detect failures — no omniscient construction involved.

use totoro_dht::{closest_on_ring, node_id, DhtApi, DhtConfig, DhtNode, Id, UpperLayer};
use totoro_simnet::{sub_rng, NodeIdx, Payload, SimTime, Simulator, Topology};

/// A minimal upper layer that records deliveries and failures.
#[derive(Default)]
struct Recorder {
    delivered: Vec<(Id, u64)>,
    directs: Vec<u64>,
    failed_peers: Vec<NodeIdx>,
}

#[derive(Clone, Debug)]
struct Blob(u64);

impl Payload for Blob {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl UpperLayer for Recorder {
    type P = Blob;

    fn on_deliver(&mut self, _api: &mut DhtApi<'_, '_, Blob>, key: Id, _origin: NodeIdx, p: Blob) {
        self.delivered.push((key, p.0));
    }

    fn on_direct(&mut self, _api: &mut DhtApi<'_, '_, Blob>, _from: NodeIdx, p: Blob) {
        self.directs.push(p.0);
    }

    fn on_peer_failed(&mut self, _api: &mut DhtApi<'_, '_, Blob>, addr: NodeIdx) {
        self.failed_peers.push(addr);
    }
}

type Node = DhtNode<Recorder>;

/// Builds a simulator where node 0 bootstraps the overlay and nodes join
/// through it at staggered times (via their `on_start`).
fn join_sim(n: usize, seed: u64) -> (Simulator<Node>, Vec<Id>) {
    let topology = Topology::uniform(n, 500, 2_000);
    let ids: Vec<Id> = (0..n)
        .map(|i| node_id(&format!("node-{i}:{seed}")))
        .collect();
    let ids2 = ids.clone();
    let sim = Simulator::new(topology, seed, move |i| {
        let bootstrap = if i == 0 { None } else { Some(0) };
        DhtNode::new(
            ids2[i],
            i,
            DhtConfig::default(),
            bootstrap,
            Recorder::default(),
        )
    });
    (sim, ids)
}

/// Lets the overlay converge: joins + a few gossip rounds.
fn converge(sim: &mut Simulator<Node>, secs: u64) {
    sim.run_until(SimTime::from_micros(secs * 1_000_000));
}

#[test]
fn all_nodes_join_through_bootstrap() {
    let (mut sim, _ids) = join_sim(40, 7);
    converge(&mut sim, 30);
    for i in 0..40 {
        assert!(sim.app(i).joined(), "node {i} failed to join");
        assert!(
            sim.app(i).state.leaf_set.len() >= 2,
            "node {i} has a degenerate leaf set"
        );
    }
}

#[test]
fn routing_reaches_numerically_closest_node() {
    let (mut sim, ids) = join_sim(40, 8);
    converge(&mut sim, 30);

    let mut sorted = ids.clone();
    sorted.sort();

    let mut rng = sub_rng(8, "keys");
    for t in 0..20u64 {
        let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
        let src = (t as usize * 7) % 40;
        sim.with_app(src, |node, ctx| {
            node.with_api(ctx, |_upper, api| {
                assert!(api.route(key, Blob(t), false));
            });
        });
        converge(&mut sim, 30 + t + 1);
        let want_id = sorted[closest_on_ring(&sorted, key)];
        let dest = ids.iter().position(|&x| x == want_id).unwrap();
        assert!(
            sim.app(dest)
                .upper
                .delivered
                .iter()
                .any(|&(k, v)| k == key && v == t),
            "packet {t} not delivered at closest node"
        );
    }
}

#[test]
fn delivery_hops_stay_logarithmic() {
    let (mut sim, _ids) = join_sim(60, 9);
    converge(&mut sim, 30);
    let mut rng = sub_rng(9, "keys");
    for t in 0..30u64 {
        let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
        let src = (t as usize * 11) % 60;
        sim.with_app(src, |node, ctx| {
            node.with_api(ctx, |_u, api| {
                api.route(key, Blob(t), false);
            });
        });
    }
    converge(&mut sim, 60);
    let max_hops = (0..60).map(|i| sim.app(i).stats.hops_max).max().unwrap();
    // ceil(log_16(60)) = 2 plus leaf slack; joined-by-protocol tables are
    // sparser than oracle ones, so allow generous but still-log headroom.
    assert!(max_hops <= 6, "max hops = {max_hops}");
}

#[test]
fn direct_messages_bypass_routing() {
    let (mut sim, _ids) = join_sim(5, 10);
    converge(&mut sim, 20);
    sim.with_app(1, |node, ctx| {
        node.with_api(ctx, |_u, api| api.send_direct(3, Blob(99)));
    });
    converge(&mut sim, 21);
    assert_eq!(sim.app(3).upper.directs, vec![99]);
}

#[test]
fn failed_leaf_peer_is_detected_and_removed() {
    let (mut sim, _ids) = join_sim(12, 11);
    converge(&mut sim, 30);
    // Find a leaf peer of node 0 and kill it.
    let victim = sim
        .app(0)
        .state
        .leaf_set
        .successor()
        .expect("node 0 has a successor")
        .addr;
    sim.schedule_down(victim, SimTime::from_micros(31_000_000));
    converge(&mut sim, 60);
    assert!(
        sim.app(0).upper.failed_peers.contains(&victim),
        "failure of {victim} was not reported to the upper layer"
    );
    assert!(
        !sim.app(0)
            .state
            .leaf_set
            .members()
            .any(|c| c.addr == victim),
        "failed peer still in leaf set"
    );
}

#[test]
fn leaf_sets_refill_after_failure() {
    let (mut sim, _ids) = join_sim(20, 12);
    converge(&mut sim, 30);
    let victim = sim.app(5).state.leaf_set.successor().unwrap().addr;
    sim.schedule_down(victim, SimTime::from_micros(31_000_000));
    converge(&mut sim, 90);
    // Gossip should have refilled the leaf set to a healthy size.
    assert!(
        sim.app(5).state.leaf_set.len() >= 4,
        "leaf set did not refill: {}",
        sim.app(5).state.leaf_set.len()
    );
}

#[test]
fn zone_restricted_packets_never_cross_zones() {
    // Build a 2-zone overlay: ids composed with zone bits, join through a
    // bootstrap in each zone... here all through node 0 for simplicity;
    // isolation is enforced at routing time regardless of join order.
    let n = 24;
    let zone_bits = 4;
    let mut rng = sub_rng(13, "zones");
    let zones: Vec<u16> = (0..n).map(|i| if i < n / 2 { 1 } else { 9 }).collect();
    let ids = totoro_dht::ids_for_zones(&zones, zone_bits, &mut rng);
    let config = DhtConfig {
        zone_bits,
        ..DhtConfig::default()
    };
    let ids2 = ids.clone();
    let topology = Topology::uniform(n, 500, 2_000);
    let mut sim = Simulator::new(topology, 13, move |i| {
        let bootstrap = if i == 0 { None } else { Some(0) };
        DhtNode::new(ids2[i], i, config, bootstrap, Recorder::default())
    });
    converge(&mut sim, 40);

    // A zone-1 node routes a restricted packet keyed into zone 9: blocked.
    let foreign_key = Id::compose(9, zone_bits, 12345);
    let accepted = sim
        .with_app(0, |node, ctx| {
            node.with_api(ctx, |_u, api| api.route(foreign_key, Blob(1), true))
        })
        .expect("node 0 is up");
    assert!(!accepted, "restricted packet escaped its zone");
    assert!(sim.app(0).stats.blocked >= 1);

    // A restricted packet keyed inside the home zone is delivered, and only
    // zone-1 nodes ever see it.
    let home_key = Id::compose(1, zone_bits, 999);
    let accepted = sim
        .with_app(0, |node, ctx| {
            node.with_api(ctx, |_u, api| api.route(home_key, Blob(2), true))
        })
        .expect("node 0 is up");
    assert!(accepted);
    converge(&mut sim, 60);
    let delivered_at: Vec<usize> = (0..n)
        .filter(|&i| sim.app(i).upper.delivered.iter().any(|&(_, v)| v == 2))
        .collect();
    assert_eq!(delivered_at.len(), 1, "restricted packet not delivered");
    assert!(delivered_at[0] < n / 2, "delivered in the foreign zone");
}

#[test]
fn node_revival_reannounces() {
    let (mut sim, _ids) = join_sim(10, 14);
    converge(&mut sim, 30);
    sim.schedule_down(4, SimTime::from_micros(31_000_000));
    sim.schedule_up(4, SimTime::from_micros(40_000_000));
    converge(&mut sim, 120);
    // After revival and gossip, node 4 is back in someone's leaf set.
    let known = (0..10)
        .filter(|&i| i != 4)
        .any(|i| sim.app(i).state.leaf_set.members().any(|c| c.addr == 4));
    assert!(known, "revived node was forgotten by the whole overlay");
}

#[test]
fn proximity_selection_lowers_route_stretch() {
    // Pastry's locality property: with proximity neighbor selection, the
    // total RTT of a route shrinks relative to arbitrary slot filling.
    use totoro_dht::{build_states, build_states_with_proximity, random_ids, NextHop};
    use totoro_simnet::geo::{eua_regions_scaled, generate};
    use totoro_simnet::{LatencyModel, Topology};

    let mut rng = sub_rng(77, "pns");
    let nodes = generate(&eua_regions_scaled(600), &mut rng);
    let topology = Topology::from_placements(
        &nodes,
        LatencyModel::Geo {
            base_us: 200,
            per_km_us: 10.0,
        },
    );
    let n = topology.len();
    let ids = random_ids(n, &mut rng);

    let plain = build_states(&ids, DhtConfig::default());
    let pns = build_states_with_proximity(&ids, DhtConfig::default(), &topology);

    let total_rtt = |states: &[totoro_dht::DhtState]| -> u64 {
        let mut rng = sub_rng(78, "keys");
        let mut total = 0u64;
        for t in 0..300usize {
            let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
            let mut cur = t % n;
            let mut hops = 0;
            loop {
                match totoro_dht::next_hop(&states[cur], key) {
                    NextHop::Deliver => break,
                    NextHop::Forward(c) => {
                        total += topology.rtt(cur, c.addr).as_micros();
                        cur = c.addr;
                    }
                }
                hops += 1;
                assert!(hops < 64);
            }
        }
        total
    };
    let rtt_plain = total_rtt(&plain);
    let rtt_pns = total_rtt(&pns);
    assert!(
        rtt_pns < rtt_plain,
        "proximity selection did not reduce route RTT: {rtt_pns} vs {rtt_plain}"
    );
}

#[test]
fn staggered_joins_grow_a_healthy_overlay() {
    // Nodes arrive over time (not all at t=0): late joiners must integrate
    // into leaf sets and be routable.
    let n = 30;
    let topology = Topology::uniform(n, 500, 2_000);
    let ids: Vec<Id> = (0..n).map(|i| node_id(&format!("st-{i}"))).collect();
    let ids2 = ids.clone();
    let mut sim = Simulator::new(topology, 99, move |i| {
        let bootstrap = if i == 0 { None } else { Some(0) };
        DhtNode::new(
            ids2[i],
            i,
            DhtConfig::default(),
            bootstrap,
            Recorder::default(),
        )
    });
    // Hold back the last 10 nodes: take them down before start, revive in
    // waves (their start-time join is lost; re-join happens on revival).
    for i in 20..30 {
        sim.schedule_down(i, SimTime::from_micros(0));
        sim.schedule_up(
            i,
            SimTime::from_micros((10 + (i as u64 - 20) * 5) * 1_000_000),
        );
    }
    sim.run_until(SimTime::from_micros(120 * 1_000_000));

    // Everyone alive and (re)joined; the late wave is reachable by routing.
    let mut sorted = ids.clone();
    sorted.sort();
    let mut rng = sub_rng(99, "keys");
    for t in 0..10u64 {
        let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
        sim.with_app((t as usize) % 20, |node, ctx| {
            node.with_api(ctx, |_u, api| {
                api.route(key, Blob(t), false);
            });
        });
    }
    sim.run_until(SimTime::from_micros(150 * 1_000_000));
    let delivered: usize = (0..n).map(|i| sim.app(i).upper.delivered.len()).sum();
    assert_eq!(delivered, 10, "some packets were lost");
}
