//! Property-based tests for the DHT's core invariants.

use proptest::prelude::*;
use totoro_dht::{closest_on_ring, Id, LeafSet, RoutingTable};
use totoro_dht::{Contact, DhtConfig, DhtState, NextHop};

proptest! {
    /// Digits decompose and recompose ids for every base.
    #[test]
    fn digits_round_trip(raw in any::<u128>(), b in 1u32..=8) {
        let id = Id::new(raw);
        let mut rebuilt = Id::ZERO;
        for i in 0..Id::num_digits(b) {
            rebuilt = rebuilt.with_digit(i, b, id.digit(i, b));
        }
        prop_assert_eq!(rebuilt, id);
    }

    /// Ring distance is symmetric, bounded by half the ring, and zero only
    /// on equality.
    #[test]
    fn ring_distance_laws(a in any::<u128>(), b in any::<u128>()) {
        let (x, y) = (Id::new(a), Id::new(b));
        prop_assert_eq!(x.ring_distance(y), y.ring_distance(x));
        prop_assert!(x.ring_distance(y) <= u128::MAX / 2 + 1);
        prop_assert_eq!(x.ring_distance(y) == 0, a == b);
    }

    /// Shared prefix length is symmetric and consistent with digit equality.
    #[test]
    fn shared_prefix_laws(a in any::<u128>(), b in any::<u128>(), base in 1u32..=8) {
        let (x, y) = (Id::new(a), Id::new(b));
        let p = x.shared_prefix_digits(y, base);
        prop_assert_eq!(p, y.shared_prefix_digits(x, base));
        for i in 0..p.min(Id::num_digits(base)) {
            prop_assert_eq!(x.digit(i, base), y.digit(i, base));
        }
        if p < Id::num_digits(base) && a != b {
            prop_assert_ne!(x.digit(p, base), y.digit(p, base));
        }
    }

    /// Zone compose/decompose round-trips for any zone width.
    #[test]
    fn zone_compose_round_trip(zone in any::<u64>(), suffix in any::<u128>(), bits in 1u32..=32) {
        let zone = zone & ((1u64 << bits.min(63)) - 1);
        let id = Id::compose(zone, bits, suffix);
        prop_assert_eq!(id.zone(bits), zone);
        prop_assert_eq!(id.suffix(bits), suffix & (u128::MAX >> bits));
    }

    /// `closest_on_ring` agrees with a brute-force scan.
    #[test]
    fn closest_matches_brute_force(
        mut raws in prop::collection::btree_set(any::<u128>(), 1..40),
        key in any::<u128>(),
    ) {
        let ids: Vec<Id> = raws.iter().copied().map(Id::new).collect();
        let key = Id::new(key);
        let got = ids[closest_on_ring(&ids, key)];
        let best = ids
            .iter()
            .copied()
            .min_by_key(|c| (c.ring_distance(key), *c))
            .unwrap();
        prop_assert_eq!(got, best);
        let _ = &mut raws;
    }

    /// Leaf sets never exceed capacity and always retain the true nearest
    /// clockwise/counterclockwise neighbors among those offered.
    #[test]
    fn leaf_set_retains_nearest(
        me in any::<u128>(),
        others in prop::collection::btree_set(any::<u128>(), 1..30),
        capacity in 2usize..12,
    ) {
        let me = Id::new(me);
        let mut ls = LeafSet::new(me, capacity);
        let mut offered = Vec::new();
        for (i, &o) in others.iter().enumerate() {
            if o == me.raw() {
                continue;
            }
            let c = Contact { id: Id::new(o), addr: i };
            ls.consider(c);
            offered.push(c);
        }
        prop_assert!(ls.len() <= capacity.max(2));
        if !offered.is_empty() {
            // The nearest clockwise neighbor among offered must be present.
            let nearest_cw = offered
                .iter()
                .min_by_key(|c| me.clockwise_distance(c.id))
                .unwrap();
            let nearest_ccw = offered
                .iter()
                .min_by_key(|c| c.id.clockwise_distance(me))
                .unwrap();
            let members: Vec<Id> = ls.members().map(|c| c.id).collect();
            prop_assert!(
                members.contains(&nearest_cw.id) || members.contains(&nearest_ccw.id),
                "both ring-adjacent neighbors evicted"
            );
        }
    }

    /// A routing-table entry always shares at least its row's prefix length
    /// with the owner and never stores the owner itself.
    #[test]
    fn routing_table_respects_prefix_structure(
        me in any::<u128>(),
        others in prop::collection::btree_set(any::<u128>(), 1..50),
        b in 2u32..=5,
    ) {
        let me = Id::new(me);
        let mut t = RoutingTable::new(me, b);
        for (i, &o) in others.iter().enumerate() {
            t.consider(Contact { id: Id::new(o), addr: i });
        }
        for c in t.contacts() {
            prop_assert_ne!(c.id, me);
        }
        // entry_for returns a contact matching strictly more digits of the
        // key than the owner does, whenever it returns one.
        for &o in others.iter().take(5) {
            let key = Id::new(o);
            if let Some(c) = t.entry_for(key) {
                let mine = me.shared_prefix_digits(key, b);
                let theirs = c.id.shared_prefix_digits(key, b);
                prop_assert!(theirs > mine || c.id == key);
            }
        }
    }

    /// Greedy routing over a fully-informed random ring always terminates
    /// at the globally closest node, within the log-ish hop budget.
    #[test]
    fn routing_terminates_at_closest(
        raws in prop::collection::btree_set(any::<u128>(), 2..48),
        key in any::<u128>(),
    ) {
        let ids: Vec<Id> = raws.iter().copied().map(Id::new).collect();
        let key = Id::new(key);
        let config = DhtConfig::default();
        let mut states: Vec<DhtState> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| DhtState::new(id, i, config))
            .collect();
        for (i, st) in states.iter_mut().enumerate() {
            for (j, &id) in ids.iter().enumerate() {
                if i != j {
                    st.add_contact(Contact { id, addr: j }, None);
                }
            }
        }
        let mut cur = 0usize;
        let mut hops = 0;
        loop {
            match totoro_dht::next_hop(&states[cur], key) {
                NextHop::Deliver => break,
                NextHop::Forward(c) => cur = c.addr,
            }
            hops += 1;
            prop_assert!(hops <= ids.len() as u32 + 34, "did not terminate");
        }
        prop_assert_eq!(ids[cur], ids[closest_on_ring(&ids, key)]);
    }

    /// SHA-1-derived app ids spread across the ring: two different salts
    /// never collide (for practical purposes).
    #[test]
    fn app_ids_do_not_collide(name in "[a-z]{1,12}", s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(
            totoro_dht::app_id(&name, "k", s1),
            totoro_dht::app_id(&name, "k", s2)
        );
    }
}
