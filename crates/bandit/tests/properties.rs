//! Property-based tests for the bandit planner's mathematical invariants.

use proptest::prelude::*;
use totoro_bandit::{
    kl_bernoulli, kl_lcb_lower, kl_ucb_upper, layered, omega, LinkGraph, Policy, Router,
};

proptest! {
    /// KL divergence is non-negative and zero iff p == q (clamped).
    #[test]
    fn kl_nonnegative(p in 0.0f64..=1.0, q in 0.001f64..=0.999) {
        let d = kl_bernoulli(p, q);
        prop_assert!(d >= -1e-12);
        if (p - q).abs() < 1e-12 {
            prop_assert!(d < 1e-9);
        }
    }

    /// The confidence interval brackets the empirical mean and satisfies
    /// the KL budget on both sides.
    #[test]
    fn confidence_bounds_bracket(
        p in 0.0f64..=1.0,
        attempts in 1u64..10_000,
        budget in 0.0f64..20.0,
    ) {
        let u = kl_ucb_upper(p, attempts, budget);
        let l = kl_lcb_lower(p, attempts, budget);
        prop_assert!(l <= p + 1e-9);
        prop_assert!(u >= p - 1e-9);
        prop_assert!(attempts as f64 * kl_bernoulli(p, u) <= budget + 1e-5);
        prop_assert!(attempts as f64 * kl_bernoulli(p, l) <= budget + 1e-5);
    }

    /// More attempts tighten the bound; larger budgets widen it.
    #[test]
    fn bound_monotonicity(p in 0.05f64..0.95, t in 2u64..1_000, budget in 0.5f64..8.0) {
        let u1 = kl_ucb_upper(p, t, budget);
        let u2 = kl_ucb_upper(p, t * 4, budget);
        prop_assert!(u2 <= u1 + 1e-9);
        let u3 = kl_ucb_upper(p, t, budget * 2.0);
        prop_assert!(u3 >= u1 - 1e-9);
    }

    /// The omega cost is always >= 1 (a slot is the cheapest transmission)
    /// and optimistic (<= the empirical mean delay).
    #[test]
    fn omega_bounds(p in 0.01f64..=1.0, t in 1u64..5_000, budget in 0.0f64..15.0) {
        let w = omega(p, t, budget);
        prop_assert!(w >= 1.0 - 1e-9);
        if p > 0.0 {
            prop_assert!(w <= 1.0 / p + 1e-6, "omega must stay optimistic");
        }
    }

    /// Path enumeration on layered graphs matches the closed form, and the
    /// best path is among them.
    #[test]
    fn layered_paths_complete(width in 1usize..4, depth in 1usize..4, seed in any::<u64>()) {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let (g, s, d) = layered(width, depth, (0.1, 0.9), &mut rng);
        let paths = g.all_paths(s, d);
        prop_assert_eq!(paths.len(), width.pow(depth as u32));
        let (best, delay) = g.best_path(s, d).expect("connected");
        prop_assert!(paths.contains(&best));
        for p in &paths {
            prop_assert!(g.path_delay(p) >= delay - 1e-9);
        }
    }

    /// Every policy delivers every packet on a connected layered graph, and
    /// the realized path is a valid s→d walk.
    #[test]
    fn policies_always_deliver(seed in any::<u64>(), policy_idx in 0usize..4) {
        let policy = [
            Policy::HopByHopKlUcb,
            Policy::EndToEndLcb,
            Policy::NextHopEmpirical,
            Policy::Oracle,
        ][policy_idx];
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let (g, s, d) = layered(2, 2, (0.3, 0.9), &mut rng);
        let mut router = Router::new(policy, &g);
        for _ in 0..5 {
            let res = router.route_packet(&g, s, d, &mut rng);
            let mut v = s;
            for &e in &res.edges {
                prop_assert_eq!(g.edge(e).from, v);
                v = g.edge(e).to;
            }
            prop_assert_eq!(v, d);
            prop_assert!(res.delay >= res.edges.len() as u64);
        }
    }

    /// Statistics are conserved: total attempts recorded equals total
    /// slots consumed.
    #[test]
    fn stats_conservation(seed in any::<u64>()) {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let (g, s, d) = layered(2, 2, (0.4, 0.9), &mut rng);
        let mut router = Router::new(Policy::HopByHopKlUcb, &g);
        let mut total_delay = 0;
        for _ in 0..10 {
            total_delay += router.route_packet(&g, s, d, &mut rng).delay;
        }
        let attempts: u64 = router.stats().iter().map(|s| s.attempts).sum();
        prop_assert_eq!(attempts, total_delay);
    }
}

/// Non-proptest sanity: `LinkGraph` rejects self-loops (panics).
#[test]
#[should_panic]
fn self_loops_rejected() {
    let mut g = LinkGraph::new(2);
    g.add_edge(1, 1, 0.5);
}
