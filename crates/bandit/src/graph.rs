//! Link graphs with unknown Bernoulli link qualities (§5.1).
//!
//! The edge network is a directed graph `G = (V, E)`; a transmission on
//! link `i` succeeds with unknown probability `θ_i`, so the per-link delay
//! (attempts until success) is geometric with mean `1/θ_i`. The expected
//! end-to-end delay of a path is `Σ_{i∈p} 1/θ_i`; the optimal path `p*`
//! minimizes it.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Node index in a link graph.
pub type Vertex = usize;
/// Edge index in a link graph.
pub type EdgeId = usize;

/// A directed edge with its (hidden) success probability.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub from: Vertex,
    /// Target vertex.
    pub to: Vertex,
    /// True Bernoulli success probability (hidden from policies).
    pub theta: f64,
}

/// A directed graph with Bernoulli links.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LinkGraph {
    edges: Vec<Edge>,
    /// Outgoing edge ids per vertex.
    out: Vec<Vec<EdgeId>>,
}

impl LinkGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        LinkGraph {
            edges: Vec::new(),
            out: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge and returns its id. `theta` is clamped to
    /// `[0.01, 1.0]` so expected delays stay finite.
    pub fn add_edge(&mut self, from: Vertex, to: Vertex, theta: f64) -> EdgeId {
        assert!(from < self.out.len() && to < self.out.len());
        assert_ne!(from, to, "self-loops are not allowed");
        let id = self.edges.len();
        self.edges.push(Edge {
            from,
            to,
            theta: theta.clamp(0.01, 1.0),
        });
        self.out[from].push(id);
        id
    }

    /// The edge with id `e`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// Outgoing edge ids of `v`.
    pub fn out_edges(&self, v: Vertex) -> &[EdgeId] {
        &self.out[v]
    }

    /// Samples one transmission attempt on edge `e`.
    pub fn attempt(&self, e: EdgeId, rng: &mut StdRng) -> bool {
        rng.gen::<f64>() < self.edges[e].theta
    }

    /// Expected delay (mean attempts) of edge `e`: `1/θ`.
    pub fn expected_delay(&self, e: EdgeId) -> f64 {
        1.0 / self.edges[e].theta
    }

    /// Expected delay of a path given as edge ids.
    pub fn path_delay(&self, path: &[EdgeId]) -> f64 {
        // det: allow(float: left-to-right over the path slice; edge order is the path itself — canonical by definition)
        path.iter().map(|&e| self.expected_delay(e)).sum()
    }

    /// Enumerates all loop-free paths from `s` to `d` as edge-id sequences.
    /// Exponential in general; intended for the small evaluation graphs.
    pub fn all_paths(&self, s: Vertex, d: Vertex) -> Vec<Vec<EdgeId>> {
        let mut paths = Vec::new();
        let mut visited = vec![false; self.num_vertices()];
        let mut stack = Vec::new();
        self.dfs_paths(s, d, &mut visited, &mut stack, &mut paths);
        paths
    }

    fn dfs_paths(
        &self,
        v: Vertex,
        d: Vertex,
        visited: &mut Vec<bool>,
        stack: &mut Vec<EdgeId>,
        paths: &mut Vec<Vec<EdgeId>>,
    ) {
        if v == d {
            paths.push(stack.clone());
            return;
        }
        visited[v] = true;
        for &e in &self.out[v] {
            let to = self.edges[e].to;
            if !visited[to] {
                stack.push(e);
                self.dfs_paths(to, d, visited, stack, paths);
                stack.pop();
            }
        }
        visited[v] = false;
    }

    /// The optimal path from `s` to `d` (minimum expected delay), found by
    /// Dijkstra over `1/θ` weights. Returns `(path_edges, expected_delay)`.
    pub fn best_path(&self, s: Vertex, d: Vertex) -> Option<(Vec<EdgeId>, f64)> {
        let dist = self.shortest_costs_to(d, |e| self.expected_delay(e))?;
        if !dist[s].is_finite() {
            return None;
        }
        // Reconstruct greedily.
        let mut path = Vec::new();
        let mut v = s;
        while v != d {
            let &e = self.out[v]
                .iter()
                .min_by(|&&a, &&b| {
                    let ca = self.expected_delay(a) + dist[self.edges[a].to];
                    let cb = self.expected_delay(b) + dist[self.edges[b].to];
                    ca.partial_cmp(&cb).expect("finite costs")
                })
                .expect("connected");
            path.push(e);
            v = self.edges[e].to;
            if path.len() > self.num_vertices() {
                return None;
            }
        }
        let delay = self.path_delay(&path);
        Some((path, delay))
    }

    /// Least-cost distance from every vertex to `d` under a per-edge cost
    /// function (Bellman–Ford on the reversed graph; costs must be
    /// non-negative). Returns `None` when `d` is out of range.
    pub fn shortest_costs_to(&self, d: Vertex, cost: impl Fn(EdgeId) -> f64) -> Option<Vec<f64>> {
        if d >= self.num_vertices() {
            return None;
        }
        let n = self.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        dist[d] = 0.0;
        // Bellman-Ford: at most n-1 relaxation sweeps.
        for _ in 0..n {
            let mut changed = false;
            for (e, edge) in self.edges.iter().enumerate() {
                let c = cost(e);
                debug_assert!(c >= 0.0, "negative edge cost");
                if dist[edge.to].is_finite() && dist[edge.from] > dist[edge.to] + c {
                    dist[edge.from] = dist[edge.to] + c;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Some(dist)
    }
}

/// Builds a layered graph: `source → layer_1 (width) → ... → layer_depth →
/// destination`, fully connected between consecutive layers, with link
/// qualities drawn uniformly from `theta_range`. Returns
/// `(graph, source, destination)`.
pub fn layered(
    width: usize,
    depth: usize,
    theta_range: (f64, f64),
    rng: &mut StdRng,
) -> (LinkGraph, Vertex, Vertex) {
    assert!(width >= 1 && depth >= 1);
    let n = 2 + width * depth;
    let mut g = LinkGraph::new(n);
    let s = 0;
    let d = n - 1;
    let vertex = |layer: usize, i: usize| 1 + layer * width + i;
    let theta = |rng: &mut StdRng| rng.gen_range(theta_range.0..=theta_range.1);
    for i in 0..width {
        let t = theta(rng);
        g.add_edge(s, vertex(0, i), t);
    }
    for layer in 0..depth - 1 {
        for i in 0..width {
            for j in 0..width {
                let t = theta(rng);
                g.add_edge(vertex(layer, i), vertex(layer + 1, j), t);
            }
        }
    }
    for i in 0..width {
        let t = theta(rng);
        g.add_edge(vertex(depth - 1, i), d, t);
    }
    (g, s, d)
}

/// Builds the "deceptive first link" topology the paper's adaptivity
/// analysis targets (§7.5): the highest-quality link out of the source
/// leads into a poor continuation, so next-hop greed locks onto a
/// suboptimal path while planners that account for the remaining path
/// (Totoro's `J` term) escape. Returns `(graph, source, destination)`.
///
/// Branches (source → relay → destination):
/// * trap:   0.90 then 0.10 — expected delay ≈ 11.1
/// * best:   0.55 then 0.55 — expected delay ≈ 3.6
/// * decoy:  0.25 then 0.90 — expected delay ≈ 5.1
/// * filler: 0.40 then 0.30 — expected delay ≈ 5.8
pub fn trap_graph() -> (LinkGraph, Vertex, Vertex) {
    let mut g = LinkGraph::new(6);
    let (s, d) = (0, 5);
    g.add_edge(s, 1, 0.90);
    g.add_edge(1, d, 0.10);
    g.add_edge(s, 2, 0.55);
    g.add_edge(2, d, 0.55);
    g.add_edge(s, 3, 0.25);
    g.add_edge(3, d, 0.90);
    g.add_edge(s, 4, 0.40);
    g.add_edge(4, d, 0.30);
    (g, s, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use totoro_simnet_test_rng::sub_rng;

    // Tiny shim so the tests read like the rest of the workspace.
    mod totoro_simnet_test_rng {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn sub_rng(seed: u64, _label: &str) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    /// A diamond: s -> a -> d (fast) and s -> b -> d (slow).
    fn diamond() -> (LinkGraph, Vertex, Vertex) {
        let mut g = LinkGraph::new(4);
        g.add_edge(0, 1, 0.9); // s->a
        g.add_edge(1, 3, 0.9); // a->d
        g.add_edge(0, 2, 0.3); // s->b
        g.add_edge(2, 3, 0.3); // b->d
        (g, 0, 3)
    }

    #[test]
    fn best_path_picks_high_theta_branch() {
        let (g, s, d) = diamond();
        let (path, delay) = g.best_path(s, d).unwrap();
        assert_eq!(path, vec![0, 1]);
        assert!((delay - 2.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn all_paths_enumerates_both_branches() {
        let (g, s, d) = diamond();
        let mut paths = g.all_paths(s, d);
        paths.sort();
        assert_eq!(paths, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn path_delay_is_sum_of_inverse_thetas() {
        let (g, _, _) = diamond();
        assert!((g.path_delay(&[2, 3]) - (1.0 / 0.3 + 1.0 / 0.3)).abs() < 1e-12);
    }

    #[test]
    fn layered_graph_shape() {
        let mut rng = sub_rng(1, "");
        let (g, s, d) = layered(3, 4, (0.2, 0.9), &mut rng);
        assert_eq!(g.num_vertices(), 2 + 12);
        // 3 + 3*3*3 + 3 edges.
        assert_eq!(g.num_edges(), 3 + 27 + 3);
        let paths = g.all_paths(s, d);
        assert_eq!(paths.len(), 3 * 3 * 3 * 3);
        // Every path has depth+1 edges.
        assert!(paths.iter().all(|p| p.len() == 5));
        let (best, delay) = g.best_path(s, d).unwrap();
        let brute = paths
            .iter()
            .map(|p| g.path_delay(p))
            .fold(f64::INFINITY, f64::min);
        assert!((delay - brute).abs() < 1e-9);
        assert_eq!(g.path_delay(&best), delay);
    }

    #[test]
    fn attempts_match_theta_statistically() {
        let (g, _, _) = diamond();
        let mut rng = sub_rng(2, "");
        let n = 20_000;
        let ok = (0..n).filter(|_| g.attempt(0, &mut rng)).count();
        let rate = ok as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn shortest_costs_handle_unreachable() {
        let mut g = LinkGraph::new(3);
        g.add_edge(0, 1, 0.5);
        // Vertex 2 unreachable-from perspective: no path 2 -> ... -> 1.
        let dist = g.shortest_costs_to(1, |e| g.expected_delay(e)).unwrap();
        assert_eq!(dist[1], 0.0);
        assert!(dist[0].is_finite());
        assert!(dist[2].is_infinite());
    }

    #[test]
    fn theta_is_clamped() {
        let mut g = LinkGraph::new(2);
        let e = g.add_edge(0, 1, 0.0);
        assert!(g.edge(e).theta >= 0.01);
        let mut g2 = LinkGraph::new(2);
        let e2 = g2.add_edge(0, 1, 7.0);
        assert_eq!(g2.edge(e2).theta, 1.0);
    }
}
