//! Routing policies: Totoro's hop-by-hop KL-UCB planner (Algorithm 1) and
//! the baselines it is evaluated against (§7.5).

use rand::rngs::StdRng;

use crate::graph::{EdgeId, LinkGraph, Vertex};
use crate::klucb::{kl_ucb_upper, LinkStats};

/// Which routing policy a [`Router`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Totoro (§5.2, Algorithm 1): at every time slot, node `v` picks the
    /// link minimizing `C(v,v') = ω(v,v') + J(v')`, where `ω` is the
    /// KL-UCB-adjusted link cost and `J` the least total adjusted cost from
    /// `v'` to the destination. Semi-bandit feedback: every traversed link
    /// updates its statistics.
    HopByHopKlUcb,
    /// End-to-end routing \[42\]: before each packet, commit to the full path
    /// minimizing the sum of optimistic (LCB-on-delay) link costs, then
    /// ride it regardless of what happens mid-path.
    EndToEndLcb,
    /// Next-hop routing \[25\]: at each node greedily take the
    /// lowest-empirical-delay outgoing link among those that make progress
    /// toward the destination; no view past the next hop.
    NextHopEmpirical,
    /// Omniscient baseline: always transmit on the true optimal path.
    Oracle,
}

impl Policy {
    /// Human-readable policy name (used in experiment output).
    pub fn name(self) -> &'static str {
        match self {
            Policy::HopByHopKlUcb => "totoro-hop-by-hop",
            Policy::EndToEndLcb => "end-to-end-lcb",
            Policy::NextHopEmpirical => "next-hop",
            Policy::Oracle => "optimal",
        }
    }
}

/// The outcome of routing one packet.
#[derive(Clone, Debug)]
pub struct PacketResult {
    /// Time slots consumed (one per transmission attempt).
    pub delay: u64,
    /// The realized path: edges on which the packet actually advanced.
    pub edges: Vec<EdgeId>,
}

/// Safety valve: a single packet may not consume more slots than this.
const MAX_SLOTS_PER_PACKET: u64 = 1_000_000;

/// A stateful router executing one [`Policy`] over a [`LinkGraph`].
pub struct Router {
    policy: Policy,
    stats: Vec<LinkStats>,
    /// Global slot clock τ (shared across packets, drives exploration).
    slots: u64,
    /// Hop distances to the destination (computed lazily per destination).
    hop_cache: Option<(Vertex, Vec<u64>)>,
}

impl Router {
    /// Creates a router with no prior link knowledge.
    pub fn new(policy: Policy, graph: &LinkGraph) -> Self {
        Router {
            policy,
            stats: vec![LinkStats::default(); graph.num_edges()],
            slots: 1,
            hop_cache: None,
        }
    }

    /// The policy this router runs.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Per-link statistics accumulated so far.
    pub fn stats(&self) -> &[LinkStats] {
        &self.stats
    }

    /// Total transmission slots consumed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    fn log_tau(&self) -> f64 {
        (self.slots.max(2) as f64).ln()
    }

    /// Routes one packet from `s` to `d`, updating link statistics.
    pub fn route_packet(
        &mut self,
        g: &LinkGraph,
        s: Vertex,
        d: Vertex,
        rng: &mut StdRng,
    ) -> PacketResult {
        match self.policy {
            Policy::HopByHopKlUcb => self.route_hop_by_hop(g, s, d, rng),
            Policy::EndToEndLcb => self.route_end_to_end(g, s, d, rng),
            Policy::NextHopEmpirical => self.route_next_hop(g, s, d, rng),
            Policy::Oracle => self.route_oracle(g, s, d, rng),
        }
    }

    /// Transmits on `e` until success; returns slots spent. Statistics are
    /// updated per attempt (semi-bandit feedback).
    fn transmit_until_success(
        &mut self,
        g: &LinkGraph,
        e: EdgeId,
        rng: &mut StdRng,
        budget: &mut u64,
    ) -> u64 {
        let mut spent = 0;
        loop {
            let ok = g.attempt(e, rng);
            self.stats[e].record(ok);
            self.slots += 1;
            spent += 1;
            *budget = budget.saturating_sub(1);
            if ok || *budget == 0 {
                return spent;
            }
        }
    }

    fn route_hop_by_hop(
        &mut self,
        g: &LinkGraph,
        s: Vertex,
        d: Vertex,
        rng: &mut StdRng,
    ) -> PacketResult {
        let mut v = s;
        let mut delay = 0;
        let mut edges = Vec::new();
        let mut budget = MAX_SLOTS_PER_PACKET;
        while v != d && budget > 0 {
            // Per-slot re-planning: ω and J reflect everything learned so
            // far, including attempts made earlier on this very packet.
            let log_tau = self.log_tau();
            let j = g
                .shortest_costs_to(d, |e| self.stats[e].omega(log_tau))
                .expect("destination in graph");
            let Some(&e) = g.out_edges(v).iter().min_by(|&&a, &&b| {
                let ca = self.stats[a].omega(log_tau) + j[g.edge(a).to];
                let cb = self.stats[b].omega(log_tau) + j[g.edge(b).to];
                ca.partial_cmp(&cb).expect("finite costs")
            }) else {
                break; // Dead end.
            };
            if !j[g.edge(e).to].is_finite() {
                break;
            }
            // One attempt per slot; on failure we re-plan (the link's ω
            // just worsened, so a sibling may now look better).
            let ok = g.attempt(e, rng);
            self.stats[e].record(ok);
            self.slots += 1;
            delay += 1;
            budget -= 1;
            if ok {
                edges.push(e);
                v = g.edge(e).to;
            }
        }
        PacketResult { delay, edges }
    }

    fn route_end_to_end(
        &mut self,
        g: &LinkGraph,
        s: Vertex,
        d: Vertex,
        rng: &mut StdRng,
    ) -> PacketResult {
        // Optimistic per-link cost: delay LCB = 1 / (success-rate UCB).
        let log_tau = self.log_tau();
        let cost = |e: EdgeId| {
            let st = &self.stats[e];
            let u = kl_ucb_upper(st.p_hat(), st.attempts, log_tau);
            (1.0 / u.max(1e-9)).max(1.0)
        };
        let dist = g.shortest_costs_to(d, cost).expect("destination in graph");
        // Reconstruct the committed path greedily along `dist`.
        let mut path = Vec::new();
        let mut v = s;
        while v != d {
            let Some(&e) = g
                .out_edges(v)
                .iter()
                .filter(|&&e| dist[g.edge(e).to].is_finite())
                .min_by(|&&a, &&b| {
                    let ca = cost(a) + dist[g.edge(a).to];
                    let cb = cost(b) + dist[g.edge(b).to];
                    ca.partial_cmp(&cb).expect("finite")
                })
            else {
                return PacketResult {
                    delay: 0,
                    edges: Vec::new(),
                };
            };
            path.push(e);
            v = g.edge(e).to;
            if path.len() > g.num_vertices() {
                break;
            }
        }
        // Ride the committed path.
        let mut delay = 0;
        let mut budget = MAX_SLOTS_PER_PACKET;
        for &e in &path {
            delay += self.transmit_until_success(g, e, rng, &mut budget);
        }
        PacketResult { delay, edges: path }
    }

    fn hop_distances(&mut self, g: &LinkGraph, d: Vertex) -> &[u64] {
        let stale = !matches!(self.hop_cache, Some((dd, _)) if dd == d);
        if stale {
            // BFS on the reversed graph.
            let n = g.num_vertices();
            let mut dist = vec![u64::MAX; n];
            dist[d] = 0;
            let mut changed = true;
            while changed {
                changed = false;
                for e in 0..g.num_edges() {
                    let edge = g.edge(e);
                    if dist[edge.to] != u64::MAX && dist[edge.from] > dist[edge.to] + 1 {
                        dist[edge.from] = dist[edge.to] + 1;
                        changed = true;
                    }
                }
            }
            self.hop_cache = Some((d, dist));
        }
        &self.hop_cache.as_ref().expect("just set").1
    }

    fn route_next_hop(
        &mut self,
        g: &LinkGraph,
        s: Vertex,
        d: Vertex,
        rng: &mut StdRng,
    ) -> PacketResult {
        let hops = self.hop_distances(g, d).to_vec();
        let mut v = s;
        let mut delay = 0;
        let mut edges = Vec::new();
        let mut budget = MAX_SLOTS_PER_PACKET;
        while v != d && budget > 0 {
            // Progress-preserving candidates only (no loops), then pure
            // greed on the empirical next-hop delay — no downstream view.
            let Some(&e) = g
                .out_edges(v)
                .iter()
                .filter(|&&e| hops[g.edge(e).to] < hops[v])
                .min_by(|&&a, &&b| {
                    let da = self.stats[a].empirical_delay();
                    let db = self.stats[b].empirical_delay();
                    da.partial_cmp(&db)
                        .expect("finite")
                        .then(self.stats[a].attempts.cmp(&self.stats[b].attempts))
                })
            else {
                break;
            };
            delay += self.transmit_until_success(g, e, rng, &mut budget);
            edges.push(e);
            v = g.edge(e).to;
        }
        PacketResult { delay, edges }
    }

    fn route_oracle(
        &mut self,
        g: &LinkGraph,
        s: Vertex,
        d: Vertex,
        rng: &mut StdRng,
    ) -> PacketResult {
        let (path, _) = g.best_path(s, d).expect("connected graph");
        let mut delay = 0;
        let mut budget = MAX_SLOTS_PER_PACKET;
        for &e in &path {
            delay += self.transmit_until_success(g, e, rng, &mut budget);
        }
        PacketResult { delay, edges: path }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn diamond() -> (LinkGraph, Vertex, Vertex) {
        let mut g = LinkGraph::new(4);
        g.add_edge(0, 1, 0.9);
        g.add_edge(1, 3, 0.9);
        g.add_edge(0, 2, 0.3);
        g.add_edge(2, 3, 0.3);
        (g, 0, 3)
    }

    #[test]
    fn all_policies_deliver_every_packet() {
        let (g, s, d) = diamond();
        for policy in [
            Policy::HopByHopKlUcb,
            Policy::EndToEndLcb,
            Policy::NextHopEmpirical,
            Policy::Oracle,
        ] {
            let mut router = Router::new(policy, &g);
            let mut r = rng(1);
            for _ in 0..50 {
                let res = router.route_packet(&g, s, d, &mut r);
                assert!(res.delay >= res.edges.len() as u64);
                // Path really reaches d.
                let mut v = s;
                for &e in &res.edges {
                    assert_eq!(g.edge(e).from, v);
                    v = g.edge(e).to;
                }
                assert_eq!(v, d, "{}", policy.name());
            }
        }
    }

    #[test]
    fn klucb_converges_to_best_path() {
        let (g, s, d) = diamond();
        let mut router = Router::new(Policy::HopByHopKlUcb, &g);
        let mut r = rng(2);
        for _ in 0..400 {
            router.route_packet(&g, s, d, &mut r);
        }
        let last_100: Vec<Vec<EdgeId>> = (0..100)
            .map(|_| router.route_packet(&g, s, d, &mut r).edges)
            .collect();
        let best = vec![0, 1];
        let on_best = last_100.iter().filter(|p| **p == best).count();
        assert!(on_best >= 85, "only {on_best}/100 packets on best path");
    }

    #[test]
    fn oracle_matches_expected_delay() {
        let (g, s, d) = diamond();
        let mut router = Router::new(Policy::Oracle, &g);
        let mut r = rng(3);
        let n = 3_000;
        let total: u64 = (0..n)
            .map(|_| router.route_packet(&g, s, d, &mut r).delay)
            .sum();
        let mean = total as f64 / n as f64;
        let expect = 2.0 / 0.9;
        assert!((mean - expect).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn stats_are_shared_across_packets() {
        let (g, s, d) = diamond();
        let mut router = Router::new(Policy::HopByHopKlUcb, &g);
        let mut r = rng(4);
        router.route_packet(&g, s, d, &mut r);
        let attempts_1: u64 = router.stats().iter().map(|s| s.attempts).sum();
        router.route_packet(&g, s, d, &mut r);
        let attempts_2: u64 = router.stats().iter().map(|s| s.attempts).sum();
        assert!(attempts_2 > attempts_1);
        assert_eq!(router.slots(), attempts_2 + 1);
    }

    #[test]
    fn next_hop_is_myopic_on_trap_graph() {
        // Trap: the first link of the bad branch looks great (0.95) but
        // leads into a terrible second link (0.05); the good branch is
        // 0.6 * 0.6. Next-hop greed must fall for the trap; KL-UCB must
        // escape it.
        let mut g = LinkGraph::new(4);
        g.add_edge(0, 1, 0.95); // trap entrance
        g.add_edge(1, 3, 0.05); // trap
        g.add_edge(0, 2, 0.6);
        g.add_edge(2, 3, 0.6);
        let (s, d) = (0, 3);

        let mut nh = Router::new(Policy::NextHopEmpirical, &g);
        let mut hb = Router::new(Policy::HopByHopKlUcb, &g);
        let mut r1 = rng(5);
        let mut r2 = rng(6);
        let k = 300;
        let nh_total: u64 = (0..k)
            .map(|_| nh.route_packet(&g, s, d, &mut r1).delay)
            .sum();
        let hb_total: u64 = (0..k)
            .map(|_| hb.route_packet(&g, s, d, &mut r2).delay)
            .sum();
        assert!(
            hb_total < nh_total,
            "hop-by-hop ({hb_total}) should beat next-hop ({nh_total}) on the trap"
        );
    }
}
