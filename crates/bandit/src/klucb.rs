//! KL-UCB confidence indices for Bernoulli links (§5.2).
//!
//! The *empirical transmission cost with exploration adjustment* of a link
//! is `ω_τ = min{ 1/u : u ∈ [θ̂, 1], t'·KL(θ̂, u) ≤ log τ }` — i.e. the
//! reciprocal of the KL-UCB upper confidence bound on the link's success
//! probability. Optimistic links (few attempts) get `u` near 1 and hence a
//! low cost, which drives exploration; well-measured links converge to
//! `1/θ̂`.

/// Kullback-Leibler divergence between Bernoulli(p) and Bernoulli(q).
pub fn kl_bernoulli(p: f64, q: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    let mut d = 0.0;
    if p > 0.0 {
        d += p * (p / q).ln();
    }
    if p < 1.0 {
        d += (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln();
    }
    d
}

/// KL-UCB upper confidence bound: the largest `u ∈ [p_hat, 1]` with
/// `attempts * KL(p_hat, u) ≤ budget`, found by bisection.
///
/// With `attempts == 0` the bound is 1 (total optimism).
pub fn kl_ucb_upper(p_hat: f64, attempts: u64, budget: f64) -> f64 {
    if attempts == 0 {
        return 1.0;
    }
    let p_hat = p_hat.clamp(0.0, 1.0);
    if p_hat >= 1.0 {
        return 1.0;
    }
    let t = attempts as f64;
    let allowed = (budget / t).max(0.0);
    let (mut lo, mut hi) = (p_hat, 1.0);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p_hat, mid) <= allowed {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The ω cost of a link: `1 / kl_ucb_upper(θ̂, t', log τ)`, floored at 1
/// (a perfect link still costs one slot per transmission).
pub fn omega(p_hat: f64, attempts: u64, log_tau: f64) -> f64 {
    let u = kl_ucb_upper(p_hat, attempts, log_tau.max(0.0));
    (1.0 / u.max(1e-9)).max(1.0)
}

/// Lower confidence bound (the dual of [`kl_ucb_upper`]), used by the
/// end-to-end LCB baseline \[42\]: the smallest `u ∈ [0, p_hat]` with
/// `attempts * KL(p_hat, u) ≤ budget`.
pub fn kl_lcb_lower(p_hat: f64, attempts: u64, budget: f64) -> f64 {
    if attempts == 0 {
        return 0.0;
    }
    let p_hat = p_hat.clamp(0.0, 1.0);
    if p_hat <= 0.0 {
        return 0.0;
    }
    let t = attempts as f64;
    let allowed = (budget / t).max(0.0);
    let (mut lo, mut hi) = (0.0, p_hat);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p_hat, mid) <= allowed {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Per-link empirical statistics.
///
/// # Examples
///
/// ```
/// use totoro_bandit::LinkStats;
///
/// let mut link = LinkStats::default();
/// for i in 0..100 {
///     link.record(i % 4 != 0); // 75% success rate.
/// }
/// assert!((link.p_hat() - 0.75).abs() < 1e-9);
/// // The exploration-adjusted cost stays optimistic: at most 1/p_hat.
/// assert!(link.omega(5.0_f64.ln()) <= 1.0 / 0.75 + 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Total transmission attempts `t'`.
    pub attempts: u64,
    /// Successful transmissions `s`.
    pub successes: u64,
}

impl LinkStats {
    /// Records one attempt with outcome `ok`.
    pub fn record(&mut self, ok: bool) {
        self.attempts += 1;
        if ok {
            self.successes += 1;
        }
    }

    /// Empirical success rate `θ̂` (1 when unexplored, by optimism).
    pub fn p_hat(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// The exploration-adjusted cost ω of this link at log-time `log_tau`.
    pub fn omega(&self, log_tau: f64) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            omega(self.p_hat(), self.attempts, log_tau)
        }
    }

    /// Empirical mean delay `1/θ̂` without exploration adjustment (the
    /// next-hop baseline's view); unexplored links look like one slot.
    pub fn empirical_delay(&self) -> f64 {
        let p = self.p_hat();
        if p <= 0.0 {
            1e9
        } else {
            1.0 / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_properties() {
        assert_eq!(kl_bernoulli(0.3, 0.3), 0.0);
        assert!(kl_bernoulli(0.3, 0.6) > 0.0);
        assert!(kl_bernoulli(0.9, 0.1) > kl_bernoulli(0.9, 0.8));
        // Finite at the boundaries thanks to clamping.
        assert!(kl_bernoulli(0.0, 0.5).is_finite());
        assert!(kl_bernoulli(1.0, 0.5).is_finite());
    }

    #[test]
    fn ucb_bound_satisfies_constraint_and_brackets_p() {
        for &(p, t, b) in &[(0.5, 10u64, 2.0), (0.1, 100, 4.0), (0.9, 3, 1.0)] {
            let u = kl_ucb_upper(p, t, b);
            assert!(u >= p - 1e-9, "u < p_hat");
            assert!(u <= 1.0);
            assert!(t as f64 * kl_bernoulli(p, u) <= b + 1e-6);
        }
    }

    #[test]
    fn ucb_tightens_with_more_attempts() {
        let loose = kl_ucb_upper(0.5, 5, 3.0);
        let tight = kl_ucb_upper(0.5, 500, 3.0);
        assert!(loose > tight);
        assert!(tight - 0.5 < 0.08);
    }

    #[test]
    fn ucb_widens_with_budget() {
        let small = kl_ucb_upper(0.4, 50, 1.0);
        let large = kl_ucb_upper(0.4, 50, 6.0);
        assert!(large > small);
    }

    #[test]
    fn unexplored_links_are_maximally_optimistic() {
        assert_eq!(kl_ucb_upper(0.0, 0, 5.0), 1.0);
        assert_eq!(omega(0.0, 0, 5.0), 1.0);
        assert_eq!(LinkStats::default().omega(5.0), 1.0);
    }

    #[test]
    fn omega_approaches_true_delay() {
        // Many attempts at rate 0.25: omega -> 4.
        let w = omega(0.25, 1_000_000, 10.0);
        assert!((w - 4.0).abs() < 0.05, "omega = {w}");
        assert!(w <= 4.0 + 1e-9, "omega must stay optimistic");
    }

    #[test]
    fn lcb_mirrors_ucb() {
        let l = kl_lcb_lower(0.5, 20, 2.0);
        let u = kl_ucb_upper(0.5, 20, 2.0);
        assert!(l < 0.5 && 0.5 < u);
        assert!(kl_lcb_lower(0.5, 0, 2.0) == 0.0);
        // More samples narrow the band.
        assert!(kl_lcb_lower(0.5, 2_000, 2.0) > l);
    }

    #[test]
    fn stats_track_rates() {
        let mut s = LinkStats::default();
        for i in 0..10 {
            s.record(i % 2 == 0);
        }
        assert_eq!(s.attempts, 10);
        assert_eq!(s.successes, 5);
        assert!((s.p_hat() - 0.5).abs() < 1e-12);
        assert!((s.empirical_delay() - 2.0).abs() < 1e-12);
    }
}
