//! # totoro-bandit
//!
//! Totoro's bandit-based exploitation-exploration path-planning model (§5
//! of the paper). Link qualities in edge networks are unknown Bernoulli
//! success probabilities; choosing data-transfer paths is a combinatorial
//! semi-bandit problem. This crate provides:
//!
//! * [`graph`] — directed link graphs with hidden `θ`, path enumeration,
//!   optimal-path computation, and layered test-graph generators;
//! * [`klucb`] — Bernoulli KL divergence, KL-UCB/LCB confidence bounds, and
//!   the exploration-adjusted link cost `ω`;
//! * [`policies`] — Algorithm 1 (distributed hop-by-hop KL-UCB routing) and
//!   the evaluation baselines: end-to-end LCB routing, next-hop empirical
//!   routing, and the optimal oracle;
//! * [`runner`] — regret curves and path-selection-frequency series
//!   (Figures 10 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod klucb;
pub mod policies;
pub mod runner;

pub use graph::{layered, trap_graph, Edge, EdgeId, LinkGraph, Vertex};
pub use klucb::{kl_bernoulli, kl_lcb_lower, kl_ucb_upper, omega, LinkStats};
pub use policies::{PacketResult, Policy, Router};
pub use runner::{mean_regret_curve, ranked_paths, run_trial, TrialResult};
