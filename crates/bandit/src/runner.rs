//! Experiment runner: regret curves and path-selection frequencies.
//!
//! Figure 10 plots cumulative regret versus packets sent; Figure 11 plots,
//! for each packet index, which path (ranked best→worst by expected delay)
//! each algorithm chose. This module routes `K` packets under a policy and
//! produces both series.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, LinkGraph, Vertex};
use crate::policies::{Policy, Router};

/// The measured outcome of one `K`-packet trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrialResult {
    /// Policy name.
    pub policy: String,
    /// Realized delay (slots) of each packet.
    pub per_packet_delay: Vec<u64>,
    /// Rank (0 = optimal) of the realized path of each packet among all
    /// loop-free s→d paths ordered by expected delay; `usize::MAX` when the
    /// packet was not delivered on an enumerated path.
    pub per_packet_path_rank: Vec<usize>,
    /// Cumulative regret after each packet:
    /// `Σ delay − (k+1)·D(p*)` (§5.1).
    pub cumulative_regret: Vec<f64>,
}

impl TrialResult {
    /// Final cumulative regret.
    pub fn final_regret(&self) -> f64 {
        self.cumulative_regret.last().copied().unwrap_or(0.0)
    }

    /// Fraction of the last `window` packets that rode the optimal path.
    pub fn optimal_rate_tail(&self, window: usize) -> f64 {
        let n = self.per_packet_path_rank.len();
        if n == 0 {
            return 0.0;
        }
        let start = n.saturating_sub(window);
        let tail = &self.per_packet_path_rank[start..];
        tail.iter().filter(|&&r| r == 0).count() as f64 / tail.len() as f64
    }
}

/// Ranks every loop-free s→d path by expected delay (best first).
pub fn ranked_paths(g: &LinkGraph, s: Vertex, d: Vertex) -> Vec<(Vec<EdgeId>, f64)> {
    let mut paths: Vec<(Vec<EdgeId>, f64)> = g
        .all_paths(s, d)
        .into_iter()
        .map(|p| {
            let delay = g.path_delay(&p);
            (p, delay)
        })
        .collect();
    paths.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite delays"));
    paths
}

/// Routes `k_packets` packets from `s` to `d` under `policy`, producing the
/// regret curve and path-rank sequence.
pub fn run_trial(
    g: &LinkGraph,
    s: Vertex,
    d: Vertex,
    policy: Policy,
    k_packets: usize,
    rng: &mut StdRng,
) -> TrialResult {
    let ranked = ranked_paths(g, s, d);
    let d_star = ranked.first().map(|(_, delay)| *delay).unwrap_or(0.0);
    let mut router = Router::new(policy, g);
    let mut per_packet_delay = Vec::with_capacity(k_packets);
    let mut per_packet_path_rank = Vec::with_capacity(k_packets);
    let mut cumulative_regret = Vec::with_capacity(k_packets);
    let mut cum_delay = 0.0;
    for k in 0..k_packets {
        let res = router.route_packet(g, s, d, rng);
        cum_delay += res.delay as f64;
        let rank = ranked
            .iter()
            .position(|(p, _)| *p == res.edges)
            .unwrap_or(usize::MAX);
        per_packet_delay.push(res.delay);
        per_packet_path_rank.push(rank);
        cumulative_regret.push(cum_delay - (k as f64 + 1.0) * d_star);
    }
    TrialResult {
        policy: policy.name().to_string(),
        per_packet_delay,
        per_packet_path_rank,
        cumulative_regret,
    }
}

/// Averages the regret curves of `runs` independent trials (different RNG
/// streams), as the evaluation does to estimate expected regret.
pub fn mean_regret_curve(
    g: &LinkGraph,
    s: Vertex,
    d: Vertex,
    policy: Policy,
    k_packets: usize,
    runs: usize,
    seed: u64,
) -> Vec<f64> {
    use rand::SeedableRng;
    let mut mean = vec![0.0; k_packets];
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
        let trial = run_trial(g, s, d, policy, k_packets, &mut rng);
        for (m, r) in mean.iter_mut().zip(&trial.cumulative_regret) {
            *m += r;
        }
    }
    for m in &mut mean {
        *m /= runs as f64;
    }
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::layered;
    use rand::SeedableRng;

    fn test_graph(seed: u64) -> (LinkGraph, Vertex, Vertex) {
        let mut rng = StdRng::seed_from_u64(seed);
        layered(3, 3, (0.2, 0.95), &mut rng)
    }

    #[test]
    fn ranked_paths_are_sorted() {
        let (g, s, d) = test_graph(1);
        let ranked = ranked_paths(&g, s, d);
        // 3 entry choices x 3 + 3 inter-layer choices = 27 paths.
        assert_eq!(ranked.len(), 27);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
        let (best, delay) = g.best_path(s, d).unwrap();
        assert_eq!(ranked[0].0, best);
        assert!((ranked[0].1 - delay).abs() < 1e-9);
    }

    #[test]
    fn oracle_regret_hovers_near_zero() {
        let (g, s, d) = test_graph(2);
        let k = 500;
        let curve = mean_regret_curve(&g, s, d, Policy::Oracle, k, 8, 42);
        let final_per_packet = curve[k - 1] / k as f64;
        assert!(
            final_per_packet.abs() < 0.6,
            "oracle per-packet regret {final_per_packet}"
        );
    }

    #[test]
    fn klucb_regret_is_sublinear() {
        let (g, s, d) = test_graph(3);
        let k = 800;
        let curve = mean_regret_curve(&g, s, d, Policy::HopByHopKlUcb, k, 6, 7);
        // Regret growth over the second half must be much smaller than over
        // the first half (sublinearity ⇒ learning happened).
        let first_half = curve[k / 2 - 1];
        let second_half = curve[k - 1] - curve[k / 2 - 1];
        assert!(
            second_half < 0.6 * first_half.max(1.0),
            "first {first_half}, second {second_half}"
        );
    }

    #[test]
    fn klucb_beats_baselines_on_deceptive_links() {
        // The topology the paper's critique targets: the best first link
        // leads into a bad continuation, so next-hop greed accumulates
        // linear regret while Totoro's J term escapes the trap (§7.5).
        let (g, s, d) = crate::graph::trap_graph();
        let k = 800;
        let runs = 8;
        let hb = mean_regret_curve(&g, s, d, Policy::HopByHopKlUcb, k, runs, 11);
        let nh = mean_regret_curve(&g, s, d, Policy::NextHopEmpirical, k, runs, 11);
        let e2e = mean_regret_curve(&g, s, d, Policy::EndToEndLcb, k, runs, 11);
        assert!(
            hb[k - 1] < nh[k - 1],
            "hop-by-hop {} vs next-hop {}",
            hb[k - 1],
            nh[k - 1]
        );
        assert!(
            hb[k - 1] < e2e[k - 1] * 1.2,
            "hop-by-hop {} vs end-to-end {}",
            hb[k - 1],
            e2e[k - 1]
        );
        // Next-hop's regret keeps growing linearly on the trap: the second
        // half accrues nearly as much as the first.
        let nh_first = nh[k / 2 - 1];
        let nh_second = nh[k - 1] - nh_first;
        assert!(
            nh_second > 0.5 * nh_first,
            "next-hop unexpectedly escaped the trap"
        );
    }

    #[test]
    fn klucb_finds_optimal_path_eventually() {
        let (g, s, d) = test_graph(5);
        let mut rng = StdRng::seed_from_u64(9);
        let trial = run_trial(&g, s, d, Policy::HopByHopKlUcb, 1_000, &mut rng);
        assert!(
            trial.optimal_rate_tail(100) >= 0.6,
            "tail optimal rate {}",
            trial.optimal_rate_tail(100)
        );
    }

    #[test]
    fn trial_series_have_requested_length() {
        let (g, s, d) = test_graph(6);
        let mut rng = StdRng::seed_from_u64(10);
        let trial = run_trial(&g, s, d, Policy::EndToEndLcb, 50, &mut rng);
        assert_eq!(trial.per_packet_delay.len(), 50);
        assert_eq!(trial.per_packet_path_rank.len(), 50);
        assert_eq!(trial.cumulative_regret.len(), 50);
        // Oracle trial: every packet rank 0.
        let mut rng = StdRng::seed_from_u64(11);
        let oracle = run_trial(&g, s, d, Policy::Oracle, 20, &mut rng);
        assert!(oracle.per_packet_path_rank.iter().all(|&r| r == 0));
    }
}
