//! Observability-layer tests over the full stack: a forest JOIN and an
//! aggregation round must be reconstructible hop-by-hop from recorded
//! spans, and traced scenario output (report text and serialized trace)
//! must be byte-identical across `--jobs` settings.

use totoro_bench::scenario::{
    execute, execute_traced, Params, Scenario, SinkSpec, Trial, TrialReport,
};
use totoro_bench::setups::{
    broadcast_from_root, build_tree, echo_overlay_sink, eua_topology, topic,
};
use totoro_simnet::obs::ROOT_PARENT;
use totoro_simnet::{
    spans, MsgMeta, NoopSink, RecordingSink, SimTime, TraceBody, TraceRecord, TraceSink,
};

const SETTLE: SimTime = SimTime::from_micros(30_000_000);

/// Builds a small traced overlay, subscribes every node to one topic, and
/// optionally drives one broadcast round; returns the recorded trace.
fn traced_world(seed: u64, drive_round: bool) -> Vec<TraceRecord> {
    let topology = eua_topology(50, seed);
    let n = topology.len();
    let mut sim = echo_overlay_sink(topology, seed, 4, RecordingSink::new(n));
    let members: Vec<usize> = (0..n).collect();
    let t = topic("trace-test", 0);
    build_tree(&mut sim, t, &members, SETTLE);
    if drive_round {
        broadcast_from_root(&mut sim, t, 0, 2_000);
        sim.run_until(SimTime::from_micros(60_000_000));
    }
    sim.into_sink().take_records()
}

/// The records of one span, with parent-linkage sanity checks: every
/// non-root send's parent must be an earlier traced record of the same
/// span with one hop less.
fn check_span_linkage(span: &[&TraceRecord]) {
    let mut seen: Vec<MsgMeta> = Vec::new();
    for r in span {
        let m = r.meta().expect("span records carry meta");
        if let TraceBody::Send { .. } = r.body {
            if m.parent == ROOT_PARENT {
                assert_eq!(m.hop, 0, "span root must be hop 0");
            } else {
                let parent = seen
                    .iter()
                    .find(|p| p.id == m.parent)
                    .unwrap_or_else(|| panic!("send {} has unseen parent {}", m.id, m.parent));
                assert_eq!(
                    m.hop,
                    parent.hop + 1,
                    "hop must increment along the causal chain"
                );
            }
        }
        seen.push(m);
    }
}

#[test]
fn join_span_reconstructs_through_three_hops() {
    let records = traced_world(5, false);
    let by_trace = spans(&records);
    // Find a JOIN that routed through the DHT for at least 3 causal hops
    // (subscriber -> intermediate -> ... -> rendezvous, hops 0,1,2).
    let deep_join = by_trace.values().find(|span| {
        span.iter().any(|r| {
            r.kind == "join" && matches!(r.body, TraceBody::Send { meta, .. } if meta.hop >= 2)
        })
    });
    let span = deep_join.expect("a 50-node fanout-4 overlay must route some JOIN over >=3 hops");
    assert!(
        span.iter().all(|r| r.layer == "forest" || r.layer == "dht"),
        "a JOIN span stays inside the overlay layers"
    );
    check_span_linkage(span);
    // The span must contain the full story: the original send, at least
    // one forwarded send, and the delivery at the rendezvous that answers.
    let sends = span
        .iter()
        .filter(|r| matches!(r.body, TraceBody::Send { .. }))
        .count();
    let delivers = span
        .iter()
        .filter(|r| matches!(r.body, TraceBody::Deliver { .. }))
        .count();
    assert!(sends >= 3, "expected >=3 sends in the chain, got {sends}");
    assert!(delivers >= 2, "expected >=2 delivers, got {delivers}");
}

#[test]
fn aggregation_round_reconstructs_as_one_span() {
    let records = traced_world(7, true);
    let by_trace = spans(&records);
    // The root's broadcast roots a span; dissemination down the tree and
    // the contributions flowing back up (self-sends issued in the
    // broadcast handler) inherit it.
    let round_span = by_trace
        .values()
        .find(|span| span.iter().any(|r| r.kind == "broadcast"))
        .expect("the driven round must appear in the trace");
    check_span_linkage(round_span);
    let broadcasts = round_span
        .iter()
        .filter(|r| r.kind == "broadcast" && matches!(r.body, TraceBody::Send { .. }))
        .count();
    let agg_ups = round_span
        .iter()
        .filter(|r| r.kind == "aggregate_up" && matches!(r.body, TraceBody::Send { .. }))
        .count();
    assert!(
        broadcasts >= 2,
        "dissemination must fan out beyond the root, got {broadcasts} sends"
    );
    assert!(
        agg_ups >= 2,
        "contributions must flow back up inside the same span, got {agg_ups}"
    );
}

// ---------------------------------------------------------------------------
// Jobs-invariance of traced scenario execution
// ---------------------------------------------------------------------------

/// A miniature traced scenario: three independent overlay-build trials.
struct TinyTrace;

fn run_tiny<S: TraceSink>(trial: &Trial, sink: S) -> (TrialReport, Option<Vec<TraceRecord>>) {
    let topology = eua_topology(30, trial.seed);
    let n = topology.len();
    let mut sim = echo_overlay_sink(topology, trial.seed, 4, sink);
    let members: Vec<usize> = (0..n).collect();
    build_tree(
        &mut sim,
        topic("tiny-trace", trial.index as u64),
        &members,
        SimTime::from_micros(20_000_000),
    );
    let mut report = TrialReport::for_trial(trial);
    report.sim = totoro_simnet::TrialReport::capture(&sim);
    let records = sim.sink_mut().drain_records();
    (report, records)
}

impl Scenario for TinyTrace {
    fn name(&self) -> &'static str {
        "tiny-trace"
    }
    fn description(&self) -> &'static str {
        "trace test scenario"
    }
    fn trials(&self, params: &Params) -> Vec<Trial> {
        Trial::seal(
            (0..3u64)
                .map(|k| Trial::new("overlay", params.seed + k))
                .collect(),
        )
    }
    fn run_with_sink(
        &self,
        trial: &Trial,
        sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        match sink.recording() {
            Some(rec) => run_tiny(trial, rec),
            None => run_tiny(trial, NoopSink),
        }
    }
    fn render(&self, _params: &Params, reports: &[TrialReport]) -> String {
        let events: Vec<String> = reports.iter().map(|r| r.sim.events.to_string()).collect();
        format!("events: {}\n", events.join(","))
    }
}

#[test]
fn traced_output_is_byte_identical_across_jobs() {
    let base = Params {
        nodes: 30,
        trace: Some("out.json".to_string()),
        ..Params::default()
    };
    let p1 = Params {
        jobs: 1,
        ..base.clone()
    };
    let p2 = Params {
        jobs: 2,
        ..base.clone()
    };
    let (out1, trace1) = execute_traced(&TinyTrace, &p1);
    let (out2, trace2) = execute_traced(&TinyTrace, &p2);
    assert_eq!(out1, out2, "rendered output depends on --jobs");
    assert_eq!(trace1, trace2, "serialized trace depends on --jobs");
    let trace = trace1.expect("tracing was requested");
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"name\":\"forest/join\""));
    // Trials render as distinct Chrome pids.
    assert!(trace.contains("\"pid\":0,") && trace.contains("\"pid\":2,"));
}

#[test]
fn tracing_does_not_perturb_untraced_output() {
    let untraced = Params::default();
    let traced = Params {
        trace: Some("out.jsonl".to_string()),
        ..Params::default()
    };
    assert_eq!(
        execute(&TinyTrace, &untraced),
        execute(&TinyTrace, &traced),
        "installing a recording sink changed the rendered output"
    );
    let (_, trace) = execute_traced(&TinyTrace, &traced);
    let trace = trace.expect("tracing was requested");
    let first = trace.lines().next().expect("trace has records");
    assert!(
        first.starts_with("{\"trial\":0,\"at_us\":"),
        "JSONL lines carry their trial index: {first}"
    );
}

#[test]
fn trace_filter_restricts_layers() {
    let filtered = Params {
        trace: Some("out.jsonl".to_string()),
        trace_filter: Some("dht".to_string()),
        ..Params::default()
    };
    let (_, trace) = execute_traced(&TinyTrace, &filtered);
    let trace = trace.expect("tracing was requested");
    assert!(trace.contains("\"layer\":\"dht\""));
    assert!(!trace.contains("\"layer\":\"forest\""));
    assert!(!trace.contains("\"layer\":\"sim\""));
}
