//! Golden determinism tests for the simulator hot path.
//!
//! The fixtures under `tests/golden/` were captured from the scenario
//! binaries *before* the zero-allocation/shared-payload optimization of
//! the event loop, at reduced-size parameter points. Byte-comparing
//! against them pins the full observable surface — rendered tables,
//! `events_processed`, final `now()`, traffic, and memory accounting — so
//! any optimization that perturbs event order, RNG streams, or accounting
//! fails loudly here rather than silently skewing a figure.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo run --release --bin totoro-bench -- fig7 --nodes 60 --window-secs 20 \
//!     > crates/bench/tests/golden/fig7_n60_w20_seed1.txt
//! ```
//! (and likewise for the `.json` and fig5 fixtures) — and say so in the PR.

use totoro_bench::scenario::{execute, parse_params};
use totoro_bench::scenarios;

fn run(name: &str, args: &[&str]) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    let mut args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    // CI reruns the whole suite with TOTORO_GOLDEN_SHARDS=4 to prove the
    // `--shards` flag is inert on figure scenarios: they pin the sequential
    // engine (whose goldens fix one same-instant interleaving), so the flag
    // must flow through without perturbing a byte of output.
    if let Ok(shards) = std::env::var("TOTORO_GOLDEN_SHARDS") {
        args.push("--shards".to_string());
        args.push(shards);
    }
    let params = parse_params(scenario.default_params(), &args).expect("valid args");
    execute(scenario.as_ref(), &params)
}

#[test]
fn fig7_small_output_matches_pre_optimization_golden() {
    let got = run("fig7", &["--nodes", "60", "--window-secs", "20"]);
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.txt"));
}

/// The JSON view additionally pins the raw counters (`events`,
/// `sim_end_us`, `memory_bytes`, per-class traffic) for every trial.
#[test]
fn fig7_small_json_matches_pre_optimization_golden() {
    let got = run("fig7", &["--nodes", "60", "--window-secs", "20", "--json"]);
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.json"));
}

/// Worker count must never leak into output (the golden fixtures were
/// captured single-threaded).
#[test]
fn fig7_small_output_is_jobs_invariant() {
    let got = run(
        "fig7",
        &["--nodes", "60", "--window-secs", "20", "--jobs", "4"],
    );
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.txt"));
}

#[test]
#[ignore = "takes ~45 s even in release; CI runs it via `--release -- --ignored`"]
fn fig5_small_output_matches_pre_optimization_golden() {
    let got = run("fig5", &["--nodes", "150", "--trees", "30"]);
    assert_eq!(got, include_str!("golden/fig5_n150_t30_seed1.txt"));
}

// ---------------------------------------------------------------------
// Golden hygiene: every figure scenario's stdout, byte-identical to the
// fixtures captured before the detlint PR. Together with the fig5/fig7
// fixtures above this covers all 11 evaluation artifacts, so a triage
// change (HashMap→BTreeMap conversion, print rerouting, annotation) can
// prove it caused no behavioral drift. The slower scenarios are
// `#[ignore]`d for the debug tier-1 run; CI executes them in release via
// `-- --include-ignored`. To regenerate after an intentional change:
// `target/release/totoro-bench <scenario> <args> > crates/bench/tests/golden/<fixture>`
// and document why in the PR.

#[test]
fn fig10_small_output_matches_golden() {
    let got = run("fig10", &["--packets", "300", "--runs", "3"]);
    assert_eq!(got, include_str!("golden/fig10_p300_r3_seed42.txt"));
}

#[test]
fn fig11_small_output_matches_golden() {
    let got = run("fig11", &["--nodes", "50", "--packets", "200"]);
    assert_eq!(got, include_str!("golden/fig11_n50_p200_seed42.txt"));
}

#[test]
fn fig13_small_output_matches_golden() {
    let got = run("fig13", &["--nodes", "40"]);
    assert_eq!(got, include_str!("golden/fig13_n40_seed42.txt"));
}

#[test]
#[ignore = "~20 s in release (fixed n=640 fanout sweep); CI runs it via `--include-ignored`"]
fn fig6_small_output_matches_golden() {
    let got = run("fig6", &["--nodes", "40", "--model-kb", "8"]);
    assert_eq!(got, include_str!("golden/fig6_n40_mk8_seed1.txt"));
}

#[test]
#[ignore = "ML training is slow in debug; CI runs it in release via `--include-ignored`"]
fn table3_small_output_matches_golden() {
    let got = run(
        "table3",
        &[
            "--nodes",
            "30",
            "--samples",
            "4",
            "--apps",
            "2",
            "--fanouts",
            "8",
        ],
    );
    assert_eq!(got, include_str!("golden/table3_n30_s4_seed42.txt"));
}

#[test]
#[ignore = "ML training is slow in debug; CI runs it in release via `--include-ignored`"]
fn fig8_small_output_matches_golden() {
    let got = run("fig8", &["--nodes", "40", "--apps", "1,2"]);
    assert_eq!(got, include_str!("golden/fig8_n40_a12_seed42.txt"));
}

#[test]
#[ignore = "ML training is slow in debug; CI runs it in release via `--include-ignored`"]
fn fig9_small_output_matches_golden() {
    let got = run("fig9", &["--nodes", "40", "--apps", "1"]);
    assert_eq!(got, include_str!("golden/fig9_n40_a1_seed42.txt"));
}

#[test]
#[ignore = "~30 s in debug; CI runs it in release via `--include-ignored`"]
fn fig12_small_output_matches_golden() {
    let got = run("fig12", &["--nodes", "50"]);
    assert_eq!(got, include_str!("golden/fig12_n50_seed42.txt"));
}

#[test]
#[ignore = "~30 s in debug; CI runs it in release via `--include-ignored`"]
fn ablation_small_output_matches_golden() {
    let got = run("ablation", &["--nodes", "40"]);
    assert_eq!(got, include_str!("golden/ablation_n40_seed42.txt"));
}
