//! Golden determinism tests for the simulator hot path.
//!
//! The fixtures under `tests/golden/` were captured from the scenario
//! binaries *before* the zero-allocation/shared-payload optimization of
//! the event loop, at reduced-size parameter points. Byte-comparing
//! against them pins the full observable surface — rendered tables,
//! `events_processed`, final `now()`, traffic, and memory accounting — so
//! any optimization that perturbs event order, RNG streams, or accounting
//! fails loudly here rather than silently skewing a figure.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo run --release --bin totoro-bench -- fig7 --nodes 60 --window-secs 20 \
//!     > crates/bench/tests/golden/fig7_n60_w20_seed1.txt
//! ```
//! (and likewise for the `.json` and fig5 fixtures) — and say so in the PR.

use totoro_bench::scenario::{execute, parse_params};
use totoro_bench::scenarios;

fn run(name: &str, args: &[&str]) -> String {
    let scenario = scenarios::find(name).expect("scenario registered");
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let params = parse_params(scenario.default_params(), &args).expect("valid args");
    execute(scenario.as_ref(), &params)
}

#[test]
fn fig7_small_output_matches_pre_optimization_golden() {
    let got = run("fig7", &["--nodes", "60", "--window-secs", "20"]);
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.txt"));
}

/// The JSON view additionally pins the raw counters (`events`,
/// `sim_end_us`, `memory_bytes`, per-class traffic) for every trial.
#[test]
fn fig7_small_json_matches_pre_optimization_golden() {
    let got = run("fig7", &["--nodes", "60", "--window-secs", "20", "--json"]);
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.json"));
}

/// Worker count must never leak into output (the golden fixtures were
/// captured single-threaded).
#[test]
fn fig7_small_output_is_jobs_invariant() {
    let got = run(
        "fig7",
        &["--nodes", "60", "--window-secs", "20", "--jobs", "4"],
    );
    assert_eq!(got, include_str!("golden/fig7_n60_w20_seed1.txt"));
}

#[test]
#[ignore = "takes ~45 s even in release; CI runs it via `--release -- --ignored`"]
fn fig5_small_output_matches_pre_optimization_golden() {
    let got = run("fig5", &["--nodes", "150", "--trees", "30"]);
    assert_eq!(got, include_str!("golden/fig5_n150_t30_seed1.txt"));
}
