//! Model-checker integration tests.
//!
//! Three layers, per DESIGN.md §14:
//!
//! * **Clean builds stay clean** — the registered scenarios explore with
//!   zero violations when the seeded bugs are compiled out.
//! * **Seeded bugs are found** — with `--features mc-bugs`, the checker
//!   finds FOREST-CYCLE and MAINT-ZOMBIE within the stated budgets and
//!   minimizes each to the committed golden schedule.
//! * **Replays are deterministic** — the same schedule through two
//!   independently built worlds reaches the same canonical hash, and
//!   head-of-queue dispatching through the choice layer is
//!   byte-equivalent to the plain sequential simulator.

use proptest::prelude::*;
use totoro_bench::mc::{forest_repair_4, join_leave_4, maint_zombie_4, registry};
use totoro_mc::{Choice, World};

const CYCLE_FIXTURE: &str = include_str!("golden/mc_forest_cycle.schedule");
const ZOMBIE_FIXTURE: &str = include_str!("golden/mc_maint_zombie.schedule");

#[test]
fn registry_names_are_unique_and_resolvable() {
    let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate scenario names");
    for n in names {
        assert!(totoro_bench::mc::by_name(n).is_some(), "{n} not resolvable");
    }
}

#[cfg(not(feature = "mc-bugs"))]
mod clean {
    use super::*;

    /// The in-flight-join scenario explores exhaustively with zero
    /// violations, and both pruning layers do real work.
    #[test]
    fn join_leave_is_clean_and_exhaustive() {
        let report = join_leave_4().explore();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.stats.truncated);
        assert!(report.stats.visited > 100, "{:?}", report.stats);
        assert!(report.stats.deduped > 0, "{:?}", report.stats);
        assert!(report.stats.pruned > 0, "{:?}", report.stats);
    }

    /// The tick-liveness scenario is clean: the `on_up` re-arm revives
    /// a swallowed maintenance chain.
    #[test]
    fn maint_zombie_scenario_is_clean() {
        let report = maint_zombie_4().explore();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.stats.truncated);
    }

    /// A bounded slice of the repair scenario is clean. (The exhaustive
    /// run — ~29k states — lives in the release-mode `mc-smoke` CI job.)
    #[test]
    fn forest_repair_prefix_is_clean() {
        let mut scenario = forest_repair_4();
        scenario.mc.max_states = 200;
        let report = scenario.explore();
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    /// The committed counterexamples only bite when the bugs are
    /// compiled in: on the fixed protocol both replay clean.
    #[test]
    fn golden_schedules_replay_clean_on_fixed_protocol() {
        for (scenario, fixture) in [
            (forest_repair_4(), super::CYCLE_FIXTURE),
            (maint_zombie_4(), super::ZOMBIE_FIXTURE),
        ] {
            let schedule = Choice::parse_schedule(fixture).expect("fixture parses");
            assert_eq!(
                scenario.violation_of(&schedule),
                None,
                "{} fixture should be clean without mc-bugs",
                scenario.name
            );
        }
    }
}

#[cfg(feature = "mc-bugs")]
mod seeded {
    use super::*;

    /// FOREST-CYCLE: root churn leaves a parent loop the compiled-out
    /// breaker never heals. Found well inside the scenario budget and
    /// minimized to the committed 3-choice schedule.
    #[test]
    fn finds_forest_cycle_within_budget() {
        let report = forest_repair_4().explore();
        let v = report.violation.expect("FOREST-CYCLE must be found");
        assert!(v.detail.contains("cycle"), "{}", v.detail);
        assert!(report.stats.visited <= 2_000, "{:?}", report.stats);
        let golden = Choice::parse_schedule(CYCLE_FIXTURE).expect("fixture parses");
        assert_eq!(v.schedule, golden, "minimal schedule drifted from fixture");
    }

    /// MAINT-ZOMBIE: a swallowed maintenance tick plus the compiled-out
    /// `on_up` re-arm leaves the revived leaf deaf. Found within budget,
    /// minimized to the committed 3-choice schedule.
    #[test]
    fn finds_maintenance_zombie_within_budget() {
        let report = maint_zombie_4().explore();
        let v = report.violation.expect("MAINT-ZOMBIE must be found");
        assert!(v.detail.contains("TickChainAlive"), "{}", v.detail);
        assert!(report.stats.visited <= 500, "{:?}", report.stats);
        let golden = Choice::parse_schedule(ZOMBIE_FIXTURE).expect("fixture parses");
        assert_eq!(v.schedule, golden, "minimal schedule drifted from fixture");
    }

    /// The golden fixtures stay live counterexamples: replayed from a
    /// fresh world each still violates its oracle.
    #[test]
    fn golden_schedules_still_violate() {
        let cycle = Choice::parse_schedule(CYCLE_FIXTURE).expect("fixture parses");
        let detail = forest_repair_4()
            .violation_of(&cycle)
            .expect("cycle fixture must violate");
        assert!(detail.contains("cycle"), "{detail}");
        let zombie = Choice::parse_schedule(ZOMBIE_FIXTURE).expect("fixture parses");
        let detail = maint_zombie_4()
            .violation_of(&zombie)
            .expect("zombie fixture must violate");
        assert!(detail.contains("TickChainAlive"), "{detail}");
    }
}

/// Derives a dispatch-only schedule from raw proptest bytes: at each
/// step, dispatch one of the first few pending events (byte modulo the
/// window). Returns the recorded schedule.
fn derive_schedule(bytes: &[u8]) -> Vec<Choice> {
    let mut world = join_leave_4().build();
    let mut schedule = Vec::new();
    for &b in bytes {
        let pending = world.pending();
        if pending.is_empty() {
            break;
        }
        let idx = usize::from(b) % pending.len().min(4);
        let choice = Choice::Dispatch {
            key: pending[idx].key,
        };
        assert!(world.apply(&choice), "derived choice must apply");
        schedule.push(choice);
    }
    schedule
}

proptest! {
    /// Differential determinism: the same schedule replayed through two
    /// independently built worlds reaches the same canonical hash.
    #[test]
    fn replay_reaches_identical_state_hash(bytes in proptest::collection::vec(any::<u8>(), 1..6)) {
        let schedule = derive_schedule(&bytes);
        let mut a = join_leave_4().build();
        let mut b = join_leave_4().build();
        for c in &schedule {
            prop_assert!(a.apply(c));
            prop_assert!(b.apply(c));
        }
        prop_assert_eq!(a.state_hash(), b.state_hash());
    }

    /// Dispatching the head of the queue through the exploration hooks
    /// is behaviorally identical to the plain sequential simulator.
    #[test]
    fn head_dispatch_equals_sequential_run(steps in 1usize..8) {
        let mut explored = join_leave_4().build();
        let mut sequential = join_leave_4().build();
        for _ in 0..steps {
            let pending = explored.pending();
            prop_assert!(!pending.is_empty());
            prop_assert!(explored.apply(&Choice::Dispatch { key: pending[0].key }));
            prop_assert!(sequential.step_natural());
        }
        prop_assert_eq!(explored.state_hash(), sequential.state_hash());
    }

    /// Canonical hashing is invariant under the dispatch order of
    /// independent same-time events (the property sleep-set pruning and
    /// visited-set dedup both lean on).
    #[test]
    fn hash_invariant_under_independent_reorder(salt in any::<u8>()) {
        let _ = salt; // same check every case; salt only varies the run
        let mut forward = join_leave_4().build();
        let pending = forward.pending();
        // Two same-time deliveries to different nodes (the scenario
        // starts with a burst of them).
        let pair: Vec<_> = pending
            .iter()
            .filter(|p| p.key.time == pending[0].key.time)
            .take(2)
            .collect();
        prop_assume!(pair.len() == 2 && pair[0].node != pair[1].node);
        let (x, y) = (pair[0].key, pair[1].key);
        let mut reverse = join_leave_4().build();
        prop_assert!(forward.apply(&Choice::Dispatch { key: x }));
        prop_assert!(forward.apply(&Choice::Dispatch { key: y }));
        prop_assert!(reverse.apply(&Choice::Dispatch { key: y }));
        prop_assert!(reverse.apply(&Choice::Dispatch { key: x }));
        prop_assert_eq!(forward.state_hash(), reverse.state_hash());
    }
}

/// Genuinely different states hash differently: no false dedup between
/// the initial state and any strictly later one.
#[test]
fn hash_distinguishes_progress() {
    let mut world = join_leave_4().build();
    let h0 = world.state_hash();
    let pending = world.pending();
    assert!(world.apply(&Choice::Dispatch {
        key: pending[0].key
    }));
    let h1 = world.state_hash();
    assert_ne!(h0, h1, "dispatch must change the canonical state");
    assert!(world.step_natural());
    assert_ne!(world.state_hash(), h1);
    assert_ne!(world.state_hash(), h0);
}
