//! Integration tests for the engine self-profiling pipeline and the
//! `totoro-trace` analytics: profile invariance across worker and shard
//! counts, Chrome trace well-formedness, and pinned critical-path output
//! on a committed fixture.

use totoro_bench::scenario::{execute, Params, Scenario, SinkSpec, Trial, TrialReport};
use totoro_bench::simcore::{build_eua_topology, run_event_churn_traced};
use totoro_bench::traceview;
use totoro_simnet::{
    chrome_trace, jsonl_trace, Application, Ctx, Fault, FaultKind, FaultPlan, HeapQueue, NodeIdx,
    Payload, ShardedSim, SimTime, TraceRecord, TrialReport as SimAccounting, WheelQueue,
};

#[derive(Clone)]
struct Tok(u32);

impl Payload for Tok {
    fn size_bytes(&self) -> usize {
        16
    }
}

/// A zone-crossing token ring: every 7th node launches a token that hops
/// the full ring, so traffic constantly crosses region (and therefore
/// shard) boundaries while chaos drops and duplicates messages.
struct RingNode {
    n: usize,
}

impl Application for RingNode {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Tok>) {
        if ctx.me() % 7 == 0 {
            let next = (ctx.me() + 1) % self.n;
            ctx.send(next, Tok(40));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Tok>, _from: NodeIdx, msg: Tok) {
        if msg.0 > 0 {
            let next = (ctx.me() + 1) % self.n;
            ctx.send(next, Tok(msg.0 - 1));
        }
    }
}

/// A scenario whose every trial runs a chaos-enabled sharded simulation
/// with engine profiling on, reporting the profile through the standard
/// accounting path (`TrialReport.sim.engine_profile`).
struct ProfiledChaos;

impl Scenario for ProfiledChaos {
    fn name(&self) -> &'static str {
        "profiled-chaos"
    }

    fn description(&self) -> &'static str {
        "test scenario: sharded chaos run with engine profiling"
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        Trial::seal(
            (0..3)
                .map(|i| Trial::new("chaos", params.seed + i).with("shards", 2))
                .collect(),
        )
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = 120;
        let shards = trial.get_usize("shards");
        let topo = build_eua_topology(n, trial.seed);
        let mut sim = ShardedSim::new(topo, trial.seed, shards, |_| RingNode { n })
            .expect("EUA topology is shardable")
            .with_profiling();
        let plan = FaultPlan::none()
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(50_000),
                FaultKind::LossSpike { prob: 0.1 },
            ))
            .with_fault(Fault::new(
                SimTime::ZERO,
                SimTime::from_micros(50_000),
                FaultKind::Duplicate { prob: 0.1 },
            ));
        sim.apply_plan(&plan, trial.seed);
        sim.run_to_quiescence();
        let mut report = TrialReport::for_trial(trial);
        report.sim = SimAccounting::capture_sharded(&sim);
        (report, None)
    }

    fn render(&self, _params: &Params, reports: &[TrialReport]) -> String {
        let lines: Vec<String> = reports.iter().map(|r| r.sim.to_json()).collect();
        lines.join("\n")
    }
}

#[test]
fn engine_profile_is_jobs_invariant() {
    let run = |jobs: usize| {
        execute(
            &ProfiledChaos,
            &Params {
                jobs,
                json: true,
                ..Params::default()
            },
        )
    };
    let serial = run(1);
    assert!(
        serial.contains("\"engine_profile\":{\"sched\":"),
        "profile missing from report JSON"
    );
    assert_eq!(serial, run(4), "engine profile must not see --jobs");
}

#[test]
fn engine_profile_is_shard_invariant_under_chaos() {
    let json_for = |shards: u64| {
        let trial = Trial::new("chaos", 42).with("shards", shards);
        let (report, _) = ProfiledChaos.run_with_sink(&trial, &SinkSpec::untraced());
        report.sim.to_json()
    };
    let base = json_for(1);
    for shards in [2, 4] {
        assert_eq!(base, json_for(shards), "shards = {shards}");
    }
}

#[test]
fn chrome_trace_is_valid_json_with_monotone_timestamps() {
    let records = run_event_churn_traced::<WheelQueue>(50, 4, 40);
    let text = chrome_trace(&records);
    let doc = traceview::parse_json(&text).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(traceview::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last: std::collections::BTreeMap<(u64, u64), u64> = std::collections::BTreeMap::new();
    for e in events {
        let pid = e.get("pid").and_then(traceview::Json::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(traceview::Json::as_u64).unwrap_or(0);
        let ts = e
            .get("ts")
            .and_then(traceview::Json::as_u64)
            .expect("every event carries an integer ts");
        let prev = last.entry((pid, tid)).or_insert(0);
        assert!(
            ts >= *prev,
            "ts must be non-decreasing per (pid,tid): {ts} after {prev}"
        );
        *prev = ts;
    }
}

#[test]
fn critical_path_render_matches_committed_fixture() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let trace = std::fs::read_to_string(format!("{dir}/trace_tiny.jsonl")).unwrap();
    let expected = std::fs::read_to_string(format!("{dir}/trace_tiny_critical.txt")).unwrap();
    let events = traceview::parse_jsonl(&trace).unwrap();
    let path = traceview::critical_path(&events);
    let rendered = traceview::render_critical_path("trace_tiny.jsonl", path.as_ref());
    assert_eq!(rendered, expected, "pinned critical-path output changed");
}

#[test]
fn wheel_and_heap_churn_traces_diff_clean() {
    let wheel = run_event_churn_traced::<WheelQueue>(60, 4, 30);
    let heap = run_event_churn_traced::<HeapQueue>(60, 4, 30);
    let wheel_text = jsonl_trace(&wheel);
    let heap_text = jsonl_trace(&heap);
    assert_eq!(
        wheel_text, heap_text,
        "queue choice must be trace-invisible"
    );
    let ew = traceview::parse_jsonl(&wheel_text).unwrap();
    let eh = traceview::parse_jsonl(&heap_text).unwrap();
    let diff = traceview::render_diff("wheel", &wheel_text, &ew, "heap", &heap_text, &eh);
    assert!(
        diff.contains("verdict: traces are byte-identical"),
        "diff verdict missing:\n{diff}"
    );
    // Each token makes hops + 1 sends; the longest causal chain follows
    // one token end to end: 31 × 100 us links + 31 × 3 us handler dwell.
    let p = traceview::critical_path(&ew).expect("churn traces carry spans");
    assert_eq!(
        traceview::path_summary(&p),
        "critical path: trial 0 trace 1: 31 hops, 3193 us end-to-end (0 -> 3193 us)"
    );
}
