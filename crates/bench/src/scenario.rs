//! The `Scenario` experiment API and its parallel trial engine.
//!
//! Every evaluation artifact (Figures 5–13, Table 3, the ablation) is a
//! [`Scenario`]: a named experiment that expands a [`Params`] bundle into a
//! list of independent [`Trial`] descriptors, runs each trial in its own
//! `Simulator` with RNG streams derived from the trial seed, and renders
//! the ordered list of [`TrialReport`]s into the figure's table/CSV text.
//!
//! Because trials are *values* — a setup name, a parameter point, and a
//! seed — they can execute on any worker thread in any order. The engine
//! ([`run_trials`]) collects results **by trial index, not arrival order**,
//! and `render` only ever sees that ordered slice, so the rendered output
//! is byte-identical for `--jobs 1`, `--jobs 8`, or any other worker count.
//!
//! The shared [`run_scenario`] driver owns CLI parsing (`--nodes`, `--seed`,
//! `--jobs`, `--json`, plus scenario-specific `--key value` overrides), so
//! individual scenarios never touch `std::env`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use totoro_simnet::TrialReport as SimAccounting;
use totoro_simnet::{chrome_trace_multi, jsonl_trace_multi, RecordingSink, TraceRecord};

/// Common experiment parameters, parsed once by the driver.
///
/// `nodes`/`seed` seed every scenario's sweep; `extra` carries
/// scenario-specific `--key value` overrides (e.g. `--dataset femnist`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Params {
    /// Base network size for the sweep (scenario-defined meaning).
    pub nodes: usize,
    /// Master seed; every trial derives its own streams from this.
    pub seed: u64,
    /// Worker threads for the trial engine (1 = serial).
    pub jobs: usize,
    /// Emit machine-readable JSON reports instead of rendered text.
    pub json: bool,
    /// Write an execution trace to this path (`.jsonl` → JSONL, anything
    /// else → Chrome `trace_event` JSON). `None` keeps the zero-cost
    /// [`totoro_simnet::NoopSink`] installed.
    pub trace: Option<String>,
    /// Restrict buffered trace records to this layer tag (metrics still
    /// aggregate over every layer). Validated against [`KNOWN_LAYERS`] at
    /// parse time.
    pub trace_filter: Option<String>,
    /// Write wall-clock engine timings (a nondeterministic side channel,
    /// never part of golden stdout) to this path. Scenarios that support
    /// it attach per-trial payloads via [`TrialReport::push_side`].
    pub profile_wall: Option<String>,
    /// Suppress progress lines on stderr (`--quiet`).
    pub quiet: bool,
    /// Emit debug detail on stderr (`--verbose`).
    pub verbose: bool,
    /// Scenario-specific `--key value` overrides, in CLI order.
    pub extra: Vec<(String, String)>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nodes: 300,
            seed: 42,
            jobs: 1,
            json: false,
            trace: None,
            trace_filter: None,
            profile_wall: None,
            quiet: false,
            verbose: false,
            extra: Vec::new(),
        }
    }
}

/// Layer tags a simulation can emit, and therefore the only values
/// `--trace-filter` accepts. A typo'd filter used to buffer zero records
/// silently; now it is rejected at parse time with this list.
pub const KNOWN_LAYERS: &[&str] = &["app", "central", "dht", "fl", "forest", "sim"];

/// Validates a `--trace-filter` value: one layer tag or a
/// comma-separated list (`forest,dht`), each element checked against
/// [`KNOWN_LAYERS`]. Returns the normalized (trimmed, comma-joined)
/// list; the caller maps `Err` to the usual exit-2 usage contract.
pub fn validate_trace_filter(value: &str) -> Result<String, String> {
    let mut layers = Vec::new();
    for raw in value.split(',') {
        let layer = raw.trim();
        if layer.is_empty() {
            return Err(format!(
                "--trace-filter: empty layer in {value:?}; expected a comma-separated list of: {}",
                KNOWN_LAYERS.join(", ")
            ));
        }
        if !KNOWN_LAYERS.contains(&layer) {
            return Err(format!(
                "--trace-filter: unknown layer {layer:?}; valid layers: {}",
                KNOWN_LAYERS.join(", ")
            ));
        }
        layers.push(layer);
    }
    Ok(layers.join(","))
}

impl Params {
    /// Returns the `extra` override for `key`, if present.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extra
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Returns the `extra` override for `key` parsed as `usize`.
    pub fn extra_usize(&self, key: &str, default: usize) -> usize {
        self.extra(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Returns the `extra` override for `key` as a string, with a default.
    pub fn extra_str(&self, key: &str, default: &str) -> String {
        self.extra(key).unwrap_or(default).to_string()
    }
}

/// A self-contained unit of work: one simulation run.
///
/// A trial is pure data — setup name, ordered parameter point, seed — so the
/// engine can hand it to any worker thread. `Scenario::run` reconstructs the
/// full experiment from these fields alone; nothing is shared between trials
/// except read-only scenario state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trial {
    /// Position in the sweep; render order is ascending `index`.
    pub index: usize,
    /// Sub-experiment this trial belongs to (e.g. `"zones"`, `"udp"`).
    pub setup: String,
    /// The parameter point, as ordered `key=value` pairs.
    pub point: Vec<(String, u64)>,
    /// Seed for this trial's RNG streams (`sub_rng(seed, label)`).
    pub seed: u64,
}

impl Trial {
    /// Creates a trial; `index` is assigned by [`Trial::seal`] or manually.
    pub fn new(setup: &str, seed: u64) -> Self {
        Trial {
            index: 0,
            setup: setup.to_string(),
            point: Vec::new(),
            seed,
        }
    }

    /// Adds one coordinate of the parameter point.
    pub fn with(mut self, key: &str, value: u64) -> Self {
        self.point.push((key.to_string(), value));
        self
    }

    /// Returns coordinate `key`, panicking if the trial lacks it — a trial
    /// descriptor and its scenario are built as a pair, so a miss is a bug.
    pub fn get(&self, key: &str) -> u64 {
        self.point
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| {
                panic!(
                    "trial {}/{} lacks point key {key:?}",
                    self.setup, self.index
                )
            })
    }

    /// [`Trial::get`] as a `usize`.
    pub fn get_usize(&self, key: &str) -> usize {
        self.get(key) as usize
    }

    /// Stable human-readable label, e.g. `zones[n=300,seed=42]#3`.
    pub fn label(&self) -> String {
        let point: Vec<String> = self.point.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}[{}]#{}", self.setup, point.join(","), self.index)
    }

    /// Assigns ascending indices to a freshly built sweep.
    pub fn seal(mut trials: Vec<Trial>) -> Vec<Trial> {
        for (i, t) in trials.iter_mut().enumerate() {
            t.index = i;
        }
        trials
    }
}

/// The result of one trial, returned by value.
///
/// `sim` carries the simulator's accounting (traffic, compute, memory,
/// event counts) when the trial ran one; `metrics` are the scenario's
/// derived scalars in a fixed order; `series` holds (x, y) curves such as
/// time-to-accuracy traces. All fields serialize deterministically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialReport {
    /// Which trial produced this report (copied from [`Trial::index`]).
    pub index: usize,
    /// The trial's setup name.
    pub setup: String,
    /// Simulator accounting, summed if the trial ran several simulators.
    pub sim: SimAccounting,
    /// Ordered scalar results (`name`, value).
    pub metrics: Vec<(String, f64)>,
    /// Ordered curves (`name`, points).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Pre-formatted table rows contributed by this trial.
    pub rows: Vec<Vec<String>>,
    /// Free-form commentary lines (e.g. paper-claim checks).
    pub notes: Vec<String>,
    /// Named side-channel payloads (`name`, JSON text), excluded from
    /// [`TrialReport::to_json`]. Wall-clock profiles travel here — they
    /// are nondeterministic by nature, so the driver routes them to side
    /// files (`--profile-wall`) and golden stdout never sees them.
    pub side: Vec<(String, String)>,
}

impl TrialReport {
    /// Creates an empty report for a trial.
    pub fn for_trial(trial: &Trial) -> Self {
        TrialReport {
            index: trial.index,
            setup: trial.setup.clone(),
            ..TrialReport::default()
        }
    }

    /// Appends a scalar metric.
    pub fn push_metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Appends a named curve.
    pub fn push_series(&mut self, name: &str, points: Vec<(f64, f64)>) {
        self.series.push((name.to_string(), points));
    }

    /// Appends a pre-formatted table row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a commentary line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Attaches a named side-channel payload (JSON text). Side payloads
    /// are excluded from [`TrialReport::to_json`] and every rendered
    /// surface; the driver collects them per trial (see
    /// [`execute_with_sides`]).
    pub fn push_side(&mut self, name: &str, payload: String) {
        self.side.push((name.to_string(), payload));
    }

    /// Returns the side payload `name`, if the trial attached one.
    pub fn side(&self, name: &str) -> Option<&str> {
        self.side
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns metric `name`, panicking on a miss (report/render are built
    /// as a pair; a miss is a bug, not an input error).
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("report {}#{} lacks metric {name:?}", self.setup, self.index))
    }

    /// Returns curve `name`, panicking on a miss.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or_else(|| panic!("report {}#{} lacks series {name:?}", self.setup, self.index))
    }

    /// Deterministic JSON rendering: fixed key order, `{:?}`-free float
    /// formatting via Rust's shortest-roundtrip `Display`.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("{}:{}", json_str(k), json_f64(*v)))
            .collect();
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(k, pts)| {
                let pts: Vec<String> = pts
                    .iter()
                    .map(|(x, y)| format!("[{},{}]", json_f64(*x), json_f64(*y)))
                    .collect();
                format!("{}:[{}]", json_str(k), pts.join(","))
            })
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_str(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        let notes: Vec<String> = self.notes.iter().map(|n| json_str(n)).collect();
        format!(
            "{{\"index\":{},\"setup\":{},\"sim\":{},\"metrics\":{{{}}},\"series\":{{{}}},\"rows\":[{}],\"notes\":[{}]}}",
            self.index,
            json_str(&self.setup),
            self.sim.to_json(),
            metrics.join(","),
            series.join(","),
            rows.join(","),
            notes.join(","),
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, so `Display` output is fine.
        s
    } else {
        "null".to_string()
    }
}

/// What [`Scenario::run_traced`] should record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceOptions {
    /// Buffer only records whose layer tag equals this (e.g. `"forest"`);
    /// `None` buffers everything.
    pub filter: Option<String>,
}

impl TraceOptions {
    /// Options derived from the driver's `--trace-filter` flag.
    pub fn from_params(params: &Params) -> Self {
        TraceOptions {
            filter: params.trace_filter.clone(),
        }
    }
}

/// Which trace sink a trial's simulators should run with.
///
/// The engine builds one spec per execution — untraced for plain runs,
/// traced when `--trace` was given — and passes it to every
/// [`Scenario::run_with_sink`] call. Scenarios that support tracing call
/// [`SinkSpec::recording`] per simulator; `None` means run with the
/// zero-cost [`totoro_simnet::NoopSink`]. Scenarios that never trace
/// simply ignore the spec.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SinkSpec {
    trace: Option<TraceOptions>,
}

impl SinkSpec {
    /// A spec requesting no tracing (the common case).
    pub fn untraced() -> Self {
        SinkSpec { trace: None }
    }

    /// A spec requesting record buffering with `opts`.
    pub fn traced(opts: TraceOptions) -> Self {
        SinkSpec { trace: Some(opts) }
    }

    /// Whether tracing was requested.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    /// A fresh [`RecordingSink`] honoring the requested layer filter, or
    /// `None` when the trial should run untraced. Every simulator needs
    /// its own sink; call this once per simulator built.
    pub fn recording(&self) -> Option<RecordingSink> {
        self.trace
            .as_ref()
            .map(|opts| RecordingSink::new(0).with_layer_filter(opts.filter.clone()))
    }
}

/// One registered experiment: expansion, execution, and rendering.
///
/// Implementations must be `Sync`: `run` is called concurrently from worker
/// threads with only `&self`, and all trial state must come from the
/// [`Trial`] value.
pub trait Scenario: Sync {
    /// Registry name (also the CLI subcommand), e.g. `"fig7"`.
    fn name(&self) -> &'static str;

    /// One-line description shown by `totoro-bench --list`.
    fn description(&self) -> &'static str;

    /// Default parameters for this scenario's sweep.
    fn default_params(&self) -> Params {
        Params::default()
    }

    /// Expands parameters into the ordered trial list.
    fn trials(&self, params: &Params) -> Vec<Trial>;

    /// Runs one trial to completion under the requested sink — the single
    /// execution entry point. Plain runs receive [`SinkSpec::untraced`];
    /// traced runs receive a spec whose [`SinkSpec::recording`] yields a
    /// buffering sink per simulator, and the scenario returns the drained
    /// records alongside the report. Scenarios that never trace ignore
    /// `sink` and return `None` records (the driver reports an empty
    /// trace).
    ///
    /// Contract: the report must be byte-for-byte identical whether or
    /// not tracing was requested (sinks observe, never perturb), except
    /// for the optional `sim.obs` metrics section.
    fn run_with_sink(
        &self,
        trial: &Trial,
        sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>);

    /// Compat shim: [`Scenario::run_with_sink`] untraced, report only.
    fn run(&self, trial: &Trial) -> TrialReport {
        self.run_with_sink(trial, &SinkSpec::untraced()).0
    }

    /// Compat shim: [`Scenario::run_with_sink`] with tracing requested.
    fn run_traced(
        &self,
        trial: &Trial,
        opts: &TraceOptions,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        self.run_with_sink(trial, &SinkSpec::traced(opts.clone()))
    }

    /// Renders the ordered reports into the artifact text.
    ///
    /// `reports[i]` corresponds to `trials(params)[i]`; rendering must not
    /// depend on anything but `params` and the reports, so output is
    /// byte-identical across worker counts.
    fn render(&self, params: &Params, reports: &[TrialReport]) -> String;
}

/// Runs `trials` on `jobs` worker threads, returning reports in trial order.
///
/// Workers claim trials from a shared atomic counter (striding in submission
/// order) and write each report into its trial's slot, so the returned
/// `Vec` is ordered by [`Trial::index`] regardless of completion order.
/// Panics in any trial propagate after all workers stop.
pub fn run_trials(scenario: &dyn Scenario, trials: &[Trial], jobs: usize) -> Vec<TrialReport> {
    run_trials_with(trials.len(), jobs, |i| scenario.run(&trials[i]))
}

/// The generic trial engine behind [`run_trials`]: runs `run(0..count)` on
/// `jobs` worker threads and returns results **indexed by trial, not by
/// completion order** — the property every determinism guarantee in this
/// crate rests on. Generic over the result type so traced runs (report +
/// record buffer) use the same engine as plain runs.
pub fn run_trials_with<R: Send>(
    count: usize,
    jobs: usize,
    run: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // det: allow(ordering: work-stealing ticket counter; which worker runs trial i is invisible because results land in per-index slots merged in index order)
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = run(i);
                // det: allow(lock: per-trial result slot keyed by trial index; each slot is written once and read only after the scope joins, so lock order cannot reach the merged output)
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("trial {i} produced no result"))
        })
        .collect()
}

/// Parses driver-owned CLI flags over a scenario's defaults.
///
/// Recognized: `--nodes N`, `--seed S`, `--jobs J`, `--json`; every other
/// `--key value` pair lands in [`Params::extra`] for the scenario to
/// interpret. Returns an error string on malformed input.
pub fn parse_params(defaults: Params, args: &[String]) -> Result<Params, String> {
    let mut params = defaults;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        match key {
            "json" => {
                params.json = true;
                continue;
            }
            "quiet" => {
                params.quiet = true;
                continue;
            }
            "verbose" => {
                params.verbose = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{key} expects a value"));
        };
        match key {
            "nodes" => {
                params.nodes = value
                    .parse()
                    .map_err(|_| format!("--nodes expects an integer, got {value:?}"))?;
            }
            "seed" => {
                params.seed = value
                    .parse()
                    .map_err(|_| format!("--seed expects an integer, got {value:?}"))?;
            }
            "jobs" => {
                params.jobs = value
                    .parse()
                    .map_err(|_| format!("--jobs expects an integer, got {value:?}"))?;
                if params.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "trace" => params.trace = Some(value.clone()),
            "trace-filter" => {
                params.trace_filter = Some(validate_trace_filter(value)?);
            }
            "profile-wall" => params.profile_wall = Some(value.clone()),
            _ => params.extra.push((key.to_string(), value.clone())),
        }
    }
    Ok(params)
}

/// Expands, executes, and renders a scenario; returns the output text.
///
/// This is the whole experiment pipeline behind one call, shared by the
/// `totoro-bench` CLI, the per-figure shim binaries, and the determinism
/// tests (which compare its output byte-for-byte across `jobs` settings).
pub fn execute(scenario: &dyn Scenario, params: &Params) -> String {
    execute_traced(scenario, params).0
}

/// [`execute`] plus the serialized trace, when `params.trace` is set.
///
/// Traced trials run through the same parallel engine; record buffers are
/// collected **by trial index**, so the serialized trace — like the
/// rendered output — is byte-identical across `--jobs` settings. The trace
/// format follows the target path: `.jsonl` → JSONL (one record per line,
/// each tagged with its trial index), anything else → Chrome `trace_event`
/// JSON with one `pid` per trial.
pub fn execute_traced(scenario: &dyn Scenario, params: &Params) -> (String, Option<String>) {
    let (out, trace, _sides) = execute_with_sides(scenario, params);
    (out, trace)
}

/// [`execute_traced`] plus the per-trial side-channel payloads, in trial
/// order as `(trial index, name, payload)`. Side payloads never appear in
/// [`TrialReport::to_json`]; a scenario's `render` may consult
/// *deterministic* sides (e.g. an engine profile) but must never render a
/// wall-clock one — those exist precisely because they cannot be golden.
pub fn execute_with_sides(
    scenario: &dyn Scenario,
    params: &Params,
) -> (String, Option<String>, Vec<(usize, String, String)>) {
    let trials = Trial::seal(scenario.trials(params));
    let (reports, trace) = if params.trace.is_some() {
        let spec = SinkSpec::traced(TraceOptions::from_params(params));
        let results = run_trials_with(trials.len(), params.jobs, |i| {
            scenario.run_with_sink(&trials[i], &spec)
        });
        let mut reports = Vec::with_capacity(results.len());
        let mut groups: Vec<(u64, Vec<TraceRecord>)> = Vec::new();
        for (i, (report, records)) in results.into_iter().enumerate() {
            reports.push(report);
            if let Some(records) = records {
                groups.push((i as u64, records));
            }
        }
        if groups.is_empty() {
            // `run_with_sink` returned no records for any trial: this
            // scenario has not been wired for tracing (only the scenario
            // knows which simulator runs to record).
            crate::logging::info(format_args!(
                "note: scenario {:?} does not implement tracing; the trace will be empty",
                scenario.name()
            ));
        }
        let refs: Vec<(u64, &[TraceRecord])> = groups
            .iter()
            .map(|(pid, records)| (*pid, records.as_slice()))
            .collect();
        let jsonl = params
            .trace
            .as_deref()
            .is_some_and(|p| p.ends_with(".jsonl"));
        let trace = if jsonl {
            jsonl_trace_multi(&refs)
        } else {
            chrome_trace_multi(&refs)
        };
        (reports, Some(trace))
    } else {
        (run_trials(scenario, &trials, params.jobs), None)
    };
    let mut sides = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        for (name, payload) in &report.side {
            sides.push((i, name.clone(), payload.clone()));
        }
    }
    let out = if params.json {
        let lines: Vec<String> = reports.iter().map(TrialReport::to_json).collect();
        format!("[{}]\n", lines.join(",\n "))
    } else {
        scenario.render(params, &reports)
    };
    (out, trace, sides)
}

/// CLI driver: parses `args`, runs the scenario, prints the output.
///
/// Installs the stderr verbosity from `--quiet`/`--verbose`, writes the
/// trace file when `--trace PATH` was given, and exits the process with
/// status 2 on a malformed command line.
pub fn run_scenario(scenario: &dyn Scenario, args: &[String]) {
    match parse_params(scenario.default_params(), args) {
        Ok(params) => {
            crate::logging::set_level(crate::logging::level_from_flags(
                params.quiet,
                params.verbose,
            ));
            let (out, trace, sides) = execute_with_sides(scenario, &params);
            if let Some(path) = params.profile_wall.as_deref() {
                let trials: Vec<String> = sides
                    .iter()
                    .filter(|(_, name, _)| name == "wall_profile")
                    .map(|(i, _, payload)| {
                        // Payloads are JSON objects; tag each with its trial.
                        format!("{{\"trial\":{i},{}", &payload[1..])
                    })
                    .collect();
                let doc = format!(
                    "{{\"schema\":\"totoro-wall-profile/v1\",\"scenario\":\"{}\",\"trials\":[{}]}}\n",
                    scenario.name(),
                    trials.join(","),
                );
                match std::fs::write(path, &doc) {
                    Ok(()) => crate::logging::info(format_args!(
                        "{}: wrote wall profile ({} trials) to {path}",
                        scenario.name(),
                        trials.len()
                    )),
                    Err(e) => {
                        crate::logging::error(format_args!(
                            "cannot write wall profile {path}: {e}"
                        ));
                        std::process::exit(1);
                    }
                }
                if trials.is_empty() {
                    crate::logging::info(format_args!(
                        "note: scenario {:?} attached no wall profiles; the file is empty",
                        scenario.name()
                    ));
                }
            }
            if let (Some(path), Some(trace)) = (params.trace.as_deref(), trace) {
                match std::fs::write(path, &trace) {
                    Ok(()) => crate::logging::info(format_args!(
                        "{}: wrote {} trace bytes to {path}",
                        scenario.name(),
                        trace.len()
                    )),
                    Err(e) => {
                        crate::logging::error(format_args!("cannot write trace {path}: {e}"));
                        std::process::exit(1);
                    }
                }
            }
            crate::report::emit(&out);
        }
        Err(msg) => {
            crate::logging::error(format_args!("{}: {msg}", scenario.name()));
            crate::logging::info(format_args!(
                "usage: {} [--nodes N] [--seed S] [--jobs J] [--json] [--trace PATH] \
                 [--trace-filter L1,L2,...] [--profile-wall PATH] [--quiet] [--verbose] \
                 [--key value ...]",
                scenario.name()
            ));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Scenario for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn description(&self) -> &'static str {
            "test scenario"
        }
        fn trials(&self, params: &Params) -> Vec<Trial> {
            Trial::seal(
                (0..params.nodes)
                    .map(|i| Trial::new("echo", params.seed).with("i", i as u64))
                    .collect(),
            )
        }
        fn run_with_sink(
            &self,
            trial: &Trial,
            _sink: &SinkSpec,
        ) -> (TrialReport, Option<Vec<TraceRecord>>) {
            let mut r = TrialReport::for_trial(trial);
            // Uneven work so completion order differs from trial order.
            let spins = (trial.index % 7) * 1_000;
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k as u64).rotate_left(1);
            }
            std::hint::black_box(acc);
            r.push_metric("i", trial.get("i") as f64);
            (r, None)
        }
        fn render(&self, _params: &Params, reports: &[TrialReport]) -> String {
            let vals: Vec<String> = reports
                .iter()
                .map(|r| format!("{}", r.metric("i")))
                .collect();
            vals.join(",")
        }
    }

    #[test]
    fn reports_come_back_in_trial_order() {
        let params = Params {
            nodes: 40,
            ..Params::default()
        };
        let trials = Trial::seal(Echo.trials(&params));
        let reports = run_trials(&Echo, &trials, 8);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.metric("i"), i as f64);
        }
    }

    #[test]
    fn jobs_do_not_change_output() {
        let mut p1 = Params {
            nodes: 25,
            ..Params::default()
        };
        let mut p8 = p1.clone();
        p1.jobs = 1;
        p8.jobs = 8;
        assert_eq!(execute(&Echo, &p1), execute(&Echo, &p8));
    }

    #[test]
    fn compat_shims_delegate_to_run_with_sink() {
        let params = Params {
            nodes: 3,
            ..Params::default()
        };
        let trials = Trial::seal(Echo.trials(&params));
        let (via_sink, records) = Echo.run_with_sink(&trials[1], &SinkSpec::untraced());
        assert!(records.is_none());
        assert_eq!(Echo.run(&trials[1]), via_sink);
        let (traced, records) = Echo.run_traced(&trials[1], &TraceOptions::default());
        assert_eq!(traced, via_sink);
        assert!(records.is_none());
    }

    #[test]
    fn sink_spec_builds_recording_sinks_only_when_traced() {
        assert!(!SinkSpec::untraced().is_traced());
        assert!(SinkSpec::untraced().recording().is_none());
        let spec = SinkSpec::traced(TraceOptions {
            filter: Some("forest".into()),
        });
        assert!(spec.is_traced());
        assert!(spec.recording().is_some());
    }

    /// Two trials rendezvous at a barrier inside `run`: this can only
    /// complete if the pool really executes them on distinct threads at the
    /// same time (a serial engine would deadlock and time out).
    #[test]
    fn workers_actually_run_concurrently() {
        struct Rendezvous(std::sync::Barrier);
        impl Scenario for Rendezvous {
            fn name(&self) -> &'static str {
                "rendezvous"
            }
            fn description(&self) -> &'static str {
                "test"
            }
            fn trials(&self, _params: &Params) -> Vec<Trial> {
                Trial::seal(vec![Trial::new("a", 0), Trial::new("b", 0)])
            }
            fn run_with_sink(
                &self,
                trial: &Trial,
                _sink: &SinkSpec,
            ) -> (TrialReport, Option<Vec<TraceRecord>>) {
                self.0.wait();
                (TrialReport::for_trial(trial), None)
            }
            fn render(&self, _params: &Params, reports: &[TrialReport]) -> String {
                format!("{}", reports.len())
            }
        }
        let scenario = Rendezvous(std::sync::Barrier::new(2));
        let trials = Trial::seal(scenario.trials(&Params::default()));
        let reports = run_trials(&scenario, &trials, 2);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn parse_params_recognizes_driver_flags() {
        let args: Vec<String> = [
            "--nodes",
            "500",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--json",
            "--dataset",
            "femnist",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = parse_params(Params::default(), &args).unwrap();
        assert_eq!(p.nodes, 500);
        assert_eq!(p.seed, 7);
        assert_eq!(p.jobs, 4);
        assert!(p.json);
        assert_eq!(p.extra("dataset"), Some("femnist"));
        assert_eq!(p.extra_str("dataset", "speech"), "femnist");
        assert_eq!(p.extra_usize("missing", 9), 9);
    }

    #[test]
    fn parse_params_rejects_bad_input() {
        for bad in [
            vec!["positional"],
            vec!["--nodes"],
            vec!["--nodes", "abc"],
            vec!["--jobs", "0"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(parse_params(Params::default(), &args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn trace_filter_validates_layer_names() {
        let ok: Vec<String> = ["--trace-filter", "dht"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_params(Params::default(), &ok).unwrap().trace_filter,
            Some("dht".to_string())
        );
        let bad: Vec<String> = ["--trace-filter", "dhtt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_params(Params::default(), &bad).unwrap_err();
        assert!(err.contains("unknown layer \"dhtt\""), "{err}");
        for layer in KNOWN_LAYERS {
            assert!(err.contains(layer), "error must list {layer}: {err}");
        }
    }

    #[test]
    fn trace_filter_accepts_comma_separated_lists_validated_per_element() {
        let ok: Vec<String> = ["--trace-filter", "forest, dht"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_params(Params::default(), &ok).unwrap().trace_filter,
            Some("forest,dht".to_string()),
            "elements are trimmed and re-joined normalized"
        );
        let bad: Vec<String> = ["--trace-filter", "forest,dhtt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_params(Params::default(), &bad).unwrap_err();
        assert!(err.contains("unknown layer \"dhtt\""), "{err}");
        let empty: Vec<String> = ["--trace-filter", "forest,,dht"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = parse_params(Params::default(), &empty).unwrap_err();
        assert!(err.contains("empty layer"), "{err}");
    }

    #[test]
    fn profile_wall_flag_parses() {
        let args: Vec<String> = ["--profile-wall", "wall.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = parse_params(Params::default(), &args).unwrap();
        assert_eq!(p.profile_wall, Some("wall.json".to_string()));
        assert_eq!(Params::default().profile_wall, None);
    }

    #[test]
    fn side_payloads_stay_off_json_and_reach_the_driver() {
        struct Sided;
        impl Scenario for Sided {
            fn name(&self) -> &'static str {
                "sided"
            }
            fn description(&self) -> &'static str {
                "test"
            }
            fn trials(&self, _params: &Params) -> Vec<Trial> {
                Trial::seal(vec![Trial::new("a", 0), Trial::new("b", 0)])
            }
            fn run_with_sink(
                &self,
                trial: &Trial,
                _sink: &SinkSpec,
            ) -> (TrialReport, Option<Vec<TraceRecord>>) {
                let mut r = TrialReport::for_trial(trial);
                if trial.index == 1 {
                    r.push_side("wall_profile", "{\"wall\":123}".to_string());
                }
                (r, None)
            }
            fn render(&self, _params: &Params, reports: &[TrialReport]) -> String {
                format!("{}", reports.len())
            }
        }
        let params = Params {
            json: true,
            ..Params::default()
        };
        let (out, _trace, sides) = execute_with_sides(&Sided, &params);
        assert!(
            !out.contains("wall_profile"),
            "side leaked into JSON: {out}"
        );
        assert_eq!(
            sides,
            vec![(1, "wall_profile".to_string(), "{\"wall\":123}".to_string())]
        );
        let mut r = TrialReport::default();
        r.push_side("wall_profile", "{}".to_string());
        assert_eq!(r.side("wall_profile"), Some("{}"));
        assert_eq!(r.side("missing"), None);
        assert!(!r.to_json().contains("wall_profile"));
    }

    #[test]
    fn trial_label_and_accessors() {
        let t = Trial::new("zones", 42).with("n", 300);
        assert_eq!(t.get("n"), 300);
        assert_eq!(t.get_usize("n"), 300);
        assert_eq!(t.label(), "zones[n=300]#0");
    }

    #[test]
    fn report_json_is_deterministic() {
        let mut r = TrialReport {
            setup: "s".into(),
            ..TrialReport::default()
        };
        r.push_metric("a", 1.5);
        r.push_series("curve", vec![(0.0, 1.0), (2.0, 3.5)]);
        assert_eq!(r.to_json(), r.clone().to_json());
        assert!(r.to_json().contains("\"metrics\":{\"a\":1.5}"));
        assert!(r.to_json().contains("\"curve\":[[0,1],[2,3.5]]"));
    }
}
