//! Figures 8 and 9: time-to-accuracy curves of Totoro, OpenFL-like, and
//! FedScale-like engines when 1/5/10/20 applications train concurrently.
//!
//! Figure 8 uses the mid-scale "speech" task (paper: Google Speech), Figure
//! 9 the large-scale "femnist" task (paper: FEMNIST). The paper's
//! observations to reproduce: (1) Totoro's curves barely move as the app
//! count grows (§7.4 reports 15.41 h -> 15.47 h from 1 to 20 models);
//! (2) the centralized engines' curves stretch out with the app count.

use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_ml::{AccuracyPoint, TaskGenerator};
use totoro_simnet::{sub_rng, SimTime, TraceRecord};

use crate::report::{csv_block, f3};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::scenarios::table3::{apply_device_class, topology_for};
use crate::setups::{fl_app_config, target_for, task_by_name, to_central_spec, totoro_with_apps};

const MAX_SIM: SimTime = SimTime::from_micros(48 * 3_600 * 1_000_000);

/// Time-to-accuracy scenario: `fig8` (speech) or `fig9` (femnist).
pub struct Tta {
    figure: u8,
    dataset: &'static str,
}

/// Figure 8 (`fig8`): speech-task time-to-accuracy.
pub const FIG8: Tta = Tta {
    figure: 8,
    dataset: "speech",
};

/// Figure 9 (`fig9`): femnist-task time-to-accuracy.
pub const FIG9: Tta = Tta {
    figure: 9,
    dataset: "femnist",
};

fn apps_list(params: &Params) -> Vec<usize> {
    params
        .extra_str("apps", "1,5,10,20")
        .split(',')
        .filter_map(|x| x.trim().parse().ok())
        .collect()
}

impl Tta {
    fn samples(&self, params: &Params) -> usize {
        let samples = params.extra_usize("samples", 30);
        if self.dataset == "femnist" {
            samples * 3
        } else {
            samples
        }
    }
}

impl Scenario for Tta {
    fn name(&self) -> &'static str {
        match self.figure {
            8 => "fig8",
            _ => "fig9",
        }
    }

    fn description(&self) -> &'static str {
        match self.figure {
            8 => "Fig. 8: time-to-accuracy curves (speech task)",
            _ => "Fig. 9: time-to-accuracy curves (femnist task)",
        }
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 48,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let samples = self.samples(params) as u64;
        let fanout = params.extra_usize("fanout", 32) as u64;
        let mut trials = Vec::new();
        for num_apps in apps_list(params) {
            for engine in ["totoro", "openfl", "fedscale"] {
                trials.push(
                    Trial::new(engine, params.seed)
                        .with("n", params.nodes as u64)
                        .with("samples", samples)
                        .with("apps", num_apps as u64)
                        .with("fanout", fanout),
                );
            }
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = trial.get_usize("n");
        let samples = trial.get_usize("samples");
        let num_apps = trial.get_usize("apps");
        let seed = trial.seed;
        let mut report = TrialReport::for_trial(trial);

        let mut gen_rng = sub_rng(seed, "task");
        let generator = TaskGenerator::new(task_by_name(self.dataset), &mut gen_rng);

        if trial.setup == "totoro" {
            let fanout = trial.get_usize("fanout");
            let mut topology = topology_for(n, seed);
            apply_device_class(&mut topology, self.dataset);
            let mut deploy =
                totoro_with_apps(topology, seed, fanout, num_apps, &generator, samples, 60);
            deploy.run(MAX_SIM);
            let total = (0..num_apps)
                .filter_map(|a| deploy.curve(a).last().map(|p| p.time_secs))
                .fold(0.0, f64::max);
            report.push_metric("total_s", total);
            curve_rows(&mut report, &deploy.curve(0));
        } else {
            let profile = match trial.setup.as_str() {
                "openfl" => ServerProfile::openfl_like(),
                "fedscale" => ServerProfile::fedscale_like(),
                other => panic!("tta has no engine {other:?}"),
            };
            let mut topology = topology_for(n + 1, seed);
            apply_device_class(&mut topology, self.dataset);
            let mut engine = CentralizedEngine::new(topology, profile, seed);
            let participants: Vec<usize> = (1..=n).collect();
            let mut rng = sub_rng(seed, "shards");
            for a in 0..num_apps {
                let shards = generator.client_shards(n, samples, 0.5, &mut rng);
                let cfg = fl_app_config(
                    &format!("{}-app-{a}", generator.spec.name),
                    a as u64,
                    &generator,
                    48,
                    1_000 + a as u64,
                );
                engine.submit_app(to_central_spec(&cfg), &participants, shards);
            }
            engine.run(MAX_SIM);
            let total = (0..num_apps)
                .filter_map(|a| engine.server().curve(a).last().map(|p| p.time_secs))
                .fold(0.0, f64::max);
            report.push_metric("total_s", total);
            curve_rows(&mut report, engine.server().curve(0));
        }
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let figure = self.figure;
        let task = task_by_name(self.dataset);
        let mut out = format!(
            "# Figure {figure}: time-to-accuracy, dataset {} (target {:.1}%)\n",
            self.dataset,
            target_for(&task) * 100.0
        );
        let mut next = reports.iter();
        for num_apps in apps_list(params) {
            out.push_str(&format!("\n== {num_apps} concurrent applications ==\n"));
            for label in ["totoro", "openfl", "fedscale"] {
                let r = next.next().expect("tta report count matches trials");
                out.push_str(&format!(
                    "{label}: all apps finished by {:.0}s\n",
                    r.metric("total_s")
                ));
                out.push_str(&csv_block(
                    &format!("fig{figure}_{label}_{num_apps}apps"),
                    &["time_s", "round", "accuracy"],
                    &r.rows,
                ));
            }
        }
        out
    }
}

/// Stores a (time, round, accuracy) curve as pre-formatted CSV rows.
fn curve_rows(report: &mut TrialReport, curve: &[AccuracyPoint]) {
    for p in curve {
        report.push_row(vec![
            format!("{:.1}", p.time_secs),
            p.round.to_string(),
            f3(p.accuracy),
        ]);
    }
}
