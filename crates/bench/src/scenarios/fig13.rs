//! Figure 13: CPU and memory overhead of Totoro vs an OpenFL-like
//! centralized engine, training a feed-forward text-classification model
//! with a single 10-node dataflow tree (§7.6).
//!
//! * **13a (CPU)** — simulated CPU time split into FL-related tasks
//!   (training, aggregation, serialization, evaluation) and DHT-related
//!   tasks (overlay maintenance, routing, tree upkeep). The paper's
//!   finding: Totoro uses less FL CPU than OpenFL and its DHT housekeeping
//!   is negligible.
//! * **13b (memory)** — bytes of engine state (routing tables, leaf sets,
//!   trees, models, shards) per node over time; Totoro stays flat after
//!   overlay construction.

use totoro::TotoroDeployment;
use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_dht::DhtConfig;
use totoro_ml::{text_classification_like, TaskGenerator};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{sub_rng, Application, SimTime, Topology, TraceRecord};

use crate::report::{csv_block, f2, markdown_table};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{fl_app_config, to_central_spec};

/// Figure 13 scenario (`fig13`).
pub struct Fig13;

impl Scenario for Fig13 {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn description(&self) -> &'static str {
        "Fig. 13a-b: CPU and memory overhead vs OpenFL"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 10,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let samples = params.extra_usize("samples", 40) as u64;
        let rounds = params.extra_usize("rounds", 8) as u64;
        ["totoro", "openfl"]
            .iter()
            .map(|engine| {
                Trial::new(engine, params.seed)
                    .with("n", params.nodes as u64)
                    .with("samples", samples)
                    .with("rounds", rounds)
            })
            .collect()
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = trial.get_usize("n");
        let samples = trial.get_usize("samples");
        let rounds = trial.get("rounds");
        let seed = trial.seed;
        let step = SimTime::from_micros(5 * 1_000_000);

        let mut gen_rng = sub_rng(seed, "task");
        let generator = TaskGenerator::new(text_classification_like(), &mut gen_rng);
        let mut report = TrialReport::for_trial(trial);

        if trial.setup == "totoro" {
            let topology = Topology::uniform(n, 1_000, 5_000);
            let mut deploy = TotoroDeployment::new(
                topology,
                seed,
                DhtConfig::with_fanout(8),
                ForestConfig {
                    fanout_cap: 8,
                    ..ForestConfig::default()
                },
            );
            {
                let mut rng = sub_rng(seed, "shards");
                let shards = generator.client_shards(n, samples, 0.5, &mut rng);
                let mut cfg = fl_app_config("text-app", 0, &generator, 32, 1_000);
                cfg.target_accuracy = 2.0; // Run exactly `rounds` rounds.
                cfg.max_rounds = rounds;
                let participants: Vec<usize> = (0..n).collect();
                deploy.submit_app(cfg, &participants, shards);
            }
            let mut mem_series = Vec::new();
            let mut t = step;
            while !deploy.app_done(0) && t < SimTime::from_micros(3_600 * 1_000_000) {
                deploy.run(t);
                let mem: usize = (0..n).map(|i| deploy.sim().app(i).memory_bytes()).sum();
                mem_series.push((t.as_secs_f64(), mem as f64 / n as f64 / 1024.0));
                t = SimTime::from_micros(t.as_micros().saturating_add(step.as_micros()));
            }
            report.sim = totoro_simnet::TrialReport::capture(deploy.sim());
            report.push_metric("fl_s", report.sim.fl_us as f64 / 1e6);
            report.push_metric("dht_s", report.sim.dht_us as f64 / 1e6);
            report.push_series("mem_kib", mem_series);
        } else {
            let topology = Topology::uniform(n + 1, 1_000, 5_000);
            let mut engine = CentralizedEngine::new(topology, ServerProfile::openfl_like(), seed);
            let participants: Vec<usize> = (1..=n).collect();
            let mut rng = sub_rng(seed, "shards");
            let shards = generator.client_shards(n, samples, 0.5, &mut rng);
            let mut cfg = fl_app_config("text-app", 0, &generator, 32, 1_000);
            cfg.target_accuracy = 2.0; // Run exactly `rounds` rounds.
            cfg.max_rounds = rounds;
            engine.submit_app(to_central_spec(&cfg), &participants, shards);
            let mut mem_series = Vec::new();
            let mut t = step;
            while !engine.server().is_done(0) && t < SimTime::from_micros(3_600 * 1_000_000) {
                engine.run(t);
                let mem: usize = (0..=n).map(|i| engine.sim().app(i).memory_bytes()).sum();
                mem_series.push((t.as_secs_f64(), mem as f64 / (n + 1) as f64 / 1024.0));
                t = SimTime::from_micros(t.as_micros().saturating_add(step.as_micros()));
            }
            report.sim = totoro_simnet::TrialReport::capture(engine.sim());
            report.push_metric("fl_s", report.sim.fl_us as f64 / 1e6);
            report.push_metric("dht_s", report.sim.dht_us as f64 / 1e6);
            report.push_series("mem_kib", mem_series);
        }
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let rounds = params.extra_usize("rounds", 8);
        let mut out = format!(
            "# Figure 13: overhead of Totoro vs OpenFL (text model, {}-node tree)\n",
            params.nodes
        );
        let [totoro, openfl] = reports else {
            panic!("fig13 expects 2 reports, got {}", reports.len());
        };

        // 13a: CPU.
        let (tot_fl, tot_dht) = (totoro.metric("fl_s"), totoro.metric("dht_s"));
        let (ofl_fl, ofl_dht) = (openfl.metric("fl_s"), openfl.metric("dht_s"));
        let rows = vec![
            vec![
                "totoro".into(),
                f2(tot_fl),
                f2(tot_dht),
                f2(tot_fl + tot_dht),
            ],
            vec![
                "openfl".into(),
                f2(ofl_fl),
                f2(ofl_dht),
                f2(ofl_fl + ofl_dht),
            ],
        ];
        out.push_str(&markdown_table(
            &format!("Fig 13a: total simulated CPU seconds over {rounds} rounds"),
            &["engine", "FL tasks (s)", "DHT tasks (s)", "total (s)"],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig13a",
            &["engine", "fl_s", "dht_s", "total_s"],
            &rows,
        ));
        out.push_str(&format!(
            "\npaper check: Totoro adds only negligible DHT CPU -> DHT share {:.1}% of Totoro total\n",
            100.0 * tot_dht / (tot_fl + tot_dht).max(1e-6)
        ));
        out.push_str(&format!(
            "paper check: Totoro uses less FL CPU than OpenFL -> totoro {tot_fl:.1}s vs openfl {ofl_fl:.1}s\n"
        ));

        // 13b: memory.
        let totoro_mem = totoro.series("mem_kib");
        let openfl_mem = openfl.series("mem_kib");
        let tail = *openfl_mem.last().unwrap_or(&(0.0, 0.0));
        let rows: Vec<Vec<String>> = totoro_mem
            .iter()
            .zip(openfl_mem.iter().chain(std::iter::repeat(&tail)))
            .map(|(&(t, tm), &(_, om))| vec![format!("{t:.0}"), f2(tm), f2(om)])
            .collect();
        out.push_str(&markdown_table(
            "Fig 13b: mean engine state per node (KiB) over time",
            &["time (s)", "totoro KiB/node", "openfl KiB/node"],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig13b",
            &["time_s", "totoro_kib", "openfl_kib"],
            &rows,
        ));

        if let (Some(first), Some(last)) = (totoro_mem.first(), totoro_mem.last()) {
            out.push_str(&format!(
                "\npaper check: after DHT construction no further memory growth -> totoro {:.1} KiB -> {:.1} KiB\n",
                first.1, last.1
            ));
        }
        out
    }
}
