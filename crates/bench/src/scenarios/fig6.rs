//! Figure 6: model dissemination and gradient aggregation times for an
//! exponentially increasing number of edge nodes, plus the fanout sweep
//! (Fig. 6c) and the §7.3 O(log N) hop-count claim.
//!
//! The paper's claim: as tree size grows *exponentially* (20 → 5120), the
//! dissemination and aggregation times grow only *linearly*, because both
//! are bounded by tree depth = O(log N).

use crate::report::{csv_block, f2, f3, markdown_table};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{broadcast_from_root, build_tree, echo_overlay, eua_topology, root_of, topic};
use totoro_dht::{implicit_route_hops, random_ids, Id};
use totoro_simnet::{sub_rng, SimTime, TraceRecord};

/// Figure 6 scenario (`fig6`).
pub struct Fig6;

impl Scenario for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "Fig. 6a-c: dissemination/aggregation time vs N, fanout; O(log N) hops"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 5_120, // Maximum tree size of the exponential sweep.
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let model_bytes = params.extra_usize("model-kb", 96) as u64 * 1024;
        let mut trials = Vec::new();
        let mut n = 20;
        while n <= params.nodes {
            trials.push(
                Trial::new("scale", params.seed)
                    .with("n", n as u64)
                    .with("fanout", 16)
                    .with("model_bytes", model_bytes),
            );
            n *= 2;
        }
        let n_fixed = (params.nodes / 2).max(640) as u64;
        for fanout in [8u64, 16, 32] {
            trials.push(
                Trial::new("fanout", params.seed + 7)
                    .with("n", n_fixed)
                    .with("fanout", fanout)
                    .with("model_bytes", model_bytes),
            );
        }
        for n in [1_000u64, 10_000, 100_000, 1_000_000] {
            trials.push(Trial::new("hops", params.seed).with("n", n));
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let report = match trial.setup.as_str() {
            "scale" | "fanout" => run_measure(trial),
            "hops" => run_hops(trial),
            other => panic!("fig6 has no setup {other:?}"),
        };
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let mut out = format!(
            "# Figure 6: dissemination & aggregation scaling (seed={})\n",
            params.seed
        );

        // 6a + 6b: N sweep at fanout 16.
        let scale: Vec<&TrialReport> = reports.iter().filter(|r| r.setup == "scale").collect();
        let mut rows = Vec::new();
        for r in &scale {
            let n = r.metric("requested_n") as usize;
            let (diss_ms, agg_ms) = (r.metric("diss_ms"), r.metric("agg_ms"));
            let depth = r.metric("depth") as u16;
            rows.push(vec![
                n.to_string(),
                f2(diss_ms),
                f2(agg_ms),
                depth.to_string(),
            ]);
            out.push_str(&format!(
                "  n={n}: dissemination {diss_ms:.1} ms, aggregation {agg_ms:.1} ms, depth {depth}\n"
            ));
        }
        out.push_str(&markdown_table(
            "Fig 6a/6b: time vs #nodes (fanout 16)",
            &[
                "nodes",
                "dissemination (ms)",
                "aggregation (ms)",
                "tree depth",
            ],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig6ab",
            &["nodes", "diss_ms", "agg_ms", "depth"],
            &rows,
        ));

        // Linearity check: time at max N vs time at min N should scale like
        // depth (log), not like N.
        let first = scale.first().expect("scale sweep is non-empty");
        let last = scale.last().expect("scale sweep is non-empty");
        out.push_str(&format!(
            "\npaper check: x{} nodes -> only x{:.1} dissemination time (log-bounded)\n",
            last.metric("requested_n") as usize / first.metric("requested_n") as usize,
            last.metric("diss_ms") / first.metric("diss_ms").max(1e-9),
        ));

        // 6c: fanout sweep at a fixed size.
        let fanout: Vec<&TrialReport> = reports.iter().filter(|r| r.setup == "fanout").collect();
        let n_fixed = fanout
            .first()
            .map(|r| r.metric("requested_n") as usize)
            .unwrap_or(0);
        let rows: Vec<Vec<String>> = fanout
            .iter()
            .map(|r| {
                vec![
                    (r.metric("fanout") as usize).to_string(),
                    f2(r.metric("diss_ms")),
                    f2(r.metric("agg_ms")),
                    (r.metric("depth") as u16).to_string(),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &format!("Fig 6c: dissemination time vs tree fanout ({n_fixed} nodes)"),
            &["fanout", "dissemination (ms)", "aggregation (ms)", "depth"],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig6c",
            &["fanout", "diss_ms", "agg_ms", "depth"],
            &rows,
        ));

        // §7.3: O(log N) routing hops up to millions of nodes.
        let mut rows = Vec::new();
        for r in reports.iter().filter(|r| r.setup == "hops") {
            let n = r.metric("n") as usize;
            let mean = r.metric("mean_hops");
            let max = r.metric("max_hops") as u32;
            let bound = (n as f64).log(16.0).ceil();
            rows.push(vec![n.to_string(), f3(mean), max.to_string(), f2(bound)]);
            out.push_str(&format!(
                "  n={n}: mean hops {mean:.2}, max {max}, ceil(log16 N)={bound}\n"
            ));
        }
        out.push_str(&markdown_table(
            "§7.3: routing hops vs N (b=4, implicit perfect overlay)",
            &["nodes", "mean hops", "max hops", "ceil(log_16 N)"],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig6_hops",
            &["nodes", "mean_hops", "max_hops", "log16"],
            &rows,
        ));
        out
    }
}

/// Builds one n-node tree, broadcasts one model, waits for the aggregation
/// wave, and records dissemination/aggregation makespans plus max depth.
fn run_measure(trial: &Trial) -> TrialReport {
    let seed = trial.seed;
    let requested_n = trial.get_usize("n");
    let fanout = trial.get_usize("fanout");
    let model_bytes = trial.get_usize("model_bytes");
    let topology = eua_topology(requested_n, seed);
    let n = topology.len();
    let mut sim = echo_overlay(topology, seed, fanout);
    let t = topic("fig6", seed ^ n as u64 ^ fanout as u64);
    let members: Vec<usize> = (0..n).collect();
    build_tree(&mut sim, t, &members, SimTime::from_micros(60 * 1_000_000));

    // Reset logs; broadcast once.
    let start = sim.now();
    broadcast_from_root(&mut sim, t, 1, model_bytes);
    sim.run_until(SimTime::from_micros(
        start.as_micros().saturating_add(600 * 1_000_000),
    ));

    // Dissemination makespan: last broadcast receipt among subscribers.
    let mut last_receipt = start;
    let mut max_depth = 0;
    for i in 0..n {
        let forest = &sim.app(i).upper;
        for ev in &forest.state.broadcast_log {
            if ev.topic == t && ev.round == 1 {
                last_receipt = last_receipt.max(ev.at);
                max_depth = max_depth.max(ev.depth);
            }
        }
    }
    // Aggregation completion at the root.
    let root = root_of(&sim, t).expect("root exists");
    let agg_at = sim
        .app(root)
        .upper
        .state
        .agg_log
        .iter()
        .find(|e| e.topic == t && e.round == 1)
        .map(|e| e.at)
        .expect("aggregation completed");

    let diss_ms = last_receipt.saturating_since(start).as_secs_f64() * 1_000.0;
    let agg_ms = agg_at.saturating_since(last_receipt).as_secs_f64() * 1_000.0;

    let mut report = TrialReport::for_trial(trial);
    report.sim = totoro_simnet::TrialReport::capture(&sim);
    report.push_metric("requested_n", requested_n as f64);
    report.push_metric("n", n as f64);
    report.push_metric("fanout", fanout as f64);
    report.push_metric("diss_ms", diss_ms);
    report.push_metric("agg_ms", agg_ms);
    report.push_metric("depth", f64::from(max_depth));
    report
}

/// Mean routing hops over an implicit perfect overlay at one size.
///
/// Each size gets its own RNG stream (labelled by `n`), so hop trials are
/// independent of sweep order and can run on any worker.
fn run_hops(trial: &Trial) -> TrialReport {
    let n = trial.get_usize("n");
    let mut rng = sub_rng(trial.seed, &format!("hops-{n}"));
    let ids = random_ids(n, &mut rng);
    let trials = 200;
    let mut total = 0u64;
    let mut max = 0u32;
    for t in 0..trials {
        let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
        let hops = implicit_route_hops(&ids, (t * 131) % n, key, 4);
        total += u64::from(hops);
        max = max.max(hops);
    }
    let mean = total as f64 / f64::from(trials as u32);

    let mut report = TrialReport::for_trial(trial);
    report.push_metric("n", n as f64);
    report.push_metric("mean_hops", mean);
    report.push_metric("max_hops", f64::from(max));
    report
}
