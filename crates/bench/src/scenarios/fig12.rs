//! Figure 12: failure-recovery time for an exponentially increasing number
//! of dataflow trees, with 5% of each tree's nodes failing simultaneously.
//!
//! The paper's claim: recovery time stays *stable* as the number of trees
//! grows exponentially, because every failure is detected by the failed
//! node's tree children via keep-alives and repaired locally (re-JOIN),
//! fully in parallel and without any central coordinator (§4.5).

use crate::report::{csv_block, f2, markdown_table, percentile};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{build_tree, echo_overlay, eua_topology, topic};
use totoro_simnet::{sub_rng, ChurnSchedule, SimTime, TraceRecord};

const TREE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const REPS: u64 = 3;

/// Figure 12 scenario (`fig12`).
pub struct Fig12;

fn fail_frac(params: &Params) -> f64 {
    params
        .extra_str("fail-frac", "0.05")
        .parse()
        .expect("fail-frac is a float")
}

impl Scenario for Fig12 {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn description(&self) -> &'static str {
        "Fig. 12: failure-recovery time vs number of trees"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 400,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        // Fractions travel as parts-per-million so the trial point stays
        // integer-valued (and byte-stable in serialized form).
        let fail_ppm = (fail_frac(params) * 1e6).round() as u64;
        let mut trials = Vec::new();
        for &trees in &TREE_COUNTS {
            // Several independent repetitions per point, merged at render
            // time for stable percentiles.
            for rep in 0..REPS {
                trials.push(
                    Trial::new("recover", params.seed + rep * 101)
                        .with("n", params.nodes as u64)
                        .with("trees", trees as u64)
                        .with("fail_ppm", fail_ppm),
                );
            }
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = trial.get_usize("n");
        let trees = trial.get_usize("trees");
        let fail_frac = trial.get("fail_ppm") as f64 / 1e6;
        let seed = trial.seed;

        let topology = eua_topology(n, seed);
        let n = topology.len();
        let mut sim = echo_overlay(topology, seed, 16);
        let members: Vec<usize> = (0..n).collect();
        let mut rng = sub_rng(seed ^ trees as u64, "fig12");
        let mut tree_members: Vec<Vec<usize>> = Vec::new();
        for t in 0..trees {
            let tp = topic("fig12", t as u64);
            let subset: Vec<usize> =
                rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, (n * 3) / 4)
                    .copied()
                    .collect();
            build_tree(&mut sim, tp, &subset, SimTime::ZERO);
            tree_members.push(subset);
        }
        sim.run_until(SimTime::from_micros(60 * 1_000_000));

        // Paper workload: "each tree has 5% of nodes that fail ... at the
        // same time". Nodes serve many trees at once, so killing 5% of the
        // overlay takes down ~5% of every tree's membership simultaneously;
        // the number of concurrent repairs then grows with the number of
        // trees while the per-repair work stays local.
        let _ = &tree_members;
        let kill_at = SimTime::from_micros(60 * 1_000_000);
        let schedule = ChurnSchedule::mass_failure(&members, fail_frac, kill_at, &mut rng);
        let killed = schedule.nodes_affected();
        schedule.apply(&mut sim);
        sim.run_until(SimTime::from_micros(240 * 1_000_000));

        // Collect completed repair episodes started at/after the kill,
        // decomposed into detection (kill -> detected) and repair
        // (detected -> reattached).
        let mut episodes = Vec::new();
        let mut incomplete = 0usize;
        for i in 0..n {
            for ev in &sim.app(i).upper.state.repair_events {
                if ev.detected >= kill_at {
                    match ev.reattached {
                        Some(done) => episodes.push((
                            ev.detected.saturating_since(kill_at).as_secs_f64() * 1_000.0,
                            done.saturating_since(ev.detected).as_secs_f64() * 1_000.0,
                        )),
                        None => incomplete += 1,
                    }
                }
            }
        }
        assert!(
            incomplete <= (episodes.len() / 5).max(2),
            "too many unrepaired orphans: {incomplete} vs {} repaired",
            episodes.len()
        );

        let mut report = TrialReport::for_trial(trial);
        report.sim = totoro_simnet::TrialReport::capture(&sim);
        report.push_metric("killed", killed as f64);
        report.push_series("episodes", episodes);
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let frac = fail_frac(params);
        let mut out = format!(
            "# Figure 12: failure recovery vs #trees ({}% simultaneous failures)\n",
            frac * 100.0
        );
        let mut rows = Vec::new();
        let mut next = reports.iter();
        for &trees in &TREE_COUNTS {
            let mut detect = Vec::new();
            let mut repair = Vec::new();
            let mut total = Vec::new();
            let mut failed = 0usize;
            for _ in 0..REPS {
                let r = next.next().expect("fig12 report count matches trials");
                for &(d, rp) in r.series("episodes") {
                    detect.push(d);
                    repair.push(rp);
                    total.push(d + rp);
                }
                failed += r.metric("killed") as usize;
            }
            let repaired = repair.len();
            let med_detect = percentile(&detect, 50.0);
            let med_repair = percentile(&repair, 50.0);
            let p95_total = percentile(&total, 95.0);
            rows.push(vec![
                trees.to_string(),
                f2(med_detect),
                f2(med_repair),
                f2(p95_total),
                repaired.to_string(),
                failed.to_string(),
            ]);
            out.push_str(&format!(
                "  trees={trees}: median detect {med_detect:.0} ms, median repair {med_repair:.0} ms, p95 total {p95_total:.0} ms ({repaired} repairs, {failed} killed)\n"
            ));
        }
        out.push_str(&markdown_table(
            "Fig 12: tree repair time vs number of trees",
            &[
                "trees",
                "median detection (ms)",
                "median repair (ms)",
                "p95 total (ms)",
                "repairs",
                "nodes killed",
            ],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig12",
            &[
                "trees",
                "detect_ms",
                "repair_ms",
                "p95_total_ms",
                "repairs",
                "killed",
            ],
            &rows,
        ));

        // Stability check: repair time at 32 trees close to 1 tree.
        let first: f64 = rows[0][2].parse::<f64>().unwrap().max(1.0);
        let last: f64 = rows.last().unwrap()[2].parse::<f64>().unwrap().max(1.0);
        out.push_str(&format!(
            "\npaper check: repair stays stable under x32 trees -> median repair changes by x{:.2}\n",
            last / first
        ));
        out
    }
}
