//! The scenario registry: every evaluation artifact as a [`Scenario`].
//!
//! Each module ports one former stand-alone binary onto the shared
//! trial-engine API. [`all`] lists them in paper order; [`run_named`] is
//! the entry point shared by the `totoro-bench` CLI and the per-figure
//! shim binaries.

use crate::scenario::{run_scenario, Scenario};

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod simcore;
pub mod table3;
pub mod tta;

/// All registered scenarios, in paper order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(fig5::Fig5),
        Box::new(fig6::Fig6),
        Box::new(fig7::Fig7),
        Box::new(table3::Table3),
        Box::new(tta::FIG8),
        Box::new(tta::FIG9),
        Box::new(fig10::Fig10),
        Box::new(fig11::Fig11),
        Box::new(fig12::Fig12),
        Box::new(fig13::Fig13),
        Box::new(ablation::Ablation),
        Box::new(simcore::Simcore),
        Box::new(crate::chaos::ChaosScenario),
    ]
}

/// Looks up a scenario by its registry name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    all().into_iter().find(|s| s.name() == name)
}

/// Runs the named scenario through the shared CLI driver.
///
/// Panics if `name` is not registered — shim binaries pass a constant name,
/// so a miss is a build-time mistake, not user input.
pub fn run_named(name: &str, args: &[String]) {
    let scenario = find(name).unwrap_or_else(|| panic!("no scenario named {name:?}"));
    run_scenario(scenario.as_ref(), args);
}
