//! Figure 7: per-node network traffic (TCP/UDP) as the number of dataflow
//! trees grows.
//!
//! The paper's observation: increasing the number of trees 10× increases
//! per-node traffic by only ~1.19× (TCP) / ~1.29× (UDP), because new trees
//! merely add JOIN paths over the existing overlay whose maintenance cost
//! dominates and is shared.
//!
//! Method: run an overlay for a fixed maintenance-only window with `k`
//! live trees (tree keep-alives on top of the shared DHT upkeep) and
//! report mean wire bytes per node under the TCP and UDP overhead models.

use crate::report::{csv_block, f2, markdown_table};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{build_tree, echo_overlay_with, eua_topology, topic};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{sub_rng, SimDuration, SimTime, TraceRecord};

/// Figure 7 scenario (`fig7`).
pub struct Fig7;

impl Scenario for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Fig. 7: per-node TCP/UDP traffic vs number of trees"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 300,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let window = params.extra_usize("window-secs", 120) as u64;
        [1u64, 2, 5, 10, 20]
            .iter()
            .map(|&k| {
                Trial::new("trees", params.seed)
                    .with("trees", k)
                    .with("n", params.nodes as u64)
                    .with("window_secs", window)
            })
            .collect()
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = trial.get_usize("n");
        let k = trial.get_usize("trees");
        let seed = trial.seed;
        let window = trial.get("window_secs");

        let topology = eua_topology(n, seed);
        let n = topology.len();
        // Production-like maintenance cadence: tree keep-alives every 4 s
        // (the DHT's own heartbeats every 2 s dominate, as in FreePastry).
        let fconfig = ForestConfig {
            fanout_cap: 16,
            tick: SimDuration::from_secs(4),
            agg_timeout: SimDuration::from_secs(120),
            ..ForestConfig::default()
        };
        let mut sim = echo_overlay_with(topology, seed, 16, fconfig);
        let members: Vec<usize> = (0..n).collect();
        let mut rng = sub_rng(seed + k as u64, "membership");
        let mut topics = Vec::new();
        for t in 0..k {
            let tp = topic("fig7", t as u64);
            let subset: Vec<usize> =
                rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, n / 2)
                    .copied()
                    .collect();
            build_tree(&mut sim, tp, &subset, SimTime::ZERO);
            topics.push(tp);
        }
        // Settle, then measure a clean maintenance-only window (the paper's
        // point: creating new trees adds little traffic on top of the shared
        // overlay upkeep).
        sim.run_until(SimTime::from_micros(60 * 1_000_000));
        sim.traffic_mut().reset();
        let start = sim.now();
        let end = SimTime::from_micros(start.as_micros().saturating_add(window * 1_000_000));
        sim.run_until(end);
        let _ = &topics;

        let mut report = TrialReport::for_trial(trial);
        report.push_metric("trees", k as f64);
        report.push_metric("tcp", sim.traffic().mean_tcp_sent());
        report.push_metric("udp", sim.traffic().mean_udp_sent());
        report.push_metric("msgs", sim.traffic().total_msgs() as f64);
        // Captured after the measurement window, so the accounting matches
        // the reported means (the warm-up was reset away).
        report.sim = totoro_simnet::TrialReport::capture(&sim);
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let window = params.extra_usize("window-secs", 120);
        let mut out = format!(
            "# Figure 7: traffic per node vs number of trees (n={}, window={window}s)\n",
            params.nodes
        );
        let mut rows = Vec::new();
        let mut base: Option<(f64, f64)> = None;
        for r in reports {
            let k = r.metric("trees") as usize;
            let (tcp, udp, msgs) = (r.metric("tcp"), r.metric("udp"), r.metric("msgs"));
            let (tcp0, udp0) = *base.get_or_insert((tcp, udp));
            rows.push(vec![
                k.to_string(),
                f2(tcp / 1024.0),
                f2(udp / 1024.0),
                f2(tcp / tcp0),
                f2(udp / udp0),
                format!("{}", msgs as u64),
            ]);
            out.push_str(&format!(
                "  trees={k}: tcp {:.1} KiB/node (x{:.2}), udp {:.1} KiB/node (x{:.2})\n",
                tcp / 1024.0,
                tcp / tcp0,
                udp / 1024.0,
                udp / udp0
            ));
        }
        out.push_str(&markdown_table(
            "Fig 7: mean wire bytes per node over the window",
            &[
                "trees",
                "TCP KiB/node",
                "UDP KiB/node",
                "TCP ratio vs 1 tree",
                "UDP ratio vs 1 tree",
                "total msgs",
            ],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig7",
            &[
                "trees",
                "tcp_kib",
                "udp_kib",
                "tcp_ratio",
                "udp_ratio",
                "msgs",
            ],
            &rows,
        ));
        let last = rows.last().expect("fig7 sweep is non-empty");
        out.push_str(&format!(
            "\npaper check: 10x trees -> ~1.19x TCP / ~1.29x UDP; measured at {}x trees: {}x TCP, {}x UDP\n",
            reports.last().map(|r| r.metric("trees") as usize).unwrap_or(0),
            last[3],
            last[4]
        ));
        out
    }
}
