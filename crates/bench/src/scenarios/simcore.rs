//! `simcore` — simulator hot-path throughput (events/sec), the repo's perf
//! trajectory baseline.
//!
//! Unlike the paper figures, this scenario measures *wall-clock* speed of
//! the simulator itself, so its numbers vary run to run and machine to
//! machine; it is exempt from the byte-identical determinism contract (the
//! event counts inside it are still deterministic and asserted). Results
//! are also written to `BENCH_simcore.json` so successive PRs can track
//! the trend — see DESIGN.md § "Simulator performance".
//!
//! Run with `--jobs 1` (the default): timing trials concurrently on one
//! machine would measure contention, not the event loop. Each workload is
//! timed `--reps N` times (default 3) and the fastest repetition reported,
//! so guard comparisons against the committed baseline survive background
//! load on the measuring machine.
//!
//! The `event_churn_heap`/`timer_storm_heap` workloads rerun their
//! namesakes on the reference [`HeapQueue`] instead of the default timer
//! wheel, so every report carries a heap-vs-wheel comparison (rendered as
//! `*_speedup_wheel_over_heap`); the wheel's absolute `timer_storm` floor
//! is enforced by `scripts/check_simcore_guard.sh`.

use std::time::Instant;

use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::simcore::{
    build_eua_topology, profile_event_churn, run_event_churn, run_event_churn_on,
    run_event_churn_traced, run_million_node, run_million_node_profiled, run_multicast,
    run_timer_storm, run_timer_storm_on, zone_rings,
};
use totoro_simnet::{HeapQueue, TraceRecord, WheelQueue};

/// The historical full-mode multicast size (`mc_rounds 4 × mc_weights
/// 275000`) divided by today's sampled size (`1 × 137500`): the clone
/// flavor was memcpy-bound and alone ate ~2/3 of the scenario's
/// wall-clock, so `full` mode now times a 1/8 sample. The clone-vs-shared
/// *ratio* is unaffected (both flavors run the same sampled size); only
/// absolute `events`/`wall_ms` changed, and the report carries this
/// divisor so trajectory readers can rescale.
pub const MULTICAST_SAMPLE_DIVISOR: u64 = 8;

/// Scenario registration for the simulator hot-path benchmark.
pub struct Simcore;

struct Sizes {
    churn_nodes: usize,
    churn_tokens: usize,
    churn_hops: u64,
    mc_nodes: usize,
    mc_fanout: usize,
    mc_weights: usize,
    mc_rounds: u64,
    timer_nodes: usize,
    timer_timers: u64,
    timer_refires: u64,
    mn_nodes: usize,
    mn_rounds: u32,
}

fn sizes(mode: &str) -> Sizes {
    match mode {
        // CI smoke: a couple hundred thousand events, a few seconds even in
        // debug builds.
        "smoke" => Sizes {
            churn_nodes: 200,
            churn_tokens: 16,
            churn_hops: 2_000,
            mc_nodes: 85,
            mc_fanout: 4,
            mc_weights: 65_536,
            mc_rounds: 2,
            timer_nodes: 200,
            timer_timers: 8,
            timer_refires: 10,
            mn_nodes: 10_000,
            mn_rounds: 3,
        },
        // Full: millions of events; the multicast payload is a 550 kB
        // update (fanout 16, depth 2) timed for a single round — a 1/8
        // sample of the historical size (see [`MULTICAST_SAMPLE_DIVISOR`])
        // that keeps the clone flavor memcpy-bound without letting it
        // dominate the scenario's wall-clock.
        _ => Sizes {
            churn_nodes: 2_000,
            churn_tokens: 64,
            churn_hops: 20_000,
            mc_nodes: 273,
            mc_fanout: 16,
            mc_weights: 137_500,
            mc_rounds: 1,
            timer_nodes: 2_000,
            timer_timers: 32,
            timer_refires: 20,
            mn_nodes: 1_000_000,
            mn_rounds: 4,
        },
    }
}

/// Times `f` `reps` times and keeps the fastest repetition: wall-clock
/// minima are far more stable than single samples on a shared machine,
/// which is what lets the simcore guard hold a tight tolerance. The event
/// count must not vary across repetitions (the workloads are
/// deterministic) and is asserted not to.
fn timed(reps: u64, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..reps.max(1) {
        // det: allow(entropy: wall-clock throughput measurement; feeds BENCH_simcore.json perf floors, which are explicitly not byte-deterministic and never golden-compared)
        let start = Instant::now();
        let events = f();
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        match &mut best {
            Some((prev_events, prev_wall)) => {
                assert_eq!(events, *prev_events, "workload event count must be stable");
                if wall_ms < *prev_wall {
                    *prev_wall = wall_ms;
                }
            }
            None => best = Some((events, wall_ms)),
        }
    }
    best.expect("at least one repetition")
}

impl Scenario for Simcore {
    fn name(&self) -> &'static str {
        "simcore"
    }

    fn description(&self) -> &'static str {
        "simulator hot-path events/sec baseline (perf; not byte-deterministic)"
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let mode = params.extra_str("mode", "full");
        let m = u64::from(mode == "smoke");
        let reps: u64 = params.extra_str("reps", "3").parse().unwrap_or(3);
        // The million_node sweep is long (millions of events per point),
        // so it defaults to a single repetition per shard count.
        let mn_reps: u64 = params.extra_str("mn-reps", "1").parse().unwrap_or(1);
        let mut trials: Vec<Trial> = [
            "event_churn",
            "event_churn_heap",
            "multicast_clone",
            "multicast_shared",
            "timer_storm",
            "timer_storm_heap",
        ]
        .iter()
        .map(|w| {
            Trial::new(w, params.seed)
                .with("smoke", m)
                .with("reps", reps)
        })
        .collect();
        // `--profile-wall` adds one untimed wall-profiled run per
        // million_node point; the flag travels as a point coordinate so
        // the trial stays a self-contained value.
        let wall = u64::from(params.profile_wall.is_some());
        for spec in params.extra_str("shards", "1,2,4").split(',') {
            let k: u64 = spec.trim().parse().unwrap_or(0);
            if k == 0 {
                continue;
            }
            trials.push(
                Trial::new(&format!("million_node_s{k}"), params.seed)
                    .with("smoke", m)
                    .with("reps", mn_reps)
                    .with("shards", k)
                    .with("wall", wall),
            );
        }
        // `--workloads a,b,...` restricts the sweep (CI uses it to emit a
        // wheel-only or heap-only trace); `million_node` selects every
        // shard count.
        if let Some(list) = params.extra("workloads") {
            let wanted: Vec<&str> = list
                .split(',')
                .map(str::trim)
                .filter(|w| !w.is_empty())
                .collect();
            trials.retain(|t| {
                wanted.iter().any(|w| {
                    t.setup == *w || (*w == "million_node" && t.setup.starts_with("million_node_s"))
                })
            });
        }
        Trial::seal(trials)
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let s = sizes(if trial.get("smoke") == 1 {
            "smoke"
        } else {
            "full"
        });
        let reps = trial.get("reps").max(1);
        let mut report = TrialReport::for_trial(trial);
        if trial.setup.starts_with("million_node_s") {
            let shards = trial.get("shards").max(1) as usize;
            // Topology construction and routing precomputation are
            // one-time setup, excluded from the timed region.
            let topo = build_eua_topology(s.mn_nodes, trial.seed);
            let (next, cross) = zone_rings(&topo);
            let mut state_bytes = 0usize;
            let (events, wall_ms) = timed(reps, || {
                let run = run_million_node(&topo, &next, &cross, s.mn_rounds, shards, trial.seed);
                state_bytes = run.state_bytes;
                run.events
            });
            report.push_metric("events", events as f64);
            report.push_metric("wall_ms", wall_ms);
            report.push_metric(
                "events_per_sec",
                events as f64 / (wall_ms / 1_000.0).max(1e-9),
            );
            report.push_metric("shards", shards as f64);
            report.push_metric(
                "state_bytes_per_node",
                state_bytes as f64 / topo.len().max(1) as f64,
            );
            if trial.get("wall") == 1 {
                // One extra run, outside the timed region, with wall
                // profiling on: profiling bookkeeping must never shadow
                // the measurement above, and the wall numbers go to a
                // side channel (never golden stdout).
                let (_, _, wall) = run_million_node_profiled(
                    &topo,
                    &next,
                    &cross,
                    s.mn_rounds,
                    shards,
                    trial.seed,
                    true,
                );
                let wall = wall.expect("wall profiling requested");
                report.push_side(
                    "wall_profile",
                    format!(
                        "{{\"setup\":\"{}\",\"wall\":{}}}",
                        trial.setup,
                        wall.to_json()
                    ),
                );
            }
            return (report, None);
        }
        // Side products of the churn workloads, both from extra untimed
        // runs: the deterministic engine profile (lands in
        // BENCH_simcore.json and the simcore guard), and — when `--trace`
        // was given — the recorded event stream. Timed repetitions always
        // run with the zero-cost NoopSink, so the guard numbers are
        // unaffected.
        let records = if sink.is_traced() {
            match trial.setup.as_str() {
                "event_churn" => Some(run_event_churn_traced::<WheelQueue>(
                    s.churn_nodes,
                    s.churn_tokens,
                    s.churn_hops,
                )),
                "event_churn_heap" => Some(run_event_churn_traced::<HeapQueue>(
                    s.churn_nodes,
                    s.churn_tokens,
                    s.churn_hops,
                )),
                _ => None,
            }
        } else {
            None
        };
        if trial.setup == "event_churn" {
            let profile = profile_event_churn(s.churn_nodes, s.churn_tokens, s.churn_hops);
            report.push_side("engine_profile", profile.to_json());
        }
        let (events, wall_ms) = match trial.setup.as_str() {
            "event_churn" => timed(reps, || {
                run_event_churn(s.churn_nodes, s.churn_tokens, s.churn_hops)
            }),
            "event_churn_heap" => timed(reps, || {
                run_event_churn_on::<HeapQueue>(s.churn_nodes, s.churn_tokens, s.churn_hops)
            }),
            "multicast_clone" => timed(reps, || {
                run_multicast(s.mc_nodes, s.mc_fanout, s.mc_weights, s.mc_rounds, false)
            }),
            "multicast_shared" => timed(reps, || {
                run_multicast(s.mc_nodes, s.mc_fanout, s.mc_weights, s.mc_rounds, true)
            }),
            "timer_storm" => timed(reps, || {
                run_timer_storm(s.timer_nodes, s.timer_timers, s.timer_refires)
            }),
            "timer_storm_heap" => timed(reps, || {
                run_timer_storm_on::<HeapQueue>(s.timer_nodes, s.timer_timers, s.timer_refires)
            }),
            other => panic!("unknown simcore workload {other:?}"),
        };
        report.push_metric("events", events as f64);
        report.push_metric("wall_ms", wall_ms);
        report.push_metric(
            "events_per_sec",
            events as f64 / (wall_ms / 1_000.0).max(1e-9),
        );
        (report, records)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let mode = params.extra_str("mode", "full");
        let mut out = String::new();
        out.push_str("# simcore: simulator hot-path throughput\n\n");
        out.push_str(&format!("mode: {mode}\n\n"));
        out.push_str("| workload | events | wall (ms) | events/sec |\n|---|---|---|---|\n");
        for r in reports {
            out.push_str(&format!(
                "| {} | {} | {:.1} | {:.0} |\n",
                r.setup,
                r.metric("events"),
                r.metric("wall_ms"),
                r.metric("events_per_sec"),
            ));
        }
        let wall = |setup: &str| {
            reports
                .iter()
                .find(|r| r.setup == setup)
                .map(|r| r.metric("wall_ms"))
        };
        let ratio = |slow: Option<f64>, fast: Option<f64>| match (slow, fast) {
            (Some(s), Some(f)) if f > 0.0 => s / f,
            _ => f64::NAN,
        };
        let speedup = ratio(wall("multicast_clone"), wall("multicast_shared"));
        out.push_str(&format!(
            "\nmulticast shared-vs-clone speedup: {speedup:.2}x\n"
        ));
        let timer_speedup = ratio(wall("timer_storm_heap"), wall("timer_storm"));
        let churn_speedup = ratio(wall("event_churn_heap"), wall("event_churn"));
        out.push_str(&format!(
            "timer_storm wheel-over-heap speedup: {timer_speedup:.2}x\n\
             event_churn wheel-over-heap speedup: {churn_speedup:.2}x\n\
             multicast full-mode sample divisor: {MULTICAST_SAMPLE_DIVISOR} \
             (absolute multicast numbers are 1/{MULTICAST_SAMPLE_DIVISOR} \
             of the pre-PR-7 workload; the clone-vs-shared ratio is \
             unaffected)\n"
        ));

        // million_node shard sweep: speedup of the widest sweep point over
        // the single-shard run. Honest caveat: on hosts with fewer cores
        // than shards the "speedup" measures threading overhead, so the
        // guard only enforces it when the host can actually run the
        // shards in parallel.
        let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let mut sweep: Vec<(u64, f64)> = reports
            .iter()
            .filter(|r| r.setup.starts_with("million_node_s"))
            .map(|r| (r.metric("shards") as u64, r.metric("events_per_sec")))
            .collect();
        sweep.sort_unstable_by_key(|&(k, _)| k);
        let mn_speedup = match (sweep.first(), sweep.last()) {
            (Some(&(1, base)), Some(&(hi, rate))) if hi > 1 && base > 0.0 => {
                let x = rate / base;
                out.push_str(&format!(
                    "million_node speedup ({hi} shards over 1, {host_cores}-core host): {x:.2}x\n"
                ));
                Some((hi, x))
            }
            _ => None,
        };

        // Persist the trajectory point unless disabled (`--out none`).
        let path = params.extra_str("out", "BENCH_simcore.json");
        if path != "none" {
            let workloads: Vec<String> = reports
                .iter()
                .map(|r| {
                    let bytes = r
                        .metrics
                        .iter()
                        .find(|(k, _)| k == "state_bytes_per_node")
                        .map_or(String::new(), |(_, v)| {
                            format!(",\"state_bytes_per_node\":{v:.0}")
                        });
                    format!(
                        "    {{\"name\":\"{}\",\"events\":{},\"wall_ms\":{:.3},\"events_per_sec\":{:.0}{bytes}}}",
                        r.setup,
                        r.metric("events"),
                        r.metric("wall_ms"),
                        r.metric("events_per_sec"),
                    )
                })
                .collect();
            let mn_json = mn_speedup.map_or(String::new(), |(hi, x)| {
                format!(",\n  \"million_node_speedup_{hi}_over_1\": {x:.2}")
            });
            // The deterministic engine self-profile of the event_churn
            // workload (identical across --jobs/--shards; the guard
            // asserts `batch.singleton_ratio` from it).
            let prof_json = reports
                .iter()
                .find(|r| r.setup == "event_churn")
                .and_then(|r| r.side("engine_profile"))
                .map_or(String::new(), |p| format!(",\n  \"engine_profile\": {p}"));
            // A `--workloads`-filtered run lacks some ratio inputs; emit
            // `null` rather than `NaN` so the file stays valid JSON.
            let jnum = |x: f64| {
                if x.is_finite() {
                    format!("{x:.2}")
                } else {
                    "null".to_string()
                }
            };
            let json = format!(
                "{{\n  \"schema\": \"totoro-simcore/v1\",\n  \"schema_version\": 2,\n  \"mode\": \"{mode}\",\n  \"host_cores\": {host_cores},\n  \"multicast_sample_divisor\": {MULTICAST_SAMPLE_DIVISOR},\n  \"workloads\": [\n{}\n  ],\n  \"multicast_speedup_shared_over_clone\": {},\n  \"timer_storm_speedup_wheel_over_heap\": {},\n  \"event_churn_speedup_wheel_over_heap\": {}{mn_json}{prof_json}\n}}\n",
                workloads.join(",\n"),
                jnum(speedup),
                jnum(timer_speedup),
                jnum(churn_speedup),
            );
            if let Err(e) = std::fs::write(&path, json) {
                out.push_str(&format!("\nWARNING: could not write {path}: {e}\n"));
            } else {
                out.push_str(&format!("\nwrote {path}\n"));
            }
        }
        out
    }
}
