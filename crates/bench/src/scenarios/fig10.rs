//! Figure 10: regret comparison of Totoro's bandit-based hop-by-hop path
//! planning against end-to-end LCB routing \[42\] and next-hop empirical
//! routing \[25\].
//!
//! The environment is an unreliable edge network with a deceptive
//! high-quality first link (the situation §7.5 calls out: "paths with a
//! low-delay first link but with a high overall delay"), modeled by
//! `trap_graph`, plus a random layered graph for breadth.

use totoro_bandit::{layered, mean_regret_curve, trap_graph, LinkGraph, Policy, Vertex};

use crate::report::{csv_block, f2, markdown_table};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use totoro_simnet::TraceRecord;

const POLICIES: [Policy; 4] = [
    Policy::HopByHopKlUcb,
    Policy::EndToEndLcb,
    Policy::NextHopEmpirical,
    Policy::Oracle,
];

const GRAPHS: [&str; 2] = ["trap", "layered"];

/// Figure 10 scenario (`fig10`).
pub struct Fig10;

fn graph_label(graph: &str) -> &'static str {
    match graph {
        "trap" => "trap (deceptive first link)",
        _ => "layered 3x3 random",
    }
}

/// Rebuilds the trial's graph deterministically from its seed.
///
/// The layered graph's structure comes from `seed` and the regret runs use
/// `seed + 1`, matching the original serial harness; both are derivable
/// from the trial alone so any worker can run it.
fn build_graph(graph: &str, seed: u64) -> (LinkGraph, Vertex, Vertex, u64) {
    match graph {
        "trap" => {
            let (g, s, d) = trap_graph();
            (g, s, d, seed)
        }
        _ => {
            let mut rng = rand::SeedableRng::seed_from_u64(seed);
            let (g, s, d) = layered(3, 3, (0.15, 0.95), &mut rng);
            (g, s, d, seed + 1)
        }
    }
}

impl Scenario for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn description(&self) -> &'static str {
        "Fig. 10: regret comparison of path-planning algorithms"
    }

    fn default_params(&self) -> Params {
        Params {
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let packets = params.extra_usize("packets", 2_000) as u64;
        let runs = params.extra_usize("runs", 10) as u64;
        let mut trials = Vec::new();
        for graph in GRAPHS {
            for (pi, _) in POLICIES.iter().enumerate() {
                trials.push(
                    Trial::new(graph, params.seed)
                        .with("policy", pi as u64)
                        .with("packets", packets)
                        .with("runs", runs),
                );
            }
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let packets = trial.get_usize("packets");
        let runs = trial.get_usize("runs");
        let policy = POLICIES[trial.get_usize("policy")];
        let (g, s, d, regret_seed) = build_graph(&trial.setup, trial.seed);
        let (_, d_star) = g.best_path(s, d).expect("connected");
        let curve = mean_regret_curve(&g, s, d, policy, packets, runs, regret_seed);

        let mut report = TrialReport::for_trial(trial);
        report.push_metric("num_vertices", g.num_vertices() as f64);
        report.push_metric("num_edges", g.num_edges() as f64);
        report.push_metric("d_star", d_star);
        report.push_metric("regret_q1", curve[packets / 4 - 1]);
        report.push_metric("regret_q2", curve[packets / 2 - 1]);
        report.push_metric("regret_final", curve[packets - 1]);
        let checkpoints: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let k = i * packets / 20;
                (k as f64, curve[k - 1])
            })
            .collect();
        report.push_series("checkpoints", checkpoints);
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let packets = params.extra_usize("packets", 2_000);
        let runs = params.extra_usize("runs", 10);
        let mut out = format!("# Figure 10: cumulative regret vs packets (runs={runs})\n");
        for (gi, graph) in GRAPHS.iter().enumerate() {
            let label = graph_label(graph);
            let group = &reports[gi * POLICIES.len()..(gi + 1) * POLICIES.len()];
            let first = &group[0];
            out.push_str(&format!(
                "\n== graph: {label} ({} vertices, {} links) ==\n",
                first.metric("num_vertices") as usize,
                first.metric("num_edges") as usize,
            ));
            out.push_str(&format!(
                "optimal expected delay: {:.2} slots/packet\n",
                first.metric("d_star")
            ));
            for (p, r) in POLICIES.iter().zip(group) {
                out.push_str(&format!(
                    "  {:<20} regret @K/4 {:>9.1}  @K/2 {:>9.1}  @K {:>9.1}\n",
                    p.name(),
                    r.metric("regret_q1"),
                    r.metric("regret_q2"),
                    r.metric("regret_final"),
                ));
            }

            let checkpoints: Vec<usize> = (1..=20).map(|i| i * packets / 20).collect();
            let rows: Vec<Vec<String>> = checkpoints
                .iter()
                .enumerate()
                .map(|(ci, &k)| {
                    let mut row = vec![k.to_string()];
                    for r in group {
                        row.push(f2(r.series("checkpoints")[ci].1));
                    }
                    row
                })
                .collect();
            let headers: Vec<&str> = std::iter::once("packets")
                .chain(POLICIES.iter().map(|p| p.name()))
                .collect();
            out.push_str(&markdown_table(
                &format!("Fig 10 [{label}]: mean cumulative regret"),
                &headers,
                &rows,
            ));
            out.push_str(&csv_block(
                &format!("fig10_{}", label.split(' ').next().unwrap()),
                &headers,
                &rows,
            ));

            out.push_str(&format!(
                "paper check: Totoro achieves lower regret -> totoro {:.0} vs end-to-end {:.0} vs next-hop {:.0}\n",
                group[0].metric("regret_final"),
                group[1].metric("regret_final"),
                group[2].metric("regret_final"),
            ));
        }
        out
    }
}
