//! Ablation: what does in-network aggregation buy?
//!
//! DESIGN.md calls out the forest's in-network combining as a core design
//! choice (§4.3: interior nodes progressively aggregate, so the master
//! receives O(fanout) messages instead of O(N)). This ablation sweeps the
//! tree fanout cap (4 / 8 / uncapped JOIN-path tree) and contrasts the
//! measured master-side load with the analytic star reference (a
//! centralized server receiving every worker's update directly — the §3
//! SplitStream discussion's failure mode). Deeper trees trade a longer
//! aggregation makespan for an O(N/fanout)-fold cut in master load.

use crate::report::{csv_block, f2, markdown_table};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{
    broadcast_from_root, build_tree, echo_overlay_with, eua_topology, root_of, topic,
};
use totoro_simnet::{SimTime, TraceRecord};

const SIZES: [usize; 3] = [64, 256, 1024];
const SHAPES: [(&str, usize); 3] = [("tree-f4", 4), ("tree-f8", 8), ("uncapped", 0)];

/// In-network aggregation ablation scenario (`ablation`).
pub struct Ablation;

impl Scenario for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn description(&self) -> &'static str {
        "Ablation: in-network aggregation (tree) vs none (star)"
    }

    fn default_params(&self) -> Params {
        Params {
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let update_bytes = params.extra_usize("update-kb", 64) as u64 * 1024;
        let mut trials = Vec::new();
        for &n in &SIZES {
            for (_, fanout) in SHAPES {
                trials.push(
                    Trial::new("wave", params.seed)
                        .with("n", n as u64)
                        .with("fanout", fanout as u64)
                        .with("update_bytes", update_bytes),
                );
            }
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let n = trial.get_usize("n");
        let fanout = trial.get_usize("fanout");
        let update_bytes = trial.get_usize("update_bytes");
        let seed = trial.seed;

        let topology = eua_topology(n, seed);
        let n = topology.len();
        // DHT base stays 16; only the tree fanout cap varies.
        let fconfig = totoro_pubsub::ForestConfig {
            fanout_cap: fanout, // 0 = uncapped JOIN-path tree.
            agg_timeout: totoro_simnet::SimDuration::from_secs(120),
            ..totoro_pubsub::ForestConfig::default()
        };
        let mut sim = echo_overlay_with(topology, seed, 16, fconfig);

        let t = topic("ablation", n as u64 ^ fanout as u64);
        build_tree(
            &mut sim,
            t,
            &(0..n).collect::<Vec<_>>(),
            SimTime::from_micros(60 * 1_000_000),
        );
        let root = root_of(&sim, t).expect("root exists");

        // Measure only the wave: step in 50 ms slices until the aggregation
        // completes at the root, so maintenance chatter stays negligible.
        sim.traffic_mut().reset();
        let start = sim.now();
        broadcast_from_root(&mut sim, t, 1, update_bytes);
        let deadline = SimTime::from_micros(start.as_micros().saturating_add(600 * 1_000_000));
        let agg_at = loop {
            let done = sim
                .app(root)
                .upper
                .state
                .agg_log
                .iter()
                .find(|e| e.topic == t && e.round == 1)
                .map(|e| e.at);
            if let Some(at) = done {
                break at;
            }
            assert!(sim.now() < deadline, "aggregation never completed");
            let next = SimTime::from_micros(sim.now().as_micros().saturating_add(50_000));
            sim.run_until(next);
        };
        let traffic = sim.traffic().node(root);

        let mut report = TrialReport::for_trial(trial);
        report.sim = totoro_simnet::TrialReport::capture(&sim);
        report.push_metric("root_msgs", traffic.msgs_recv as f64);
        report.push_metric("root_bytes", traffic.payload_recv as f64);
        report.push_metric(
            "makespan_ms",
            agg_at.saturating_since(start).as_secs_f64() * 1_000.0,
        );
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let update_kb = params.extra_usize("update-kb", 64);
        let mut out = String::from("# Ablation: in-network aggregation (tree) vs none (star)\n");
        let mut rows = Vec::new();
        let mut next = reports.iter();
        for &n in &SIZES {
            for (label, _) in SHAPES {
                let r = next.next().expect("ablation report count matches trials");
                let root_msgs = r.metric("root_msgs") as u64;
                let root_bytes = r.metric("root_bytes");
                let makespan_ms = r.metric("makespan_ms");
                rows.push(vec![
                    n.to_string(),
                    label.to_string(),
                    root_msgs.to_string(),
                    f2(root_bytes / 1024.0),
                    f2(makespan_ms),
                ]);
                out.push_str(&format!(
                    "  n={n} {label}: master received {root_msgs} msgs / {:.0} KiB, round makespan {makespan_ms:.0} ms\n",
                    root_bytes / 1024.0
                ));
            }
            // Analytic star reference: a central server ingests one update
            // per worker with no in-network help.
            let star_msgs = n as u64 - 1;
            let star_kib = (n - 1) as f64 * (update_kb as f64);
            rows.push(vec![
                n.to_string(),
                "star (analytic)".into(),
                star_msgs.to_string(),
                f2(star_kib),
                "-".into(),
            ]);
            out.push_str(&format!(
                "  n={n} star (analytic): master would receive {star_msgs} msgs / {star_kib:.0} KiB\n"
            ));
        }
        out.push_str(&markdown_table(
            "Master-side load per aggregation round",
            &[
                "nodes",
                "shape",
                "msgs at master",
                "KiB at master",
                "round makespan (ms)",
            ],
            &rows,
        ));
        out.push_str(&csv_block(
            "ablation_aggregation",
            &["nodes", "shape", "msgs", "kib", "makespan_ms"],
            &rows,
        ));
        out
    }
}
