//! Figure 5: Totoro's scalability and load balance.
//!
//! * **5a** — edge zones formed from an EUA-shaped topology by distributed
//!   binning (reports zone sizes/diameters instead of a map).
//! * **5b** — masters-per-node distribution when 500 dataflow trees run on
//!   a 1000-node zone (the paper reports "99.5% of the nodes are the roots
//!   of 3 trees or less").
//! * **5c** — masters per zone under workloads proportional to zone size.
//! * **5d** — branch (per-level) distribution of 17 trees with fanout 8,
//!   showing balanced roots/forwarders/leaves.

use crate::report::{csv_block, f2, markdown_table, stats};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{build_tree, echo_overlay_sink, eua_topology, root_of, topic};
use totoro::{masters_per_node, quantile, role_census};
use totoro_simnet::{
    assign_zones, sub_rng, BinningConfig, NoopSink, SimTime, TraceRecord, TraceSink,
};

/// Figure 5 scenario (`fig5`).
pub struct Fig5;

impl Scenario for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Fig. 5a-d: zones, master distribution, branch balance"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 1_000,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let trees = params.extra_usize("trees", 500) as u64;
        vec![
            Trial::new("zones", params.seed),
            Trial::new("masters", params.seed)
                .with("n", params.nodes as u64)
                .with("trees", trees),
            Trial::new("masters_per_zone", params.seed),
            Trial::new("branches", params.seed),
        ]
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        if let Some(rec) = sink.recording() {
            // "zones" runs no simulator — nothing to trace; fall through.
            match trial.setup.as_str() {
                "masters" => return run_masters(trial, rec),
                "masters_per_zone" => return run_masters_per_zone(trial, rec),
                "branches" => return run_branches(trial, rec),
                _ => {}
            }
        }
        match trial.setup.as_str() {
            "zones" => (run_zones(trial), None),
            "masters" => run_masters(trial, NoopSink),
            "masters_per_zone" => run_masters_per_zone(trial, NoopSink),
            "branches" => run_branches(trial, NoopSink),
            other => panic!("fig5 has no setup {other:?}"),
        }
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let trees = params.extra_usize("trees", 500);
        let mut out = format!(
            "# Figure 5: scalability & load balance (n={}, trees={}, seed={})\n",
            params.nodes, trees, params.seed
        );
        let [zones, masters, per_zone, branches] = reports else {
            panic!("fig5 expects 4 reports, got {}", reports.len());
        };

        // 5a: zone table straight from the trial's rows.
        out.push_str(&markdown_table(
            "Fig 5a: edge zones from distributed binning (EUA-shaped topology)",
            &["zone", "nodes", "diameter (ms RTT)"],
            &zones.rows,
        ));
        out.push_str(&csv_block(
            "fig5a",
            &["zone", "nodes", "diameter_ms"],
            &zones.rows,
        ));

        // 5b: summary table rebuilt from metrics; histogram from rows.
        let n = masters.metric("n") as usize;
        let frac3 = masters.metric("frac_le3_pct");
        let rows = vec![
            vec![
                "trees rooted".into(),
                format!("{}", masters.metric("trees_rooted") as u64),
            ],
            vec![
                "max masters on one node".into(),
                format!("{}", masters.metric("max_masters") as u64),
            ],
            vec![
                "p50 masters".into(),
                format!("{}", masters.metric("p50_masters") as u64),
            ],
            vec![
                "p99 masters".into(),
                format!("{}", masters.metric("p99_masters") as u64),
            ],
            vec!["frac nodes with <=3 masters".into(), f2(frac3) + "%"],
        ];
        out.push_str(&markdown_table(
            &format!("Fig 5b: master distribution ({trees} trees on {n} nodes)"),
            &["metric", "value"],
            &rows,
        ));
        out.push_str(&csv_block(
            "fig5b_hist",
            &["masters_per_node", "num_nodes"],
            &masters.rows,
        ));
        out.push_str(&format!(
            "\npaper check: 99.5% of nodes are roots of 3 trees or less -> measured {frac3:.1}%\n"
        ));

        // 5c: per-zone workload/masters table.
        out.push_str(&markdown_table(
            "Fig 5c: masters scale with zone workload",
            &["zone", "nodes", "apps submitted", "masters hosted"],
            &per_zone.rows,
        ));
        out.push_str(&csv_block(
            "fig5c",
            &["zone", "nodes", "apps", "masters"],
            &per_zone.rows,
        ));

        // 5d: per-tree level census plus the forwarder-load check.
        out.push_str(&markdown_table(
            "Fig 5d: per-level node counts of 17 fanout-8 trees",
            &["tree", "depth", "nodes per level (root..leaves)"],
            &branches.rows,
        ));
        out.push_str(&csv_block(
            "fig5d",
            &["tree", "depth", "levels"],
            &branches.rows,
        ));
        out.push_str(&format!(
            "\nforwarder load: mean {:.2}, sd {:.2}, max {:.0} across {} nodes\n",
            branches.metric("fwd_mean"),
            branches.metric("fwd_sd"),
            branches.metric("fwd_max"),
            branches.metric("n") as usize,
        ));
        out
    }
}

/// 5a: distributed binning of the EUA topology into edge zones.
fn run_zones(trial: &Trial) -> TrialReport {
    let seed = trial.seed;
    let topology = eua_topology(4_000, seed);
    let mut rng = sub_rng(seed, "binning");
    let config = BinningConfig {
        num_landmarks: 5,
        level_boundaries_us: vec![4_000, 12_000, 30_000],
        max_zones: 12,
    };
    let zones = assign_zones(&topology, &config, &mut rng);
    let diam = totoro_simnet::binning::zone_diameters_us(&topology, &zones, 128, &mut rng);
    let sizes = zones.zone_sizes();
    let summary = zones.summary();
    let mut report = TrialReport::for_trial(trial);
    for z in 0..zones.num_zones {
        report.push_row(vec![
            z.to_string(),
            sizes[z].to_string(),
            f2(diam[z] as f64 / 1_000.0),
        ]);
    }
    report.push_metric("num_zones", summary.num_zones as f64);
    report.push_metric("largest_zone", summary.largest as f64);
    report
}

/// 5b: masters-per-node distribution for many trees on one zone.
fn run_masters<S: TraceSink>(trial: &Trial, sink: S) -> (TrialReport, Option<Vec<TraceRecord>>) {
    let seed = trial.seed;
    let trees = trial.get("trees");
    let topology = eua_topology(trial.get_usize("n"), seed + 1);
    let n = topology.len(); // Region rounding can add a few nodes.
    let mut sim = echo_overlay_sink(topology, seed + 1, 16, sink);
    let members: Vec<usize> = (0..n).collect();
    // Each tree gets a random subset of subscribers (64 each) — creating a
    // tree only requires joins, so this scales to 500 trees comfortably.
    let mut rng = sub_rng(seed, "tree-members");
    let mut topics = Vec::new();
    for k in 0..trees {
        let t = topic("fig5b", k);
        let subset: Vec<usize> =
            rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, 64)
                .copied()
                .collect();
        build_tree(&mut sim, t, &subset, SimTime::ZERO);
        topics.push(t);
    }
    sim.run_until(SimTime::from_micros(120 * 1_000_000));

    let masters = masters_per_node(&sim, &topics);
    let total: usize = masters.iter().sum();
    let at_most = |k: usize| masters.iter().filter(|&&m| m <= k).count() as f64 / n as f64;
    assert_eq!(
        total, trees as usize,
        "every tree must have exactly one root"
    );

    let mut report = TrialReport::for_trial(trial);
    report.sim = totoro_simnet::TrialReport::capture(&sim);
    report.push_metric("n", n as f64);
    report.push_metric("trees_rooted", total as f64);
    report.push_metric("max_masters", *masters.iter().max().unwrap() as f64);
    report.push_metric("p50_masters", quantile(&masters, 0.5) as f64);
    report.push_metric("p99_masters", quantile(&masters, 0.99) as f64);
    report.push_metric("frac_le3_pct", at_most(3) * 100.0);
    // Histogram for the normal-probability plot.
    let max = *masters.iter().max().unwrap();
    for k in 0..=max {
        report.push_row(vec![
            k.to_string(),
            masters.iter().filter(|&&m| m == k).count().to_string(),
        ]);
    }
    let records = sim.sink_mut().drain_records();
    (report, records)
}

/// 5c: masters per zone with workload proportional to zone density.
fn run_masters_per_zone<S: TraceSink>(
    trial: &Trial,
    sink: S,
) -> (TrialReport, Option<Vec<TraceRecord>>) {
    let seed = trial.seed;
    let topology = eua_topology(1_200, seed + 2);
    let mut rng = sub_rng(seed + 2, "binning");
    let zones = assign_zones(
        &topology,
        &BinningConfig {
            num_landmarks: 4,
            level_boundaries_us: vec![4_000, 12_000, 30_000],
            max_zones: 6,
        },
        &mut rng,
    );
    let mut sim = echo_overlay_sink(topology, seed + 2, 16, sink);

    // Dense zones submit proportionally more applications.
    let sizes = zones.zone_sizes();
    let mut topics_by_zone: Vec<Vec<totoro_dht::Id>> = vec![Vec::new(); zones.num_zones];
    let mut all_topics = Vec::new();
    let mut rng = sub_rng(seed + 2, "apps");
    for (z, &size) in sizes.iter().enumerate() {
        let apps = (size / 40).max(1);
        let members = zones.members(z as u16);
        for k in 0..apps {
            let t = topic(&format!("fig5c-z{z}"), k as u64);
            let subset: Vec<usize> = rand::seq::SliceRandom::choose_multiple(
                &members[..],
                &mut rng,
                members.len().min(32),
            )
            .copied()
            .collect();
            build_tree(&mut sim, t, &subset, SimTime::ZERO);
            topics_by_zone[z].push(t);
            all_topics.push(t);
        }
    }
    sim.run_until(SimTime::from_micros(120 * 1_000_000));

    let mut report = TrialReport::for_trial(trial);
    report.sim = totoro_simnet::TrialReport::capture(&sim);
    for z in 0..zones.num_zones {
        // Count masters that landed on nodes of each zone.
        let masters_here: usize = all_topics
            .iter()
            .filter_map(|&t| root_of(&sim, t))
            .filter(|&root| zones.zone_of[root] == z as u16)
            .count();
        report.push_row(vec![
            z.to_string(),
            sizes[z].to_string(),
            topics_by_zone[z].len().to_string(),
            masters_here.to_string(),
        ]);
    }
    let records = sim.sink_mut().drain_records();
    (report, records)
}

/// 5d: branch distribution of 17 fanout-8 trees.
fn run_branches<S: TraceSink>(trial: &Trial, sink: S) -> (TrialReport, Option<Vec<TraceRecord>>) {
    let seed = trial.seed;
    let topology = eua_topology(1_946, seed + 3); // The paper's node count.
    let n = topology.len();
    let mut sim = echo_overlay_sink(topology, seed + 3, 8, sink);
    let mut rng = sub_rng(seed + 3, "members");
    let members: Vec<usize> = (0..n).collect();
    let mut topics = Vec::new();
    for k in 0..17 {
        let t = topic("fig5d", k);
        // Random membership sizes spread tree depths across levels 1-6.
        let size = [60, 120, 250, 500, 900][k as usize % 5];
        let subset: Vec<usize> =
            rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, size)
                .copied()
                .collect();
        build_tree(&mut sim, t, &subset, SimTime::ZERO);
        topics.push(t);
    }
    sim.run_until(SimTime::from_micros(180 * 1_000_000));

    let mut report = TrialReport::for_trial(trial);
    report.sim = totoro_simnet::TrialReport::capture(&sim);
    for (k, &t) in topics.iter().enumerate() {
        let levels = totoro::level_census(&sim, t);
        report.push_row(vec![
            k.to_string(),
            levels.len().saturating_sub(1).to_string(),
            levels
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }

    // Load-balance check over interior load: how concentrated are
    // forwarder duties?
    let roles = role_census(&sim, &topics);
    let agg_loads: Vec<f64> = roles.iter().map(|r| r.aggregator as f64).collect();
    let s = stats(&agg_loads);
    report.push_metric("n", n as f64);
    report.push_metric("fwd_mean", s.mean);
    report.push_metric("fwd_sd", s.sd);
    report.push_metric("fwd_max", s.max);
    let records = sim.sink_mut().drain_records();
    (report, records)
}
