//! Table 3: time-to-accuracy speedup of Totoro over OpenFL-like and
//! FedScale-like centralized engines, for {speech, femnist} × {5, 10, 20}
//! concurrent applications × tree fanouts {8, 16, 32}.
//!
//! All engines train the *same* synthetic tasks with the same MLPs, shards,
//! hyperparameters, and compute-time model; only the system architecture
//! differs. "Total training time" is the simulated time until every
//! submitted application reaches the dataset's target accuracy (speech
//! 53.0%, femnist 75.5%) or its round cap.

use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_ml::TaskGenerator;
use totoro_simnet::geo::{eua_regions_scaled, generate};
use totoro_simnet::{sub_rng, SimTime, Topology, TraceRecord};

use crate::report::{csv_block, markdown_table, speedup};
use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{
    edge_latency, fl_app_config, target_for, task_by_name, to_central_spec, totoro_with_apps,
};

const MAX_SIM: SimTime = SimTime::from_micros(48 * 3_600 * 1_000_000);

/// Table 3 scenario (`table3`).
pub struct Table3;

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|x| x.trim().parse().ok()).collect()
}

fn datasets(params: &Params) -> Vec<String> {
    params
        .extra_str("datasets", "speech,femnist")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect()
}

/// Per-dataset shard size: the large-scale task trains on bigger shards
/// (longer rounds, as in the paper, where FEMNIST speedups are smaller than
/// Speech ones because per-round compute amortizes the server overhead).
fn samples_for(dataset: &str, samples: usize) -> usize {
    if dataset == "femnist" {
        samples * 3
    } else {
        samples
    }
}

impl Scenario for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn description(&self) -> &'static str {
        "Table 3: time-to-accuracy speedups vs OpenFL/FedScale"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 48,
            seed: 1,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let samples = params.extra_usize("samples", 30);
        let apps_list = parse_list(&params.extra_str("apps", "5,10,20"));
        let fanouts = parse_list(&params.extra_str("fanouts", "8,16,32"));
        let mut trials = Vec::new();
        for dataset in datasets(params) {
            let samples = samples_for(&dataset, samples) as u64;
            for &num_apps in &apps_list {
                // Baselines first (shared across fanouts), matching render.
                for engine in ["openfl", "fedscale"] {
                    trials.push(
                        Trial::new(&format!("{engine}:{dataset}"), params.seed)
                            .with("n", params.nodes as u64)
                            .with("samples", samples)
                            .with("apps", num_apps as u64),
                    );
                }
                for &fanout in &fanouts {
                    trials.push(
                        Trial::new(&format!("totoro:{dataset}"), params.seed)
                            .with("n", params.nodes as u64)
                            .with("samples", samples)
                            .with("apps", num_apps as u64)
                            .with("fanout", fanout as u64),
                    );
                }
            }
        }
        trials
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let (engine, dataset) = trial
            .setup
            .split_once(':')
            .expect("table3 setup is engine:dataset");
        let n = trial.get_usize("n");
        let samples = trial.get_usize("samples");
        let num_apps = trial.get_usize("apps");
        let total_s = match engine {
            "totoro" => totoro_total(
                dataset,
                n,
                samples,
                num_apps,
                trial.get_usize("fanout"),
                trial.seed,
            ),
            "openfl" => central_total(
                dataset,
                n,
                samples,
                num_apps,
                ServerProfile::openfl_like(),
                trial.seed,
            ),
            "fedscale" => central_total(
                dataset,
                n,
                samples,
                num_apps,
                ServerProfile::fedscale_like(),
                trial.seed,
            ),
            other => panic!("table3 has no engine {other:?}"),
        };
        let mut report = TrialReport::for_trial(trial);
        report.push_metric("total_s", total_s);
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let samples = params.extra_usize("samples", 30);
        let apps_list = parse_list(&params.extra_str("apps", "5,10,20"));
        let fanouts = parse_list(&params.extra_str("fanouts", "8,16,32"));
        let mut out = format!(
            "# Table 3: time-to-accuracy speedups (n={}, {samples} samples/client)\n",
            params.nodes
        );
        let mut next = reports.iter();
        let mut take = || next.next().expect("table3 report count matches trials");
        for dataset in datasets(params) {
            let task = task_by_name(&dataset);
            let target = target_for(&task);
            out.push_str(&format!(
                "\n== dataset {dataset} (target accuracy {:.1}%) ==\n",
                target * 100.0
            ));
            let mut rows = Vec::new();
            for &num_apps in &apps_list {
                let openfl = take().metric("total_s");
                let fedscale = take().metric("total_s");
                out.push_str(&format!(
                    "  apps={num_apps}: openfl {openfl:.0}s, fedscale {fedscale:.0}s\n"
                ));
                for &fanout in &fanouts {
                    let totoro = take().metric("total_s");
                    out.push_str(&format!(
                        "  apps={num_apps} fanout={fanout}: totoro {totoro:.0}s -> {} vs OpenFL, {} vs FedScale\n",
                        speedup(openfl / totoro),
                        speedup(fedscale / totoro)
                    ));
                    rows.push(vec![
                        dataset.clone(),
                        num_apps.to_string(),
                        fanout.to_string(),
                        format!("{totoro:.0}"),
                        format!("{openfl:.0}"),
                        format!("{fedscale:.0}"),
                        speedup(openfl / totoro),
                        speedup(fedscale / totoro),
                    ]);
                }
            }
            out.push_str(&markdown_table(
                &format!("Table 3 [{dataset}]: total training time and speedups"),
                &[
                    "dataset",
                    "apps",
                    "fanout",
                    "totoro (s)",
                    "openfl (s)",
                    "fedscale (s)",
                    "speedup vs OpenFL",
                    "speedup vs FedScale",
                ],
                &rows,
            ));
            out.push_str(&csv_block(
                &format!("table3_{dataset}"),
                &[
                    "dataset",
                    "apps",
                    "fanout",
                    "totoro_s",
                    "openfl_s",
                    "fedscale_s",
                    "sp_openfl",
                    "sp_fedscale",
                ],
                &rows,
            ));
        }
        out
    }
}

/// Total simulated seconds for Totoro to finish `num_apps` apps.
fn totoro_total(
    dataset: &str,
    n: usize,
    samples: usize,
    num_apps: usize,
    fanout: usize,
    seed: u64,
) -> f64 {
    let task = task_by_name(dataset);
    let mut gen_rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(task, &mut gen_rng);
    let mut topology = topology_for(n, seed);
    apply_device_class(&mut topology, dataset);
    let mut deploy = totoro_with_apps(topology, seed, fanout, num_apps, &generator, samples, 60);
    deploy.run(MAX_SIM);
    // Finish time = when the last app's target was reached (or its cap).
    (0..num_apps)
        .map(|a| {
            deploy
                .time_to_target(a)
                .or_else(|| deploy.curve(a).last().map(|p| p.time_secs))
                .unwrap_or(MAX_SIM.as_secs_f64())
        })
        .fold(0.0, f64::max)
}

/// Total simulated seconds for a centralized engine to finish the same
/// workload (node 0 is the server; clients start at node 1).
fn central_total(
    dataset: &str,
    n: usize,
    samples: usize,
    num_apps: usize,
    profile: ServerProfile,
    seed: u64,
) -> f64 {
    let task = task_by_name(dataset);
    let mut gen_rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(task, &mut gen_rng);
    let mut topology = topology_for(n + 1, seed);
    apply_device_class(&mut topology, dataset);
    let mut engine = CentralizedEngine::new(topology, profile, seed);
    let participants: Vec<usize> = (1..=n).collect();
    let mut rng = sub_rng(seed, "shards");
    for a in 0..num_apps {
        // Identical shard/rng stream layout as the Totoro run.
        let shards = generator.client_shards(n, samples, 0.5, &mut rng);
        let cfg = fl_app_config(
            &format!("{}-app-{a}", generator.spec.name),
            a as u64,
            &generator,
            48,
            1_000 + a as u64,
        );
        engine.submit_app(to_central_spec(&cfg), &participants, shards);
    }
    engine.run(MAX_SIM);
    let server = engine.server();
    (0..num_apps)
        .map(|a| {
            server
                .time_to_target(a)
                .or_else(|| server.curve(a).last().map(|p| p.time_secs))
                .unwrap_or(MAX_SIM.as_secs_f64())
        })
        .fold(0.0, f64::max)
}

/// Device profile per dataset: the large-scale task's rounds are dominated
/// by on-device training (as in the paper, where FEMNIST trains far longer
/// per round than Speech), modeled by weaker edge devices.
pub(crate) fn apply_device_class(topology: &mut Topology, dataset: &str) {
    if dataset == "femnist" {
        for i in 0..topology.len() {
            let mut p = topology.profile(i);
            p.compute_speed *= 0.02;
            topology.set_profile(i, p);
        }
    }
}

/// An exactly-`n`-node EUA topology (trimming the generator's rounding).
pub(crate) fn topology_for(n: usize, seed: u64) -> Topology {
    let mut rng = sub_rng(seed, "eua-topology");
    let nodes = generate(&eua_regions_scaled(n), &mut rng);
    // Trim/pad handled by the generator's rounding; take exactly n.
    let nodes = &nodes[..n.min(nodes.len())];
    Topology::from_placements(nodes, edge_latency())
}
