//! Trace analytics behind the `totoro-trace` CLI.
//!
//! Consumes the JSONL execution traces written by `totoro-bench --trace
//! PATH.jsonl` (one [`totoro_simnet::TraceRecord`] object per line, each
//! tagged with its trial index) and derives:
//!
//! * **summary** — per-layer/per-event counts, byte totals, and link-latency
//!   statistics with a log-binned histogram;
//! * **critical path** — the longest causal send chain across all spans,
//!   with a per-hop breakdown (link latency + handler dwell);
//! * **timeline** — bucketed in-flight message depth (the simulated-network
//!   analogue of queue depth) plus per-bucket send/deliver/drop counts;
//! * **matrix** — a source-bucket × destination-bucket traffic matrix;
//! * **diff** — all of the above for two traces side by side, with a
//!   byte-level verdict (wheel-vs-heap or shards-1-vs-4 runs of the same
//!   scenario must produce *identical* traces, and the diff proves it).
//!
//! Everything here is a pure function of the input text: analytics on a
//! deterministic trace are themselves deterministic, so rendered output can
//! be pinned byte-for-byte in golden tests. The module carries its own
//! minimal JSON parser ([`parse_json`]) because the bench crate
//! deliberately has no JSON dependency — traces are machine-written, so a
//! strict, small grammar is enough.

use std::collections::BTreeMap;

use crate::report;

// ---------------------------------------------------------------------------
// Minimal JSON value parser.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object keys keep file order (`Vec`, not a map):
/// trace files are machine-written with a fixed key order and tests assert
/// on it.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (traces only use non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in file order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Traces never emit surrogate pairs; reject them
                        // rather than silently mis-decoding.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise by finding the next char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

// ---------------------------------------------------------------------------
// Trace model.
// ---------------------------------------------------------------------------

/// One trace record, decoded from a JSONL line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceEvent {
    /// Trial index (`"trial"` key; 0 for single-trial traces).
    pub trial: u64,
    /// Simulated time of the record, microseconds.
    pub at_us: u64,
    /// The node the record is about.
    pub node: u64,
    /// Protocol layer tag.
    pub layer: String,
    /// Message kind / event name.
    pub kind: String,
    /// Event type: `send`, `deliver`, `drop`, `chaos`, `timer`, `down`,
    /// `up`, `compute`.
    pub ev: String,
    /// Destination (sends and drops).
    pub to: Option<u64>,
    /// Source (delivers).
    pub from: Option<u64>,
    /// Serialized message size, when the record is about a message.
    pub bytes: u64,
    /// Scheduled arrival time (sends).
    pub arrive_at_us: Option<u64>,
    /// Causal span id, when the message is traced.
    pub trace: Option<u64>,
    /// Message id within the trace run.
    pub id: Option<u64>,
    /// Causing message id (`None` for span roots).
    pub parent: Option<u64>,
    /// Causal hop count from the span root.
    pub hop: u64,
}

/// Parses a JSONL trace (empty lines ignored). Errors carry the 1-based
/// line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    if text.trim_start().starts_with("{\"traceEvents\"") {
        return Err(
            "this is a Chrome trace_event file; totoro-trace consumes JSONL traces \
             (re-run totoro-bench with --trace PATH.jsonl)"
                .to_string(),
        );
    }
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let u = |key: &str| obj.get(key).and_then(Json::as_u64);
        let s = |key: &str| obj.get(key).and_then(Json::as_str).map(str::to_string);
        let required = |key: &str| {
            u(key).ok_or_else(|| format!("line {}: missing or non-integer {key:?}", lineno + 1))
        };
        out.push(TraceEvent {
            trial: u("trial").unwrap_or(0),
            at_us: required("at_us")?,
            node: required("node")?,
            layer: s("layer").unwrap_or_default(),
            kind: s("kind").unwrap_or_default(),
            ev: s("ev").unwrap_or_default(),
            to: u("to"),
            from: u("from"),
            bytes: u("bytes").unwrap_or(0),
            arrive_at_us: u("arrive_at_us"),
            trace: u("trace"),
            id: u("id"),
            parent: match obj.get("parent") {
                Some(Json::Null) | None => None,
                Some(v) => v.as_u64(),
            },
            hop: u("hop").unwrap_or(0),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Summary: per-layer/per-event statistics.
// ---------------------------------------------------------------------------

/// Link-latency histogram boundaries, microseconds (log-binned).
const LAT_BOUNDS: &[u64] = &[128, 512, 2_048, 8_192, 32_768];

/// Aggregate statistics for one `(layer, ev)` group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupStat {
    /// Number of records in the group.
    pub count: u64,
    /// Total message bytes across the group.
    pub bytes: u64,
    /// Sum of link latencies (sends only: `arrive_at_us - at_us`).
    pub lat_sum_us: u64,
    /// Number of latency samples folded into `lat_sum_us`.
    pub lat_n: u64,
    /// Minimum observed link latency.
    pub lat_min_us: u64,
    /// Maximum observed link latency.
    pub lat_max_us: u64,
    /// Latency histogram counts per [`LAT_BOUNDS`] bucket (+1 overflow).
    pub lat_hist: Vec<u64>,
}

impl GroupStat {
    fn observe_latency(&mut self, us: u64) {
        if self.lat_n == 0 {
            self.lat_min_us = us;
            self.lat_max_us = us;
        } else {
            self.lat_min_us = self.lat_min_us.min(us);
            self.lat_max_us = self.lat_max_us.max(us);
        }
        self.lat_sum_us += us;
        self.lat_n += 1;
        if self.lat_hist.is_empty() {
            self.lat_hist = vec![0; LAT_BOUNDS.len() + 1];
        }
        let bucket = LAT_BOUNDS.iter().position(|&b| us <= b);
        self.lat_hist[bucket.unwrap_or(LAT_BOUNDS.len())] += 1;
    }

    /// Mean latency in tenths of a microsecond (integer arithmetic keeps
    /// rendering deterministic).
    pub fn lat_mean_tenths(&self) -> u64 {
        (self.lat_sum_us * 10).checked_div(self.lat_n).unwrap_or(0)
    }
}

/// The full per-group breakdown of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// `(layer, ev)` → statistics, in sorted key order.
    pub groups: BTreeMap<(String, String), GroupStat>,
    /// Number of distinct trials seen.
    pub trials: u64,
    /// Number of distinct causal spans seen.
    pub spans: u64,
    /// Last record time, microseconds.
    pub end_us: u64,
}

/// Builds the [`Summary`] of a trace.
pub fn summarize(events: &[TraceEvent]) -> Summary {
    let mut s = Summary::default();
    let mut trials = std::collections::BTreeSet::new();
    let mut spans = std::collections::BTreeSet::new();
    for e in events {
        let g = s.groups.entry((e.layer.clone(), e.ev.clone())).or_default();
        g.count += 1;
        g.bytes += e.bytes;
        if e.ev == "send" {
            if let Some(arrive) = e.arrive_at_us {
                g.observe_latency(arrive.saturating_sub(e.at_us));
            }
        }
        trials.insert(e.trial);
        if let Some(t) = e.trace {
            spans.insert((e.trial, t));
        }
        s.end_us = s.end_us.max(e.at_us);
    }
    s.trials = trials.len() as u64;
    s.spans = spans.len() as u64;
    s
}

fn hist_cells(hist: &[u64]) -> String {
    if hist.is_empty() {
        return "-".to_string();
    }
    let cells: Vec<String> = hist.iter().map(u64::to_string).collect();
    cells.join("/")
}

/// Renders a [`Summary`] as a human table.
pub fn render_summary(name: &str, s: &Summary) -> String {
    let mut rows = Vec::new();
    for ((layer, ev), g) in &s.groups {
        let (min, mean, max) = if g.lat_n == 0 {
            ("-".to_string(), "-".to_string(), "-".to_string())
        } else {
            let m = g.lat_mean_tenths();
            (
                g.lat_min_us.to_string(),
                format!("{}.{}", m / 10, m % 10),
                g.lat_max_us.to_string(),
            )
        };
        rows.push(vec![
            layer.clone(),
            ev.clone(),
            g.count.to_string(),
            g.bytes.to_string(),
            min,
            mean,
            max,
            hist_cells(&g.lat_hist),
        ]);
    }
    let mut out = format!(
        "# trace summary: {name}\n\ntrials: {}  spans: {}  records: {}  end: {} us\n",
        s.trials,
        s.spans,
        s.groups.values().map(|g| g.count).sum::<u64>(),
        s.end_us,
    );
    out.push_str(&report::markdown_table(
        "per-layer events",
        &[
            "layer",
            "ev",
            "count",
            "bytes",
            "lat min (us)",
            "lat mean (us)",
            "lat max (us)",
            &format!("lat hist (<= {:?} us, +inf)", LAT_BOUNDS),
        ],
        &rows,
    ));
    out
}

/// Renders a [`Summary`] as machine JSON.
pub fn summary_json(s: &Summary) -> String {
    let groups: Vec<String> = s
        .groups
        .iter()
        .map(|((layer, ev), g)| {
            format!(
                "{{\"layer\":\"{layer}\",\"ev\":\"{ev}\",\"count\":{},\"bytes\":{},\
                 \"lat_n\":{},\"lat_sum_us\":{},\"lat_min_us\":{},\"lat_max_us\":{},\
                 \"lat_hist\":[{}]}}",
                g.count,
                g.bytes,
                g.lat_n,
                g.lat_sum_us,
                g.lat_min_us,
                g.lat_max_us,
                g.lat_hist
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            )
        })
        .collect();
    format!(
        "{{\"trials\":{},\"spans\":{},\"end_us\":{},\"groups\":[{}]}}",
        s.trials,
        s.spans,
        s.end_us,
        groups.join(","),
    )
}

// ---------------------------------------------------------------------------
// Critical path: the longest causal send chain.
// ---------------------------------------------------------------------------

/// One hop of a critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathHop {
    /// Sending node.
    pub from: u64,
    /// Destination node.
    pub to: u64,
    /// Layer of the hop's message.
    pub layer: String,
    /// Kind of the hop's message.
    pub kind: String,
    /// Send time, microseconds.
    pub depart_us: u64,
    /// Scheduled arrival, microseconds.
    pub arrive_us: u64,
    /// Time the sender sat on the causing message before this send
    /// (`depart - parent.arrive`; 0 for the span root).
    pub dwell_us: u64,
}

/// The longest causal chain of one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Trial the chain belongs to.
    pub trial: u64,
    /// Span (trace id) the chain belongs to.
    pub trace: u64,
    /// Hops, root first.
    pub hops: Vec<PathHop>,
    /// Root send time.
    pub start_us: u64,
    /// Final scheduled arrival.
    pub end_us: u64,
}

/// Extracts the critical path: over every `(trial, span)`, the causal send
/// chain with the most hops (ties broken by longest end-to-end time, then
/// by smallest `(trial, trace)` for determinism). Returns `None` when the
/// trace carries no traced sends.
pub fn critical_path(events: &[TraceEvent]) -> Option<CriticalPath> {
    // (trial, id) -> send event, for parent-chain walking.
    let mut sends: BTreeMap<(u64, u64), &TraceEvent> = BTreeMap::new();
    for e in events {
        if e.ev == "send" {
            if let Some(id) = e.id {
                sends.insert((e.trial, id), e);
            }
        }
    }
    // Chain length to each send, memoized over the parent DAG (a forest:
    // each send has at most one parent).
    fn depth(
        key: (u64, u64),
        sends: &BTreeMap<(u64, u64), &TraceEvent>,
        memo: &mut BTreeMap<(u64, u64), u64>,
    ) -> u64 {
        if let Some(&d) = memo.get(&key) {
            return d;
        }
        let d = match sends.get(&key).and_then(|e| e.parent) {
            Some(p) if sends.contains_key(&(key.0, p)) => 1 + depth((key.0, p), sends, memo),
            _ => 0,
        };
        memo.insert(key, d);
        d
    }
    let mut memo = BTreeMap::new();
    let mut best: Option<((u64, u64), u64, u64)> = None; // (tail key, depth, span us)
    for (&key, e) in &sends {
        let d = depth(key, &sends, &mut memo);
        let end = e.arrive_at_us.unwrap_or(e.at_us);
        // Root time: walk is O(depth); fine for selection because we only
        // need the span length of candidates that beat the current best.
        let candidate_better = match best {
            None => true,
            Some((_, bd, _)) => d >= bd,
        };
        if !candidate_better {
            continue;
        }
        let mut root = e;
        while let Some(p) = root.parent {
            match sends.get(&(key.0, p)) {
                Some(parent) => root = parent,
                None => break,
            }
        }
        let span_us = end.saturating_sub(root.at_us);
        let better = match best {
            None => true,
            Some((bkey, bd, bspan)) => {
                (d, span_us, std::cmp::Reverse(key)) > (bd, bspan, std::cmp::Reverse(bkey))
            }
        };
        if better {
            best = Some((key, d, span_us));
        }
    }
    let (tail_key, _, _) = best?;
    // Rebuild the chain root-first.
    let mut chain: Vec<&TraceEvent> = Vec::new();
    let mut cur = sends[&tail_key];
    loop {
        chain.push(cur);
        match cur.parent.and_then(|p| sends.get(&(tail_key.0, p))) {
            Some(parent) => cur = parent,
            None => break,
        }
    }
    chain.reverse();
    let hops: Vec<PathHop> = chain
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let dwell = if i == 0 {
                0
            } else {
                let parent_arrive = chain[i - 1].arrive_at_us.unwrap_or(chain[i - 1].at_us);
                e.at_us.saturating_sub(parent_arrive)
            };
            PathHop {
                from: e.node,
                to: e.to.unwrap_or(e.node),
                layer: e.layer.clone(),
                kind: e.kind.clone(),
                depart_us: e.at_us,
                arrive_us: e.arrive_at_us.unwrap_or(e.at_us),
                dwell_us: dwell,
            }
        })
        .collect();
    let start_us = chain.first().map(|e| e.at_us).unwrap_or(0);
    let end_us = chain
        .last()
        .map(|e| e.arrive_at_us.unwrap_or(e.at_us))
        .unwrap_or(0);
    Some(CriticalPath {
        trial: tail_key.0,
        trace: sends[&tail_key].trace.unwrap_or(tail_key.1),
        hops,
        start_us,
        end_us,
    })
}

/// One-line summary of a critical path (also used by `diff`).
pub fn path_summary(p: &CriticalPath) -> String {
    format!(
        "critical path: trial {} trace {}: {} hops, {} us end-to-end ({} -> {} us)",
        p.trial,
        p.trace,
        p.hops.len(),
        p.end_us.saturating_sub(p.start_us),
        p.start_us,
        p.end_us,
    )
}

/// How many leading/trailing hops [`render_critical_path`] prints before
/// eliding the middle of very long chains.
const PATH_EDGE_HOPS: usize = 10;

/// Renders a critical path as a human table; long chains print the first
/// and last [`PATH_EDGE_HOPS`] hops with an elision note.
pub fn render_critical_path(name: &str, path: Option<&CriticalPath>) -> String {
    let Some(p) = path else {
        return format!("# critical path: {name}\n\nno traced spans in this trace\n");
    };
    let mut rows = Vec::new();
    let total = p.hops.len();
    let elide = total > 2 * PATH_EDGE_HOPS + 4;
    for (i, h) in p.hops.iter().enumerate() {
        if elide && i == PATH_EDGE_HOPS {
            rows.push(vec![
                format!("... {} hops elided ...", total - 2 * PATH_EDGE_HOPS),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        if elide && i >= PATH_EDGE_HOPS && i < total - PATH_EDGE_HOPS {
            continue;
        }
        rows.push(vec![
            i.to_string(),
            format!("{} -> {}", h.from, h.to),
            format!("{}/{}", h.layer, h.kind),
            h.depart_us.to_string(),
            h.arrive_us.to_string(),
            h.arrive_us.saturating_sub(h.depart_us).to_string(),
            h.dwell_us.to_string(),
        ]);
    }
    let mut out = format!("# critical path: {name}\n\n{}\n", path_summary(p));
    out.push_str(&report::markdown_table(
        "hops (root first)",
        &[
            "hop",
            "link",
            "layer/kind",
            "depart (us)",
            "arrive (us)",
            "link (us)",
            "dwell (us)",
        ],
        &rows,
    ));
    out
}

/// Machine JSON for a critical path.
pub fn path_json(path: Option<&CriticalPath>) -> String {
    let Some(p) = path else {
        return "{\"critical_path\":null}".to_string();
    };
    let hops: Vec<String> = p
        .hops
        .iter()
        .map(|h| {
            format!(
                "{{\"from\":{},\"to\":{},\"layer\":\"{}\",\"kind\":\"{}\",\
                 \"depart_us\":{},\"arrive_us\":{},\"dwell_us\":{}}}",
                h.from, h.to, h.layer, h.kind, h.depart_us, h.arrive_us, h.dwell_us,
            )
        })
        .collect();
    format!(
        "{{\"critical_path\":{{\"trial\":{},\"trace\":{},\"start_us\":{},\"end_us\":{},\
         \"hops\":[{}]}}}}",
        p.trial,
        p.trace,
        p.start_us,
        p.end_us,
        hops.join(","),
    )
}

// ---------------------------------------------------------------------------
// Timeline: bucketed in-flight depth.
// ---------------------------------------------------------------------------

/// One timeline bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineBucket {
    /// Bucket start, microseconds.
    pub t_us: u64,
    /// Maximum concurrently in-flight messages during the bucket.
    pub in_flight_max: u64,
    /// Sends departing in the bucket.
    pub sends: u64,
    /// Delivers landing in the bucket.
    pub delivers: u64,
    /// Drops recorded in the bucket.
    pub drops: u64,
}

/// Buckets the trace into `bucket_us`-wide windows with the in-flight
/// message depth (sends count from departure to scheduled arrival) and
/// per-bucket event counts. Empty buckets inside the span are kept so the
/// timeline has no gaps.
pub fn timeline(events: &[TraceEvent], bucket_us: u64) -> Vec<TimelineBucket> {
    let bucket_us = bucket_us.max(1);
    let end = events.iter().map(|e| e.at_us).max().unwrap_or(0);
    let nbuckets = (end / bucket_us + 1) as usize;
    let mut buckets: Vec<TimelineBucket> = (0..nbuckets)
        .map(|i| TimelineBucket {
            t_us: i as u64 * bucket_us,
            ..TimelineBucket::default()
        })
        .collect();
    // Sweep in-flight depth over (time, delta) edges.
    let mut edges: Vec<(u64, i64)> = Vec::new();
    for e in events {
        let b = (e.at_us / bucket_us) as usize;
        match e.ev.as_str() {
            "send" => {
                buckets[b].sends += 1;
                if let Some(arrive) = e.arrive_at_us {
                    edges.push((e.at_us, 1));
                    edges.push((arrive.max(e.at_us), -1));
                }
            }
            "deliver" => buckets[b].delivers += 1,
            "drop" => buckets[b].drops += 1,
            _ => {}
        }
    }
    edges.sort_unstable();
    // Walk buckets in order, carrying the live depth across boundaries: a
    // bucket's max is the depth entering it or any peak reached by edges
    // inside it. Closing edges past the last bucket only lower the depth
    // and are irrelevant to any max, so they go unprocessed.
    let mut depth: i64 = 0;
    let mut ei = 0usize;
    for (b, bucket) in buckets.iter_mut().enumerate() {
        let end_t = (b as u64 + 1) * bucket_us;
        let mut max_d = depth.max(0) as u64;
        while ei < edges.len() && edges[ei].0 < end_t {
            depth += edges[ei].1;
            max_d = max_d.max(depth.max(0) as u64);
            ei += 1;
        }
        bucket.in_flight_max = max_d;
    }
    buckets
}

/// Renders a timeline as a CSV block (`# csv:timeline`).
pub fn render_timeline(name: &str, buckets: &[TimelineBucket], bucket_us: u64) -> String {
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|b| {
            vec![
                b.t_us.to_string(),
                b.in_flight_max.to_string(),
                b.sends.to_string(),
                b.delivers.to_string(),
                b.drops.to_string(),
            ]
        })
        .collect();
    let mut out = format!("# timeline: {name} (bucket {bucket_us} us)\n");
    out.push_str(&report::csv_block(
        "timeline",
        &["t_us", "in_flight_max", "sends", "delivers", "drops"],
        &rows,
    ));
    out
}

// ---------------------------------------------------------------------------
// Matrix: bucketed src × dst traffic.
// ---------------------------------------------------------------------------

/// A source-bucket × destination-bucket traffic matrix over send records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matrix {
    /// Number of node buckets per axis.
    pub buckets: usize,
    /// Nodes per bucket (`ceil((max_node + 1) / buckets)`).
    pub nodes_per_bucket: u64,
    /// Message counts, row = source bucket.
    pub msgs: Vec<Vec<u64>>,
    /// Byte totals, row = source bucket.
    pub bytes: Vec<Vec<u64>>,
}

/// Builds the traffic [`Matrix`]. With contiguous zone layouts (the EUA
/// topology places nodes region by region) buckets approximate zones.
pub fn matrix(events: &[TraceEvent], buckets: usize) -> Matrix {
    let buckets = buckets.max(1);
    let max_node = events
        .iter()
        .flat_map(|e| [Some(e.node), e.to, e.from])
        .flatten()
        .max()
        .unwrap_or(0);
    let per = (max_node + 1).div_ceil(buckets as u64).max(1);
    let mut m = Matrix {
        buckets,
        nodes_per_bucket: per,
        msgs: vec![vec![0; buckets]; buckets],
        bytes: vec![vec![0; buckets]; buckets],
    };
    for e in events {
        if e.ev != "send" {
            continue;
        }
        let Some(to) = e.to else { continue };
        let src = ((e.node / per) as usize).min(buckets - 1);
        let dst = ((to / per) as usize).min(buckets - 1);
        m.msgs[src][dst] += 1;
        m.bytes[src][dst] += e.bytes;
    }
    m
}

/// Renders a traffic matrix as a human table (messages; bytes in a second
/// table).
pub fn render_matrix(name: &str, m: &Matrix) -> String {
    let headers: Vec<String> = std::iter::once("src\\dst".to_string())
        .chain((0..m.buckets).map(|i| format!("b{i}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let row_of = |grid: &[Vec<u64>], i: usize| -> Vec<String> {
        std::iter::once(format!("b{i}"))
            .chain(grid[i].iter().map(u64::to_string))
            .collect()
    };
    let msg_rows: Vec<Vec<String>> = (0..m.buckets).map(|i| row_of(&m.msgs, i)).collect();
    let byte_rows: Vec<Vec<String>> = (0..m.buckets).map(|i| row_of(&m.bytes, i)).collect();
    let mut out = format!(
        "# traffic matrix: {name} ({} buckets x {} nodes)\n",
        m.buckets, m.nodes_per_bucket
    );
    out.push_str(&report::markdown_table("messages", &header_refs, &msg_rows));
    out.push_str(&report::markdown_table("bytes", &header_refs, &byte_rows));
    out
}

// ---------------------------------------------------------------------------
// Diff: two traces side by side.
// ---------------------------------------------------------------------------

/// Renders the diff of two traces: per-group counts side by side, both
/// critical-path summaries, and a byte-level verdict. Deterministic runs of
/// the same scenario under different engines (wheel vs heap, shards 1 vs 4)
/// must diff clean — that equality is the point of the comparison.
pub fn render_diff(
    a_name: &str,
    a_text: &str,
    a: &[TraceEvent],
    b_name: &str,
    b_text: &str,
    b: &[TraceEvent],
) -> String {
    let sa = summarize(a);
    let sb = summarize(b);
    let keys: std::collections::BTreeSet<&(String, String)> =
        sa.groups.keys().chain(sb.groups.keys()).collect();
    let mut rows = Vec::new();
    let mut differing = 0u64;
    for key in keys {
        let ga = sa.groups.get(key).cloned().unwrap_or_default();
        let gb = sb.groups.get(key).cloned().unwrap_or_default();
        let delta = gb.count as i64 - ga.count as i64;
        if ga != gb {
            differing += 1;
        }
        rows.push(vec![
            key.0.clone(),
            key.1.clone(),
            ga.count.to_string(),
            gb.count.to_string(),
            format!("{delta:+}"),
            ga.bytes.to_string(),
            gb.bytes.to_string(),
        ]);
    }
    let mut out = format!("# trace diff: {a_name} vs {b_name}\n");
    out.push_str(&report::markdown_table(
        "per-layer events",
        &[
            "layer", "ev", "count A", "count B", "delta", "bytes A", "bytes B",
        ],
        &rows,
    ));
    let pa = critical_path(a);
    let pb = critical_path(b);
    out.push_str(&format!(
        "\nA {}\nB {}\n",
        pa.as_ref().map_or_else(
            || "critical path: no traced spans".to_string(),
            path_summary
        ),
        pb.as_ref().map_or_else(
            || "critical path: no traced spans".to_string(),
            path_summary
        ),
    ));
    if a_text == b_text {
        out.push_str("\nverdict: traces are byte-identical\n");
    } else if differing == 0 && pa == pb {
        out.push_str(
            "\nverdict: traces differ in bytes but agree on every per-layer statistic \
             and the critical path\n",
        );
    } else {
        out.push_str(&format!(
            "\nverdict: traces differ ({differing} per-layer groups changed)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_roundtrips_trace_shapes() {
        let v =
            parse_json("{\"a\":1,\"b\":null,\"c\":[true,false,\"x\\n\\u0041\"],\"d\":{\"e\":2.5}}")
                .unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b"), Some(&Json::Null));
        let arr = v.get("c").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[2].as_str(), Some("x\nA"));
        assert_eq!(v.get("d").and_then(|d| d.get("e")), Some(&Json::Num(2.5)));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("").is_err());
    }

    fn line(at: u64, node: u64, ev: &str, extra: &str) -> String {
        format!(
            "{{\"trial\":0,\"at_us\":{at},\"node\":{node},\"layer\":\"app\",\
             \"kind\":\"hop\",\"ev\":\"{ev}\"{extra}}}"
        )
    }

    #[test]
    fn jsonl_parses_and_rejects_chrome() {
        let text = format!(
            "{}\n{}\n",
            line(0, 0, "send", ",\"to\":1,\"bytes\":16,\"arrive_at_us\":100"),
            line(100, 1, "deliver", ",\"from\":0,\"bytes\":16"),
        );
        let events = parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].to, Some(1));
        assert_eq!(events[1].from, Some(0));
        assert!(parse_jsonl("{\"traceEvents\":[]}").is_err());
        assert!(parse_jsonl("{\"node\":0}").is_err());
    }

    fn chain(hops: u64) -> Vec<TraceEvent> {
        // A single span 0 -> 1 -> 2 ... with 100 us links and 10 us dwell.
        let mut events = Vec::new();
        for h in 0..hops {
            let depart = h * 110;
            events.push(TraceEvent {
                at_us: depart,
                node: h,
                layer: "app".into(),
                kind: "hop".into(),
                ev: "send".into(),
                to: Some(h + 1),
                bytes: 16,
                arrive_at_us: Some(depart + 100),
                trace: Some(7),
                id: Some(h + 1),
                parent: (h > 0).then_some(h),
                hop: h,
                ..TraceEvent::default()
            });
        }
        events
    }

    #[test]
    fn critical_path_walks_the_longest_chain() {
        let mut events = chain(5);
        // A shorter rival span must lose.
        events.push(TraceEvent {
            at_us: 0,
            node: 9,
            layer: "app".into(),
            kind: "hop".into(),
            ev: "send".into(),
            to: Some(8),
            bytes: 16,
            arrive_at_us: Some(1_000_000),
            trace: Some(99),
            id: Some(100),
            parent: None,
            hop: 0,
            ..TraceEvent::default()
        });
        let p = critical_path(&events).unwrap();
        assert_eq!(p.trace, 7);
        assert_eq!(p.hops.len(), 5);
        assert_eq!(p.start_us, 0);
        assert_eq!(p.end_us, 4 * 110 + 100);
        assert_eq!(p.hops[1].dwell_us, 10);
        assert_eq!(p.hops[0].dwell_us, 0);
    }

    #[test]
    fn critical_path_handles_untraced_traces() {
        let events = parse_jsonl(&line(0, 0, "timer", ",\"token\":3")).unwrap();
        assert!(critical_path(&events).is_none());
        assert!(render_critical_path("t", None).contains("no traced spans"));
    }

    #[test]
    fn summary_aggregates_latency_deterministically() {
        let events = chain(3);
        let s = summarize(&events);
        let g = &s.groups[&("app".to_string(), "send".to_string())];
        assert_eq!(g.count, 3);
        assert_eq!(g.lat_n, 3);
        assert_eq!(g.lat_min_us, 100);
        assert_eq!(g.lat_max_us, 100);
        assert_eq!(g.lat_mean_tenths(), 1000);
        assert_eq!(s.spans, 1);
        let r1 = render_summary("t", &s);
        let r2 = render_summary("t", &summarize(&events));
        assert_eq!(r1, r2);
        assert!(summary_json(&s).starts_with("{\"trials\":1,\"spans\":1,"));
    }

    #[test]
    fn timeline_tracks_in_flight_depth() {
        let events = chain(3);
        let buckets = timeline(&events, 100);
        assert_eq!(buckets.len(), 3);
        assert!(buckets.iter().all(|b| b.in_flight_max >= 1));
        assert_eq!(buckets.iter().map(|b| b.sends).sum::<u64>(), 3);
    }

    #[test]
    fn matrix_buckets_sends() {
        let events = chain(4);
        let m = matrix(&events, 2);
        let total: u64 = m.msgs.iter().flatten().sum();
        assert_eq!(total, 4);
        assert!(render_matrix("t", &m).contains("src\\dst"));
    }

    #[test]
    fn diff_verdict_spots_identity_and_change() {
        let a = chain(4);
        let atext = "same";
        let clean = render_diff("A", atext, &a, "B", atext, &a);
        assert!(clean.contains("byte-identical"));
        let b = chain(3);
        let dirty = render_diff("A", "x", &a, "B", "y", &b);
        assert!(dirty.contains("traces differ ("));
    }
}
