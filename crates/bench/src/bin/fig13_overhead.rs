//! Figure 13: CPU and memory overhead of Totoro vs an OpenFL-like
//! centralized engine, training a feed-forward text-classification model
//! with a single 10-node dataflow tree (§7.6).
//!
//! * **13a (CPU)** — simulated CPU time split into FL-related tasks
//!   (training, aggregation, serialization, evaluation) and DHT-related
//!   tasks (overlay maintenance, routing, tree upkeep). The paper's
//!   finding: Totoro uses less FL CPU than OpenFL and its DHT housekeeping
//!   is negligible.
//! * **13b (memory)** — bytes of engine state (routing tables, leaf sets,
//!   trees, models, shards) per node over time; Totoro stays flat after
//!   overlay construction.
//!
//! Usage: `fig13_overhead [--nodes 10] [--samples 40] [--rounds 8] [--seed 1]`

use totoro::TotoroDeployment;
use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, markdown_table};
use totoro_bench::setups::{fl_app_config, to_central_spec};
use totoro_dht::DhtConfig;
use totoro_ml::{text_classification_like, TaskGenerator};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{sub_rng, Application, SimTime, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "nodes", 10);
    let samples = arg_usize(&args, "samples", 40);
    let rounds = arg_u64(&args, "rounds", 8);
    let seed = arg_u64(&args, "seed", 1);

    println!("# Figure 13: overhead of Totoro vs OpenFL (text model, {n}-node tree)");

    // --- Totoro run -------------------------------------------------------
    let mut gen_rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut gen_rng);
    let topology = Topology::uniform(n, 1_000, 5_000);
    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::with_fanout(8),
        ForestConfig {
            fanout_cap: 8,
            ..ForestConfig::default()
        },
    );
    {
        let mut rng = sub_rng(seed, "shards");
        let shards = generator.client_shards(n, samples, 0.5, &mut rng);
        let mut cfg = fl_app_config("text-app", 0, &generator, 32, 1_000);
        cfg.target_accuracy = 2.0; // Run exactly `rounds` rounds.
        cfg.max_rounds = rounds;
        let participants: Vec<usize> = (0..n).collect();
        deploy.submit_app(cfg, &participants, shards);
    }
    let mut totoro_mem_series = Vec::new();
    let step = SimTime::from_micros(5 * 1_000_000);
    let mut t = step;
    while !deploy.app_done(0) && t < SimTime::from_micros(3_600 * 1_000_000) {
        deploy.run(t);
        let mem: usize = (0..n).map(|i| deploy.sim().app(i).memory_bytes()).sum();
        totoro_mem_series.push((t.as_secs_f64(), mem as f64 / n as f64 / 1024.0));
        t = SimTime::from_micros(t.as_micros() + step.as_micros());
    }
    let tot_fl: u64 = deploy.sim().compute().fl_us.iter().sum();
    let tot_dht: u64 = deploy.sim().compute().dht_us.iter().sum();

    // --- OpenFL-like run --------------------------------------------------
    let mut gen_rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut gen_rng);
    let topology = Topology::uniform(n + 1, 1_000, 5_000);
    let mut engine = CentralizedEngine::new(topology, ServerProfile::openfl_like(), seed);
    let participants: Vec<usize> = (1..=n).collect();
    let mut rng = sub_rng(seed, "shards");
    let shards = generator.client_shards(n, samples, 0.5, &mut rng);
    let mut cfg = fl_app_config("text-app", 0, &generator, 32, 1_000);
    cfg.target_accuracy = 2.0; // Run exactly `rounds` rounds.
    cfg.max_rounds = rounds;
    engine.submit_app(to_central_spec(&cfg), &participants, shards);
    let mut openfl_mem_series = Vec::new();
    let mut t = step;
    while !engine.server().is_done(0) && t < SimTime::from_micros(3_600 * 1_000_000) {
        engine.run(t);
        let mem: usize = (0..=n).map(|i| engine.sim().app(i).memory_bytes()).sum();
        openfl_mem_series.push((t.as_secs_f64(), mem as f64 / (n + 1) as f64 / 1024.0));
        t = SimTime::from_micros(t.as_micros() + step.as_micros());
    }
    let ofl_fl: u64 = engine.sim().compute().fl_us.iter().sum();
    let ofl_dht: u64 = engine.sim().compute().dht_us.iter().sum();

    // --- 13a: CPU ----------------------------------------------------------
    let rows = vec![
        vec![
            "totoro".into(),
            f2(tot_fl as f64 / 1e6),
            f2(tot_dht as f64 / 1e6),
            f2((tot_fl + tot_dht) as f64 / 1e6),
        ],
        vec![
            "openfl".into(),
            f2(ofl_fl as f64 / 1e6),
            f2(ofl_dht as f64 / 1e6),
            f2((ofl_fl + ofl_dht) as f64 / 1e6),
        ],
    ];
    markdown_table(
        &format!("Fig 13a: total simulated CPU seconds over {rounds} rounds"),
        &["engine", "FL tasks (s)", "DHT tasks (s)", "total (s)"],
        &rows,
    );
    csv_block("fig13a", &["engine", "fl_s", "dht_s", "total_s"], &rows);
    println!(
        "\npaper check: Totoro adds only negligible DHT CPU -> DHT share {:.1}% of Totoro total",
        100.0 * tot_dht as f64 / (tot_fl + tot_dht).max(1) as f64
    );
    println!(
        "paper check: Totoro uses less FL CPU than OpenFL -> totoro {:.1}s vs openfl {:.1}s",
        tot_fl as f64 / 1e6,
        ofl_fl as f64 / 1e6
    );

    // --- 13b: memory --------------------------------------------------------
    let rows: Vec<Vec<String>> = totoro_mem_series
        .iter()
        .zip(openfl_mem_series.iter().chain(std::iter::repeat(
            openfl_mem_series.last().unwrap_or(&(0.0, 0.0)),
        )))
        .map(|(&(t, tm), &(_, om))| vec![format!("{t:.0}"), f2(tm), f2(om)])
        .collect();
    markdown_table(
        "Fig 13b: mean engine state per node (KiB) over time",
        &["time (s)", "totoro KiB/node", "openfl KiB/node"],
        &rows,
    );
    csv_block("fig13b", &["time_s", "totoro_kib", "openfl_kib"], &rows);

    if let (Some(first), Some(last)) = (totoro_mem_series.first(), totoro_mem_series.last()) {
        println!(
            "\npaper check: after DHT construction no further memory growth -> totoro {:.1} KiB -> {:.1} KiB",
            first.1, last.1
        );
    }
}
