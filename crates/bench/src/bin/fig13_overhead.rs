//! Shim binary: runs the `fig13` scenario (Fig. 13a–b: CPU and memory
//! overhead vs OpenFL). Same flags as `totoro-bench fig13`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig13", &args);
}
