//! Shim binary: runs the `ablation` scenario (in-network aggregation vs
//! star ablation). Same flags as `totoro-bench ablation`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("ablation", &args);
}
