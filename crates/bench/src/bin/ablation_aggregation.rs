//! Ablation: what does in-network aggregation buy?
//!
//! DESIGN.md calls out the forest's in-network combining as a core design
//! choice (§4.3: interior nodes progressively aggregate, so the master
//! receives O(fanout) messages instead of O(N)). This ablation sweeps the
//! tree fanout cap (4 / 8 / uncapped JOIN-path tree) and contrasts the
//! measured master-side load with the analytic star reference (a
//! centralized server receiving every worker's update directly — the §3
//! SplitStream discussion's failure mode). Deeper trees trade a longer
//! aggregation makespan for an O(N/fanout)-fold cut in master load.
//!
//! Usage: `ablation_aggregation [--seed 1] [--update-kb 64]`

use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, markdown_table};
use totoro_bench::setups::{broadcast_from_root, build_tree, eua_topology, root_of, topic};
use totoro_simnet::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_u64(&args, "seed", 1);
    let update_kb = arg_usize(&args, "update-kb", 64);

    println!("# Ablation: in-network aggregation (tree) vs none (star)");

    let mut rows = Vec::new();
    for &n in &[64usize, 256, 1024] {
        for (label, fanout) in [("tree-f4", 4usize), ("tree-f8", 8), ("uncapped", 0)] {
            let (root_msgs, root_bytes, makespan_ms) = run(n, fanout, seed, update_kb * 1024);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                root_msgs.to_string(),
                f2(root_bytes as f64 / 1024.0),
                f2(makespan_ms),
            ]);
            println!(
                "  n={n} {label}: master received {root_msgs} msgs / {:.0} KiB, round makespan {makespan_ms:.0} ms",
                root_bytes as f64 / 1024.0
            );
        }
        // Analytic star reference: a central server ingests one update per
        // worker with no in-network help.
        let star_msgs = n as u64 - 1;
        let star_kib = (n - 1) as f64 * (update_kb as f64);
        rows.push(vec![
            n.to_string(),
            "star (analytic)".into(),
            star_msgs.to_string(),
            f2(star_kib),
            "-".into(),
        ]);
        println!("  n={n} star (analytic): master would receive {star_msgs} msgs / {star_kib:.0} KiB");
    }
    markdown_table(
        "Master-side load per aggregation round",
        &["nodes", "shape", "msgs at master", "KiB at master", "round makespan (ms)"],
        &rows,
    );
    csv_block(
        "ablation_aggregation",
        &["nodes", "shape", "msgs", "kib", "makespan_ms"],
        &rows,
    );
}

/// One broadcast+aggregate wave; returns (messages received by the root
/// during the wave, payload bytes received, makespan ms).
fn run(n: usize, fanout: usize, seed: u64, update_bytes: usize) -> (u64, u64, f64) {
    let topology = eua_topology(n, seed);
    let n = topology.len();
    // DHT base stays 16; only the tree fanout cap varies.
    let fconfig = totoro_pubsub::ForestConfig {
        fanout_cap: fanout, // 0 = uncapped JOIN-path tree.
        agg_timeout: totoro_simnet::SimDuration::from_secs(120),
        ..totoro_pubsub::ForestConfig::default()
    };
    let mut sim = totoro_bench::setups::echo_overlay_with(topology, seed, 16, fconfig);

    let t = topic("ablation", n as u64 ^ fanout as u64);
    build_tree(&mut sim, t, &(0..n).collect::<Vec<_>>(), SimTime::from_micros(60 * 1_000_000));
    let root = root_of(&sim, t).expect("root exists");

    // Measure only the wave: step in 50 ms slices until the aggregation
    // completes at the root, so maintenance chatter stays negligible.
    sim.traffic_mut().reset();
    let start = sim.now();
    broadcast_from_root(&mut sim, t, 1, update_bytes);
    let deadline = SimTime::from_micros(start.as_micros() + 600 * 1_000_000);
    let agg_at = loop {
        let done = sim
            .app(root)
            .upper
            .state
            .agg_log
            .iter()
            .find(|e| e.topic == t && e.round == 1)
            .map(|e| e.at);
        if let Some(at) = done {
            break at;
        }
        assert!(sim.now() < deadline, "aggregation never completed");
        let next = SimTime::from_micros(sim.now().as_micros() + 50_000);
        sim.run_until(next);
    };
    let traffic = sim.traffic().node(root);
    (
        traffic.msgs_recv,
        traffic.payload_recv,
        agg_at.saturating_since(start).as_secs_f64() * 1_000.0,
    )
}
