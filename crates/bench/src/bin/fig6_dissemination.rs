//! Shim binary: runs the `fig6` scenario (Fig. 6a–c: dissemination and
//! aggregation time vs N and fanout; O(log N) hops). Same flags as
//! `totoro-bench fig6`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig6", &args);
}
