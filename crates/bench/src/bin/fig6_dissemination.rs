//! Figure 6: model dissemination and gradient aggregation times for an
//! exponentially increasing number of edge nodes, plus the fanout sweep
//! (Fig. 6c) and the §7.3 O(log N) hop-count claim.
//!
//! The paper's claim: as tree size grows *exponentially* (20 → 5120), the
//! dissemination and aggregation times grow only *linearly*, because both
//! are bounded by tree depth = O(log N).
//!
//! Usage: `fig6_dissemination [--max-nodes 5120] [--seed 1] [--model-kb 96]`

use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, f3, markdown_table};
use totoro_bench::setups::{
    broadcast_from_root, build_tree, echo_overlay, eua_topology, root_of, topic,
};
use totoro_dht::{implicit_route_hops, random_ids, Id};
use totoro_simnet::{sub_rng, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_nodes = arg_usize(&args, "max-nodes", 5_120);
    let seed = arg_u64(&args, "seed", 1);
    let model_kb = arg_usize(&args, "model-kb", 96);

    println!("# Figure 6: dissemination & aggregation scaling (seed={seed})");

    // 6a + 6b: N sweep 20 -> max at fanout 16.
    let mut sizes = Vec::new();
    let mut n = 20;
    while n <= max_nodes {
        sizes.push(n);
        n *= 2;
    }
    let mut rows = Vec::new();
    for &n in &sizes {
        let (diss_ms, agg_ms, depth) = measure(n, 16, seed, model_kb * 1024);
        rows.push(vec![
            n.to_string(),
            f2(diss_ms),
            f2(agg_ms),
            depth.to_string(),
        ]);
        println!("  n={n}: dissemination {diss_ms:.1} ms, aggregation {agg_ms:.1} ms, depth {depth}");
    }
    markdown_table(
        "Fig 6a/6b: time vs #nodes (fanout 16)",
        &["nodes", "dissemination (ms)", "aggregation (ms)", "tree depth"],
        &rows,
    );
    csv_block("fig6ab", &["nodes", "diss_ms", "agg_ms", "depth"], &rows);

    // Linearity check: time at max N vs time at min N should scale like
    // depth (log), not like N.
    let first: f64 = rows.first().unwrap()[1].parse().unwrap();
    let last: f64 = rows.last().unwrap()[1].parse().unwrap();
    println!(
        "\npaper check: x{} nodes -> only x{:.1} dissemination time (log-bounded)",
        sizes.last().unwrap() / sizes[0],
        last / first.max(1e-9),
    );

    // 6c: fanout sweep at a fixed size.
    let n_fixed = (max_nodes / 2).max(640);
    let mut rows = Vec::new();
    for &fanout in &[8usize, 16, 32] {
        let (diss_ms, agg_ms, depth) = measure(n_fixed, fanout, seed + 7, model_kb * 1024);
        rows.push(vec![
            fanout.to_string(),
            f2(diss_ms),
            f2(agg_ms),
            depth.to_string(),
        ]);
    }
    markdown_table(
        &format!("Fig 6c: dissemination time vs tree fanout ({n_fixed} nodes)"),
        &["fanout", "dissemination (ms)", "aggregation (ms)", "depth"],
        &rows,
    );
    csv_block("fig6c", &["fanout", "diss_ms", "agg_ms", "depth"], &rows);

    // §7.3: O(log N) routing hops up to millions of nodes (implicit overlay).
    hops_sweep(seed);
}

/// Builds one n-node tree, broadcasts one model, waits for the aggregation
/// wave, and returns (dissemination makespan ms, aggregation makespan ms,
/// max depth).
fn measure(n: usize, fanout: usize, seed: u64, model_bytes: usize) -> (f64, f64, u16) {
    let topology = eua_topology(n, seed);
    let n = topology.len();
    let mut sim = echo_overlay(topology, seed, fanout);
    let t = topic("fig6", seed ^ n as u64 ^ fanout as u64);
    let members: Vec<usize> = (0..n).collect();
    build_tree(&mut sim, t, &members, SimTime::from_micros(60 * 1_000_000));

    // Reset logs; broadcast once.
    let start = sim.now();
    broadcast_from_root(&mut sim, t, 1, model_bytes);
    sim.run_until(SimTime::from_micros(start.as_micros() + 600 * 1_000_000));

    // Dissemination makespan: last broadcast receipt among subscribers.
    let mut last_receipt = start;
    let mut max_depth = 0;
    for i in 0..n {
        let forest = &sim.app(i).upper;
        for ev in &forest.state.broadcast_log {
            if ev.topic == t && ev.round == 1 {
                last_receipt = last_receipt.max(ev.at);
                max_depth = max_depth.max(ev.depth);
            }
        }
    }
    // Aggregation completion at the root.
    let root = root_of(&sim, t).expect("root exists");
    let agg_at = sim
        .app(root)
        .upper
        .state
        .agg_log
        .iter()
        .find(|e| e.topic == t && e.round == 1)
        .map(|e| e.at)
        .expect("aggregation completed");

    let diss_ms = last_receipt.saturating_since(start).as_secs_f64() * 1_000.0;
    let agg_ms = agg_at.saturating_since(last_receipt).as_secs_f64() * 1_000.0;
    (diss_ms, agg_ms, max_depth)
}

/// Mean routing hops over an implicit perfect overlay, N up to millions.
fn hops_sweep(seed: u64) {
    let mut rng = sub_rng(seed, "hops");
    let mut rows = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let ids = random_ids(n, &mut rng);
        let trials = 200;
        let mut total = 0u64;
        let mut max = 0u32;
        for t in 0..trials {
            let key = Id::new(rand::Rng::gen::<u128>(&mut rng));
            let hops = implicit_route_hops(&ids, (t * 131) % n, key, 4);
            total += u64::from(hops);
            max = max.max(hops);
        }
        let mean = total as f64 / f64::from(trials as u32);
        let bound = (n as f64).log(16.0).ceil();
        rows.push(vec![
            n.to_string(),
            f3(mean),
            max.to_string(),
            f2(bound),
        ]);
        println!("  n={n}: mean hops {mean:.2}, max {max}, ceil(log16 N)={bound}");
    }
    markdown_table(
        "§7.3: routing hops vs N (b=4, implicit perfect overlay)",
        &["nodes", "mean hops", "max hops", "ceil(log_16 N)"],
        &rows,
    );
    csv_block("fig6_hops", &["nodes", "mean_hops", "max_hops", "log16"], &rows);
}
