//! Figures 8 and 9: time-to-accuracy curves of Totoro, OpenFL-like, and
//! FedScale-like engines when 1/5/10/20 applications train concurrently.
//!
//! Figure 8 uses the mid-scale "speech" task (paper: Google Speech), Figure
//! 9 the large-scale "femnist" task (paper: FEMNIST). The paper's
//! observations to reproduce: (1) Totoro's curves barely move as the app
//! count grows (§7.4 reports 15.41 h -> 15.47 h from 1 to 20 models);
//! (2) the centralized engines' curves stretch out with the app count.
//!
//! Usage: `fig8_fig9_tta [--dataset speech] [--nodes 48] [--samples 30]
//!         [--apps 1,5,10,20] [--fanout 32] [--seed 1]`

use totoro_baselines::{CentralizedEngine, ServerProfile};
use totoro_bench::report::{arg_string, arg_u64, arg_usize, csv_block, f3};
use totoro_bench::setups::{
    edge_latency, fl_app_config, target_for, task_by_name, to_central_spec, totoro_with_apps,
};
use totoro_ml::{AccuracyPoint, TaskGenerator};
use totoro_simnet::geo::{eua_regions_scaled, generate};
use totoro_simnet::{sub_rng, SimTime, Topology};

const MAX_SIM: SimTime = SimTime::from_micros(48 * 3_600 * 1_000_000);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = arg_string(&args, "dataset", "speech");
    let n = arg_usize(&args, "nodes", 48);
    let samples = arg_usize(&args, "samples", 30);
    let fanout = arg_usize(&args, "fanout", 32);
    let seed = arg_u64(&args, "seed", 1);
    let apps_list: Vec<usize> = arg_string(&args, "apps", "1,5,10,20")
        .split(',')
        .filter_map(|x| x.trim().parse().ok())
        .collect();

    let samples = if dataset == "femnist" { samples * 3 } else { samples };
    let figure = if dataset == "speech" { 8 } else { 9 };
    let task = task_by_name(&dataset);
    println!(
        "# Figure {figure}: time-to-accuracy, dataset {dataset} (target {:.1}%)",
        target_for(&task) * 100.0
    );

    for &num_apps in &apps_list {
        println!("\n== {num_apps} concurrent applications ==");

        // Totoro.
        let mut gen_rng = sub_rng(seed, "task");
        let generator = TaskGenerator::new(task_by_name(&dataset), &mut gen_rng);
        let mut topology = topology_for(n, seed);
        apply_device_class(&mut topology, &dataset);
        let mut deploy =
            totoro_with_apps(topology, seed, fanout, num_apps, &generator, samples, 60);
        deploy.run(MAX_SIM);
        let total = (0..num_apps)
            .filter_map(|a| deploy.curve(a).last().map(|p| p.time_secs))
            .fold(0.0, f64::max);
        println!("totoro: all apps finished by {total:.0}s");
        emit_curve(
            &format!("fig{figure}_totoro_{num_apps}apps"),
            &deploy.curve(0),
        );

        // Baselines.
        for (label, profile) in [
            ("openfl", ServerProfile::openfl_like()),
            ("fedscale", ServerProfile::fedscale_like()),
        ] {
            let mut gen_rng = sub_rng(seed, "task");
            let generator = TaskGenerator::new(task_by_name(&dataset), &mut gen_rng);
            let mut topology = topology_for(n + 1, seed);
            apply_device_class(&mut topology, &dataset);
            let mut engine = CentralizedEngine::new(topology, profile, seed);
            let participants: Vec<usize> = (1..=n).collect();
            let mut rng = sub_rng(seed, "shards");
            for a in 0..num_apps {
                let shards = generator.client_shards(n, samples, 0.5, &mut rng);
                let cfg = fl_app_config(
                    &format!("{}-app-{a}", generator.spec.name),
                    a as u64,
                    &generator,
                    48,
                    1_000 + a as u64,
                );
                engine.submit_app(to_central_spec(&cfg), &participants, shards);
            }
            engine.run(MAX_SIM);
            let total = (0..num_apps)
                .filter_map(|a| engine.server().curve(a).last().map(|p| p.time_secs))
                .fold(0.0, f64::max);
            println!("{label}: all apps finished by {total:.0}s");
            emit_curve(
                &format!("fig{figure}_{label}_{num_apps}apps"),
                engine.server().curve(0),
            );
        }
    }
}

/// Prints a (time, round, accuracy) curve as CSV.
fn emit_curve(name: &str, curve: &[AccuracyPoint]) {
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.time_secs),
                p.round.to_string(),
                f3(p.accuracy),
            ]
        })
        .collect();
    csv_block(name, &["time_s", "round", "accuracy"], &rows);
}


/// Device profile per dataset: the large-scale task's rounds are dominated
/// by on-device training (as in the paper, where FEMNIST trains far longer
/// per round than Speech), modeled by weaker edge devices.
fn apply_device_class(topology: &mut Topology, dataset: &str) {
    if dataset == "femnist" {
        for i in 0..topology.len() {
            let mut p = topology.profile(i);
            p.compute_speed *= 0.02;
            topology.set_profile(i, p);
        }
    }
}

fn topology_for(n: usize, seed: u64) -> Topology {
    let mut rng = sub_rng(seed, "eua-topology");
    let nodes = generate(&eua_regions_scaled(n), &mut rng);
    let nodes = &nodes[..n.min(nodes.len())];
    Topology::from_placements(nodes, edge_latency())
}
