//! Shim binary: runs the `fig8` or `fig9` scenario (Figs. 8–9:
//! time-to-accuracy curves for 1/5/10/20 concurrent apps).
//!
//! Historically this one binary served both figures, selected with
//! `--dataset speech|femnist`; the flag is still honored here and mapped to
//! the `fig8` (speech) or `fig9` (femnist) scenario registration.

use totoro_bench::logging;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = "speech".to_string();
    if let Some(i) = args.iter().position(|a| a == "--dataset") {
        if i + 1 >= args.len() {
            logging::error("--dataset requires a value (speech|femnist)");
            std::process::exit(2);
        }
        dataset = args.remove(i + 1);
        args.remove(i);
    }
    let name = match dataset.as_str() {
        "speech" => "fig8",
        "femnist" => "fig9",
        other => {
            logging::error(format_args!(
                "unknown dataset {other:?} (expected speech|femnist)"
            ));
            std::process::exit(2);
        }
    };
    totoro_bench::scenarios::run_named(name, &args);
}
