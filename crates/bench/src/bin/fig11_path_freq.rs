//! Shim binary: runs the `fig11` scenario (Fig. 11: path-selection
//! frequencies over time). Same flags as `totoro-bench fig11`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig11", &args);
}
