//! `totoro-chaos`: the seed-sweep fault-plan explorer.
//!
//! Runs N seeds × M canned fault plans through the parallel trial engine
//! with live protocol-invariant oracles, reports violations as replayable
//! `(plan, seed)` pairs (greedily shrunk to a minimal fault set), and exits
//! non-zero if any invariant fired.
//!
//! ```text
//! totoro-chaos --seeds 64 --plan loss-spike partition churn+stragglers --jobs 8
//! totoro-chaos --replay churn+stragglers:49 --inject-bug drop-repair-join
//! totoro-chaos --replay churn+stragglers:49 --trace out.json --inject-bug drop-repair-join
//! ```
//!
//! `--plan` accepts one or more names (so shell brace expansion like
//! `--plan {loss-spike,partition}` works) or a single comma-separated list.
//! `--trace PATH` (replay only) records the whole trial through a
//! [`RecordingSink`] and, for every violation, prints the causal span of
//! the last forest-layer message chain in flight when the oracle fired.
//! Output is byte-identical across `--jobs` settings.

use std::process::ExitCode;

use totoro_bench::chaos::{
    run_chaos_trial_sink, shrink, BugKind, ChaosScenario, ChaosSpec, PLAN_NAMES,
};
use totoro_bench::scenario::{self, run_trials, Params, Scenario, Trial};
use totoro_bench::{logging, report};
use totoro_simnet::{
    chrome_trace, jsonl_trace, last_trace_before, span_report, NoopSink, RecordingSink,
};

struct Cli {
    nodes: usize,
    trees: usize,
    seeds: usize,
    seed: u64,
    jobs: usize,
    plans: Vec<String>,
    bug: Option<String>,
    report_path: Option<String>,
    replay: Option<(String, u64)>,
    trace: Option<String>,
    trace_filter: Option<String>,
    quiet: bool,
    verbose: bool,
}

fn usage() -> ! {
    logging::info(format_args!(
        "usage: totoro-chaos [--seeds N] [--plan NAME... | NAME,NAME] [--nodes N] [--trees N]\n\
         \x20                   [--seed S] [--jobs J] [--inject-bug NAME] [--report PATH]\n\
         \x20                   [--replay PLAN:SEED] [--trace PATH] [--trace-filter L1,L2,...]\n\
         \x20                   [--quiet] [--verbose]\n\
         plans: {}",
        PLAN_NAMES.join(", ")
    ));
    std::process::exit(2);
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        nodes: 200,
        trees: 3,
        seeds: 16,
        seed: 42,
        jobs: 1,
        plans: Vec::new(),
        bug: None,
        report_path: None,
        replay: None,
        trace: None,
        trace_filter: None,
        quiet: false,
        verbose: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    logging::error(format_args!("flag {flag} expects a value"));
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--nodes" => cli.nodes = parse_num(&value("--nodes"), "--nodes"),
            "--trees" => cli.trees = parse_num(&value("--trees"), "--trees"),
            "--seeds" => cli.seeds = parse_num(&value("--seeds"), "--seeds"),
            "--seed" => cli.seed = parse_num(&value("--seed"), "--seed") as u64,
            "--jobs" => cli.jobs = parse_num(&value("--jobs"), "--jobs").max(1),
            "--inject-bug" => cli.bug = Some(value("--inject-bug")),
            "--report" => cli.report_path = Some(value("--report")),
            "--trace" => cli.trace = Some(value("--trace")),
            "--trace-filter" => match scenario::validate_trace_filter(&value("--trace-filter")) {
                Ok(layers) => cli.trace_filter = Some(layers),
                Err(msg) => {
                    logging::error(msg);
                    usage();
                }
            },
            "--quiet" => cli.quiet = true,
            "--verbose" => cli.verbose = true,
            "--replay" => {
                let spec = value("--replay");
                let Some((plan, seed)) = spec.rsplit_once(':') else {
                    logging::error(format_args!("--replay expects PLAN:SEED, got {spec:?}"));
                    usage();
                };
                let Ok(seed) = seed.parse::<u64>() else {
                    logging::error(format_args!(
                        "--replay seed must be an integer, got {seed:?}"
                    ));
                    usage();
                };
                cli.replay = Some((plan.to_string(), seed));
            }
            "--plan" | "--plans" => {
                // Consume every following non-flag token: brace expansion
                // hands us `--plan a b c`, a quoted list hands us `a,b,c`.
                while let Some(next) = it.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    let token = it.next().expect("peeked");
                    for name in token.split(',') {
                        let name = name.trim().trim_matches(|c| c == '{' || c == '}');
                        if !name.is_empty() {
                            cli.plans.push(name.to_string());
                        }
                    }
                }
                if cli.plans.is_empty() {
                    logging::error("--plan expects at least one plan name");
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                logging::error(format_args!("unknown argument {other:?}"));
                usage();
            }
        }
    }
    if cli.plans.is_empty() {
        cli.plans = PLAN_NAMES.iter().map(|s| s.to_string()).collect();
    }
    for p in &cli.plans {
        if !PLAN_NAMES.contains(&p.as_str()) {
            logging::error(format_args!(
                "unknown plan {p:?} (use {})",
                PLAN_NAMES.join(", ")
            ));
            usage();
        }
    }
    if let Some(bug) = &cli.bug {
        if BugKind::parse(bug).is_none() {
            logging::error(format_args!("unknown bug {bug:?} (use drop-repair-join)"));
            usage();
        }
    }
    if cli.trace.is_some() && cli.replay.is_none() {
        logging::error("--trace is only valid with --replay (sweeps would trace every trial)");
        usage();
    }
    cli
}

fn parse_num(v: &str, flag: &str) -> usize {
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            logging::error(format_args!("{flag} expects an integer, got {v:?}"));
            usage();
        }
    }
}

/// Re-runs a single `(plan, seed)` pair verbosely, shrinking on failure.
/// With `--trace`, records the trial and prints the causal span behind
/// each violation.
fn replay(cli: &Cli, plan: &str, seed: u64) -> ExitCode {
    let spec = ChaosSpec {
        nodes: cli.nodes,
        trees: cli.trees,
        plan: plan.to_string(),
        seed,
        bug: cli.bug.as_deref().and_then(BugKind::parse),
    };
    report::emitln(format_args!(
        "replaying plan={plan} seed={seed} nodes={} trees={}{}",
        spec.nodes,
        spec.trees,
        spec.bug
            .map(|b| format!(" bug={}", b.name()))
            .unwrap_or_default()
    ));
    let (outcome, records) = if cli.trace.is_some() {
        let sink = RecordingSink::new(cli.nodes).with_layer_filter(cli.trace_filter.clone());
        let (outcome, mut sink) = run_chaos_trial_sink(&spec, None, sink);
        (outcome, Some(sink.take_records()))
    } else {
        (run_chaos_trial_sink(&spec, None, NoopSink).0, None)
    };
    if let (Some(path), Some(records)) = (cli.trace.as_deref(), records.as_deref()) {
        let trace = if path.ends_with(".jsonl") {
            jsonl_trace(records)
        } else {
            chrome_trace(records)
        };
        if let Err(e) = std::fs::write(path, &trace) {
            logging::error(format_args!("cannot write trace {path}: {e}"));
            return ExitCode::FAILURE;
        }
        logging::info(format_args!(
            "wrote {} trace bytes ({} records) to {path}",
            trace.len(),
            records.len()
        ));
    }
    report::emitln("plan atoms:");
    for atom in &outcome.atoms {
        report::emitln(format_args!("  - {atom}"));
    }
    report::emitln(format_args!(
        "rounds={} events={} chaos: dropped={} duplicated={} delayed={}",
        outcome.rounds,
        outcome.sim.events,
        outcome.chaos.dropped,
        outcome.chaos.duplicated,
        outcome.chaos.delayed
    ));
    if outcome.violations.is_empty() {
        report::emitln("no invariant violations");
        return ExitCode::SUCCESS;
    }
    for v in &outcome.violations {
        report::emitln(format_args!(
            "VIOLATION: {} @ {:.1}s: {}",
            v.invariant,
            v.at.as_micros() as f64 / 1e6,
            v.detail
        ));
        if let Some(records) = records.as_deref() {
            match last_trace_before(records, "forest", v.at.as_micros()) {
                Some(trace) => {
                    report::emitln(format_args!(
                        "  last forest message chain in flight (span {trace}):"
                    ));
                    for line in span_report(records, trace) {
                        report::emitln(format_args!("    {line}"));
                    }
                }
                None => report::emitln("  no forest message chain recorded before the violation"),
            }
        }
    }
    let shrunk = shrink(&spec);
    report::emitln(format_args!(
        "shrunk to {} atom(s) in {} runs:",
        shrunk.atoms.len(),
        shrunk.runs
    ));
    for atom in &shrunk.atoms {
        report::emitln(format_args!("  - {atom}"));
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);
    logging::set_level(logging::level_from_flags(cli.quiet, cli.verbose));
    if let Some((plan, seed)) = cli.replay.clone() {
        return replay(&cli, &plan, seed);
    }

    let mut params = Params {
        nodes: cli.nodes,
        seed: cli.seed,
        jobs: cli.jobs,
        extra: vec![
            ("seeds".to_string(), cli.seeds.to_string()),
            ("trees".to_string(), cli.trees.to_string()),
            ("plans".to_string(), cli.plans.join(",")),
        ],
        ..Params::default()
    };
    if let Some(bug) = &cli.bug {
        params.extra.push(("inject-bug".to_string(), bug.clone()));
    }

    let scenario = ChaosScenario;
    let trials = Trial::seal(scenario.trials(&params));
    let reports = run_trials(&scenario, &trials, params.jobs);
    let text = scenario.render(&params, &reports);
    report::emit(&text);

    let violations: u64 = reports.iter().map(|r| r.metric("violations") as u64).sum();
    if let Some(path) = &cli.report_path {
        if let Err(e) = std::fs::write(path, &text) {
            logging::error(format_args!("failed to write report {path:?}: {e}"));
            return ExitCode::FAILURE;
        }
    }
    if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
