//! Shim binary: runs the `fig10` scenario (Fig. 10: regret comparison of
//! path-planning algorithms). Same flags as `totoro-bench fig10`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig10", &args);
}
