//! Figure 10: regret comparison of Totoro's bandit-based hop-by-hop path
//! planning against end-to-end LCB routing \[42\] and next-hop empirical
//! routing \[25\].
//!
//! The environment is an unreliable edge network with a deceptive
//! high-quality first link (the situation §7.5 calls out: "paths with a
//! low-delay first link but with a high overall delay"), modeled by
//! `trap_graph`, plus a random layered graph for breadth.
//!
//! Usage: `fig10_regret [--packets 2000] [--runs 10] [--seed 1]`

use totoro_bandit::{layered, mean_regret_curve, trap_graph, LinkGraph, Policy, Vertex};
use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, markdown_table};

const POLICIES: [Policy; 4] = [
    Policy::HopByHopKlUcb,
    Policy::EndToEndLcb,
    Policy::NextHopEmpirical,
    Policy::Oracle,
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let packets = arg_usize(&args, "packets", 2_000);
    let runs = arg_usize(&args, "runs", 10);
    let seed = arg_u64(&args, "seed", 1);

    println!("# Figure 10: cumulative regret vs packets (runs={runs})");

    let (g, s, d) = trap_graph();
    report_graph("trap (deceptive first link)", &g, s, d, packets, runs, seed);

    let mut rng = rand::SeedableRng::seed_from_u64(seed);
    let (g, s, d) = layered(3, 3, (0.15, 0.95), &mut rng);
    report_graph("layered 3x3 random", &g, s, d, packets, runs, seed + 1);
}

fn report_graph(
    label: &str,
    g: &LinkGraph,
    s: Vertex,
    d: Vertex,
    packets: usize,
    runs: usize,
    seed: u64,
) {
    println!("\n== graph: {label} ({} vertices, {} links) ==", g.num_vertices(), g.num_edges());
    let (_, d_star) = g.best_path(s, d).expect("connected");
    println!("optimal expected delay: {d_star:.2} slots/packet");

    let mut curves = Vec::new();
    for &p in &POLICIES {
        let curve = mean_regret_curve(g, s, d, p, packets, runs, seed);
        println!(
            "  {:<20} regret @K/4 {:>9.1}  @K/2 {:>9.1}  @K {:>9.1}",
            p.name(),
            curve[packets / 4 - 1],
            curve[packets / 2 - 1],
            curve[packets - 1]
        );
        curves.push((p, curve));
    }

    let checkpoints: Vec<usize> = (1..=20).map(|i| i * packets / 20).collect();
    let rows: Vec<Vec<String>> = checkpoints
        .iter()
        .map(|&k| {
            let mut row = vec![k.to_string()];
            for (_, curve) in &curves {
                row.push(f2(curve[k - 1]));
            }
            row
        })
        .collect();
    let headers: Vec<&str> = std::iter::once("packets")
        .chain(POLICIES.iter().map(|p| p.name()))
        .collect();
    markdown_table(
        &format!("Fig 10 [{label}]: mean cumulative regret"),
        &headers,
        &rows,
    );
    csv_block(&format!("fig10_{}", label.split(' ').next().unwrap()), &headers, &rows);

    let final_hb = curves[0].1[packets - 1];
    let final_e2e = curves[1].1[packets - 1];
    let final_nh = curves[2].1[packets - 1];
    println!(
        "paper check: Totoro achieves lower regret -> totoro {final_hb:.0} vs end-to-end {final_e2e:.0} vs next-hop {final_nh:.0}"
    );
}
