//! Figure 12: failure-recovery time for an exponentially increasing number
//! of dataflow trees, with 5% of each tree's nodes failing simultaneously.
//!
//! The paper's claim: recovery time stays *stable* as the number of trees
//! grows exponentially, because every failure is detected by the failed
//! node's tree children via keep-alives and repaired locally (re-JOIN),
//! fully in parallel and without any central coordinator (§4.5).
//!
//! Usage: `fig12_recovery [--nodes 400] [--seed 1] [--fail-frac 0.05]`

use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, markdown_table, percentile};
use totoro_bench::setups::{build_tree, echo_overlay, eua_topology, topic};
use totoro_simnet::{sub_rng, ChurnSchedule, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "nodes", 400);
    let seed = arg_u64(&args, "seed", 1);
    let fail_frac: f64 = totoro_bench::report::arg_string(&args, "fail-frac", "0.05")
        .parse()
        .expect("fail-frac is a float");

    println!("# Figure 12: failure recovery vs #trees ({}% simultaneous failures)", fail_frac * 100.0);

    let mut rows = Vec::new();
    for &trees in &[1usize, 2, 4, 8, 16, 32] {
        // Accumulate over several seeds for stable percentiles.
        let mut detect = Vec::new();
        let mut repair = Vec::new();
        let mut total = Vec::new();
        let mut failed = 0;
        for rep in 0..3 {
            let (mut episodes, kill_count) = run(n, trees, fail_frac, seed + rep * 101);
            for (d, r) in episodes.drain(..) {
                detect.push(d);
                repair.push(r);
                total.push(d + r);
            }
            failed += kill_count;
        }
        let repaired = repair.len();
        let med_detect = percentile(&detect, 50.0);
        let med_repair = percentile(&repair, 50.0);
        let p95_total = percentile(&total, 95.0);
        rows.push(vec![
            trees.to_string(),
            f2(med_detect),
            f2(med_repair),
            f2(p95_total),
            repaired.to_string(),
            failed.to_string(),
        ]);
        println!(
            "  trees={trees}: median detect {med_detect:.0} ms, median repair {med_repair:.0} ms, p95 total {p95_total:.0} ms ({repaired} repairs, {failed} killed)"
        );
    }
    markdown_table(
        "Fig 12: tree repair time vs number of trees",
        &[
            "trees",
            "median detection (ms)",
            "median repair (ms)",
            "p95 total (ms)",
            "repairs",
            "nodes killed",
        ],
        &rows,
    );
    csv_block(
        "fig12",
        &["trees", "detect_ms", "repair_ms", "p95_total_ms", "repairs", "killed"],
        &rows,
    );

    // Stability check: repair time at 32 trees close to 1 tree.
    let first: f64 = rows[0][2].parse::<f64>().unwrap().max(1.0);
    let last: f64 = rows.last().unwrap()[2].parse::<f64>().unwrap().max(1.0);
    println!(
        "\npaper check: repair stays stable under x32 trees -> median repair changes by x{:.2}",
        last / first
    );
}

/// Builds `trees` trees over `n` nodes, kills `fail_frac` of the overlay at
/// one instant, and measures per repair episode the (detection latency ms,
/// re-attachment latency ms). Returns (episodes, #killed).
fn run(n: usize, trees: usize, fail_frac: f64, seed: u64) -> (Vec<(f64, f64)>, usize) {
    let topology = eua_topology(n, seed);
    let n = topology.len();
    let mut sim = echo_overlay(topology, seed, 16);
    let members: Vec<usize> = (0..n).collect();
    let mut rng = sub_rng(seed ^ trees as u64, "fig12");
    let mut tree_members: Vec<Vec<usize>> = Vec::new();
    for t in 0..trees {
        let tp = topic("fig12", t as u64);
        let subset: Vec<usize> =
            rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, (n * 3) / 4)
                .copied()
                .collect();
        build_tree(&mut sim, tp, &subset, SimTime::ZERO);
        tree_members.push(subset);
    }
    sim.run_until(SimTime::from_micros(60 * 1_000_000));

    // Paper workload: "each tree has 5% of nodes that fail ... at the same
    // time". Nodes serve many trees at once, so killing 5% of the overlay
    // takes down ~5% of every tree's membership simultaneously; the number
    // of concurrent repairs then grows with the number of trees while the
    // per-repair work stays local.
    let _ = &tree_members;
    let kill_at = SimTime::from_micros(60 * 1_000_000);
    let schedule = ChurnSchedule::mass_failure(&members, fail_frac, kill_at, &mut rng);
    let killed = schedule.nodes_affected();
    schedule.apply(&mut sim);
    sim.run_until(SimTime::from_micros(240 * 1_000_000));

    // Collect completed repair episodes started at/after the kill,
    // decomposed into detection (kill -> detected) and repair
    // (detected -> reattached).
    let mut episodes = Vec::new();
    let mut incomplete = 0usize;
    for i in 0..n {
        for ev in &sim.app(i).upper.state.repair_events {
            if ev.detected >= kill_at {
                match ev.reattached {
                    Some(done) => episodes.push((
                        ev.detected.saturating_since(kill_at).as_secs_f64() * 1_000.0,
                        done.saturating_since(ev.detected).as_secs_f64() * 1_000.0,
                    )),
                    None => incomplete += 1,
                }
            }
        }
    }
    assert!(
        incomplete <= (episodes.len() / 5).max(2),
        "too many unrepaired orphans: {incomplete} vs {} repaired",
        episodes.len()
    );
    (episodes, killed)
}
