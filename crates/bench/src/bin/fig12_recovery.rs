//! Shim binary: runs the `fig12` scenario (Fig. 12: failure-recovery time
//! vs number of trees). Same flags as `totoro-bench fig12`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig12", &args);
}
