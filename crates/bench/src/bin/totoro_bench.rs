//! The unified benchmark CLI: dispatches evaluation scenarios by name.
//!
//! ```text
//! totoro-bench --list
//! totoro-bench fig7 --nodes 300 --jobs 8
//! totoro-bench table3 --json
//! ```
//!
//! The historical per-figure binaries (`fig5_scalability`, ...) are thin
//! shims over the same registry.

use totoro_bench::scenario::run_scenario;
use totoro_bench::{logging, report, scenarios};

fn print_list() {
    report::emitln("available scenarios:");
    for s in scenarios::all() {
        report::emitln(format_args!("  {:<10} {}", s.name(), s.description()));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--list") | Some("--help") | Some("-h") => {
            report::emitln(
                "usage: totoro-bench <scenario> [--nodes N] [--seed S] [--jobs J] [--json] [--<key> <value>]",
            );
            print_list();
            if args.is_empty() {
                std::process::exit(2);
            }
        }
        Some(name) => match scenarios::find(name) {
            Some(s) => run_scenario(s.as_ref(), &args[1..]),
            None => {
                logging::error(format_args!("unknown scenario {name:?}"));
                print_list();
                std::process::exit(2);
            }
        },
    }
}
