//! `totoro-mc`: the bounded model checker for small overlay configurations.
//!
//! Exhaustively explores pending-event reorderings and bounded fault
//! injections (message drop/duplication, node crash/revive) over the
//! scenarios registered in `totoro_bench::mc`, checking the protocol
//! invariant oracles at every quiescent end state. On a violation it
//! prints the minimized replay schedule plus the causal spans behind it
//! (PR-4 trace machinery) and exits non-zero.
//!
//! ```text
//! totoro-mc --list
//! totoro-mc --scenario join-leave-4
//! totoro-mc --scenario forest-repair-4 --depth 6 --fault-budget 1
//! totoro-mc --scenario forest-repair-4 --replay ce.txt
//! totoro-mc --scenario join-leave-4 --out ce.txt
//! ```
//!
//! With no `--scenario`, every registered scenario is checked in order.
//! `--out PATH` writes the minimized counterexample schedule (replayable
//! with `--replay`) when a violation is found; CI uploads it as an
//! artifact. Seeded protocol bugs are compiled in with
//! `--features mc-bugs` (see DESIGN.md §14).

use std::process::ExitCode;

use totoro_bench::mc::{by_name, registry, McScenario};
use totoro_bench::{logging, report};
use totoro_mc::Choice;

struct Cli {
    scenario: Option<String>,
    replay: Option<String>,
    out: Option<String>,
    depth: Option<usize>,
    fault_budget: Option<usize>,
    max_states: Option<u64>,
    window: Option<usize>,
    list: bool,
    quiet: bool,
    verbose: bool,
}

fn usage() -> ! {
    logging::info(format_args!(
        "usage: totoro-mc [--scenario NAME] [--replay FILE] [--out FILE]\n\
         \x20                [--depth N] [--fault-budget N] [--max-states N] [--window N]\n\
         \x20                [--list] [--quiet] [--verbose]\n\
         scenarios: {}",
        registry()
            .iter()
            .map(|s| s.name)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    std::process::exit(2);
}

fn parse_num(v: &str, flag: &str) -> u64 {
    match v.parse() {
        Ok(n) => n,
        Err(_) => {
            logging::error(format_args!("{flag} expects an integer, got {v:?}"));
            usage();
        }
    }
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        scenario: None,
        replay: None,
        out: None,
        depth: None,
        fault_budget: None,
        max_states: None,
        window: None,
        list: false,
        quiet: false,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    logging::error(format_args!("flag {flag} expects a value"));
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--scenario" => cli.scenario = Some(value("--scenario")),
            "--replay" => cli.replay = Some(value("--replay")),
            "--out" => cli.out = Some(value("--out")),
            "--depth" => cli.depth = Some(parse_num(&value("--depth"), "--depth") as usize),
            "--fault-budget" => {
                cli.fault_budget =
                    Some(parse_num(&value("--fault-budget"), "--fault-budget") as usize)
            }
            "--max-states" => {
                cli.max_states = Some(parse_num(&value("--max-states"), "--max-states"))
            }
            "--window" => cli.window = Some(parse_num(&value("--window"), "--window") as usize),
            "--list" => cli.list = true,
            "--quiet" => cli.quiet = true,
            "--verbose" => cli.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                logging::error(format_args!("unknown argument {other:?}"));
                usage();
            }
        }
    }
    if cli.replay.is_some() && cli.scenario.is_none() {
        logging::error("--replay needs --scenario (schedules are scenario-relative)");
        usage();
    }
    cli
}

/// Applies the CLI's bound overrides to a scenario.
fn with_overrides(mut s: McScenario, cli: &Cli) -> McScenario {
    if let Some(d) = cli.depth {
        s.mc.max_depth = d;
    }
    if let Some(f) = cli.fault_budget {
        s.mc.fault_budget = f;
    }
    if let Some(m) = cli.max_states {
        s.mc.max_states = m;
    }
    if let Some(w) = cli.window {
        s.mc.reorder_window = w;
    }
    s
}

/// Replays a schedule file against a scenario, printing the full span
/// rendering. Exit mirrors the verdict: violation → failure.
fn replay(scenario: &McScenario, path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            logging::error(format_args!("cannot read schedule {path}: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let Some(schedule) = Choice::parse_schedule(&text) else {
        logging::error(format_args!("malformed schedule in {path}"));
        return ExitCode::FAILURE;
    };
    let violated = scenario.violation_of(&schedule).is_some();
    for line in scenario.render_counterexample(&schedule) {
        report::emitln(line);
    }
    if violated {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Explores one scenario; returns whether a violation was found.
fn explore(scenario: &McScenario, out: Option<&str>) -> bool {
    report::emitln(format_args!(
        "checking {}: nodes={} depth={} fault-budget={} window={} max-states={}",
        scenario.name,
        scenario.nodes,
        scenario.mc.max_depth,
        scenario.mc.fault_budget,
        scenario.mc.reorder_window,
        scenario.mc.max_states
    ));
    let result = scenario.explore();
    report::emitln(format_args!(
        "  states: visited={} deduped={} pruned={} discarded={}{}",
        result.stats.visited,
        result.stats.deduped,
        result.stats.pruned,
        result.stats.discarded,
        if result.stats.truncated {
            " (truncated by state budget)"
        } else {
            ""
        }
    ));
    let Some(v) = result.violation else {
        report::emitln("  no violations");
        return false;
    };
    report::emitln(format_args!("  VIOLATION: {}", v.detail));
    report::emitln(format_args!(
        "  minimal schedule ({} choices):",
        v.schedule.len()
    ));
    for line in Choice::render_schedule(&v.schedule).lines() {
        report::emitln(format_args!("    {line}"));
    }
    for line in scenario.render_counterexample(&v.schedule) {
        report::emitln(format_args!("  {line}"));
    }
    if let Some(path) = out {
        let text = format!(
            "# totoro-mc counterexample: scenario {} — {}\n{}",
            scenario.name,
            v.detail,
            Choice::render_schedule(&v.schedule)
        );
        match std::fs::write(path, text) {
            Ok(()) => logging::info(format_args!("wrote counterexample schedule to {path}")),
            Err(e) => logging::error(format_args!("cannot write {path}: {e}")),
        }
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);
    logging::set_level(logging::level_from_flags(cli.quiet, cli.verbose));
    if cli.list {
        for s in registry() {
            report::emitln(format_args!("{}: {}", s.name, s.about));
        }
        return ExitCode::SUCCESS;
    }
    let scenarios: Vec<McScenario> = match &cli.scenario {
        Some(name) => match by_name(name) {
            Some(s) => vec![with_overrides(s, &cli)],
            None => {
                logging::error(format_args!("unknown scenario {name:?}"));
                usage();
            }
        },
        None => registry()
            .into_iter()
            .map(|s| with_overrides(s, &cli))
            .collect(),
    };
    if let Some(path) = &cli.replay {
        return replay(&scenarios[0], path);
    }
    let mut violated = false;
    for s in &scenarios {
        violated |= explore(s, cli.out.as_deref());
    }
    if violated {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
