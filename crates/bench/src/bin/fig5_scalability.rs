//! Shim binary: runs the `fig5` scenario (Fig. 5a–d: zones, master
//! distribution, branch balance). Same flags as `totoro-bench fig5`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig5", &args);
}
