//! Figure 5: Totoro's scalability and load balance.
//!
//! * **5a** — edge zones formed from an EUA-shaped topology by distributed
//!   binning (reports zone sizes/diameters instead of a map).
//! * **5b** — masters-per-node distribution when 500 dataflow trees run on
//!   a 1000-node zone (the paper reports "99.5% of the nodes are the roots
//!   of 3 trees or less").
//! * **5c** — masters per zone under workloads proportional to zone size.
//! * **5d** — branch (per-level) distribution of 17 trees with fanout 8,
//!   showing balanced roots/forwarders/leaves.
//!
//! Usage: `fig5_scalability [--nodes 1000] [--trees 500] [--seed 1]`

use totoro::{masters_per_node, quantile, role_census};
use totoro_bench::report::{csv_block, f2, markdown_table, stats};
use totoro_bench::setups::{build_tree, echo_overlay, eua_topology, root_of, topic};
use totoro_simnet::{assign_zones, sub_rng, BinningConfig, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = totoro_bench::report::arg_usize(&args, "nodes", 1_000);
    let trees = totoro_bench::report::arg_usize(&args, "trees", 500) as u64;
    let seed = totoro_bench::report::arg_u64(&args, "seed", 1);

    println!("# Figure 5: scalability & load balance (n={n}, trees={trees}, seed={seed})");

    fig5a_zones(seed);
    let topics = fig5b_masters(n, trees, seed);
    fig5c_masters_per_zone(seed);
    fig5d_branches(seed);
    let _ = topics;
}

/// 5a: distributed binning of the EUA topology into edge zones.
fn fig5a_zones(seed: u64) {
    let topology = eua_topology(4_000, seed);
    let mut rng = sub_rng(seed, "binning");
    let config = BinningConfig {
        num_landmarks: 5,
        level_boundaries_us: vec![4_000, 12_000, 30_000],
        max_zones: 12,
    };
    let zones = assign_zones(&topology, &config, &mut rng);
    let diam = totoro_simnet::binning::zone_diameters_us(&topology, &zones, 128, &mut rng);
    let sizes = zones.zone_sizes();
    let rows: Vec<Vec<String>> = (0..zones.num_zones)
        .map(|z| {
            vec![
                z.to_string(),
                sizes[z].to_string(),
                f2(diam[z] as f64 / 1_000.0),
            ]
        })
        .collect();
    markdown_table(
        "Fig 5a: edge zones from distributed binning (EUA-shaped topology)",
        &["zone", "nodes", "diameter (ms RTT)"],
        &rows,
    );
    csv_block(
        "fig5a",
        &["zone", "nodes", "diameter_ms"],
        &rows,
    );
}

/// 5b: masters-per-node distribution for many trees on one zone.
fn fig5b_masters(n: usize, trees: u64, seed: u64) -> Vec<totoro_dht::Id> {
    let topology = eua_topology(n, seed + 1);
    let n = topology.len(); // Region rounding can add a few nodes.
    let mut sim = echo_overlay(topology, seed + 1, 16);
    let members: Vec<usize> = (0..n).collect();
    // Each tree gets a random subset of subscribers (64 each) — creating a
    // tree only requires joins, so this scales to 500 trees comfortably.
    let mut rng = sub_rng(seed, "tree-members");
    let mut topics = Vec::new();
    for k in 0..trees {
        let t = topic("fig5b", k);
        let subset: Vec<usize> = rand::seq::SliceRandom::choose_multiple(
            &members[..],
            &mut rng,
            64,
        )
        .copied()
        .collect();
        build_tree(&mut sim, t, &subset, SimTime::ZERO);
        topics.push(t);
    }
    sim.run_until(SimTime::from_micros(120 * 1_000_000));

    let masters = masters_per_node(&sim, &topics);
    let total: usize = masters.iter().sum();
    let at_most = |k: usize| masters.iter().filter(|&&m| m <= k).count() as f64 / n as f64;
    let rows = vec![
        vec!["trees rooted".into(), total.to_string()],
        vec!["max masters on one node".into(), masters.iter().max().unwrap().to_string()],
        vec!["p50 masters".into(), quantile(&masters, 0.5).to_string()],
        vec!["p99 masters".into(), quantile(&masters, 0.99).to_string()],
        vec!["frac nodes with <=3 masters".into(), f2(at_most(3) * 100.0) + "%"],
    ];
    markdown_table(
        &format!("Fig 5b: master distribution ({trees} trees on {n} nodes)"),
        &["metric", "value"],
        &rows,
    );
    // Histogram for the normal-probability plot.
    let max = *masters.iter().max().unwrap();
    let hist: Vec<Vec<String>> = (0..=max)
        .map(|k| {
            vec![
                k.to_string(),
                masters.iter().filter(|&&m| m == k).count().to_string(),
            ]
        })
        .collect();
    csv_block("fig5b_hist", &["masters_per_node", "num_nodes"], &hist);
    assert_eq!(total, trees as usize, "every tree must have exactly one root");
    println!(
        "\npaper check: 99.5% of nodes are roots of 3 trees or less -> measured {:.1}%",
        at_most(3) * 100.0
    );
    topics
}

/// 5c: masters per zone with workload proportional to zone density.
fn fig5c_masters_per_zone(seed: u64) {
    let topology = eua_topology(1_200, seed + 2);
    let mut rng = sub_rng(seed + 2, "binning");
    let zones = assign_zones(
        &topology,
        &BinningConfig {
            num_landmarks: 4,
            level_boundaries_us: vec![4_000, 12_000, 30_000],
            max_zones: 6,
        },
        &mut rng,
    );
    let mut sim = echo_overlay(topology, seed + 2, 16);

    // Dense zones submit proportionally more applications.
    let sizes = zones.zone_sizes();
    let mut topics_by_zone: Vec<Vec<totoro_dht::Id>> = vec![Vec::new(); zones.num_zones];
    let mut all_topics = Vec::new();
    let mut rng = sub_rng(seed + 2, "apps");
    for (z, &size) in sizes.iter().enumerate() {
        let apps = (size / 40).max(1);
        let members = zones.members(z as u16);
        for k in 0..apps {
            let t = topic(&format!("fig5c-z{z}"), k as u64);
            let subset: Vec<usize> = rand::seq::SliceRandom::choose_multiple(
                &members[..],
                &mut rng,
                members.len().min(32),
            )
            .copied()
            .collect();
            build_tree(&mut sim, t, &subset, SimTime::ZERO);
            topics_by_zone[z].push(t);
            all_topics.push(t);
        }
    }
    sim.run_until(SimTime::from_micros(120 * 1_000_000));

    let rows: Vec<Vec<String>> = (0..zones.num_zones)
        .map(|z| {
            // Count masters that landed on nodes of each zone.
            let masters_here: usize = all_topics
                .iter()
                .filter_map(|&t| root_of(&sim, t))
                .filter(|&root| zones.zone_of[root] == z as u16)
                .count();
            vec![
                z.to_string(),
                sizes[z].to_string(),
                topics_by_zone[z].len().to_string(),
                masters_here.to_string(),
            ]
        })
        .collect();
    markdown_table(
        "Fig 5c: masters scale with zone workload",
        &["zone", "nodes", "apps submitted", "masters hosted"],
        &rows,
    );
    csv_block("fig5c", &["zone", "nodes", "apps", "masters"], &rows);
}

/// 5d: branch distribution of 17 fanout-8 trees.
fn fig5d_branches(seed: u64) {
    let topology = eua_topology(1_946, seed + 3); // The paper's node count.
    let n = topology.len();
    let mut sim = echo_overlay(topology, seed + 3, 8);
    let mut rng = sub_rng(seed + 3, "members");
    let members: Vec<usize> = (0..n).collect();
    let mut topics = Vec::new();
    for k in 0..17 {
        let t = topic("fig5d", k);
        // Random membership sizes spread tree depths across levels 1-6.
        let size = [60, 120, 250, 500, 900][k as usize % 5];
        let subset: Vec<usize> =
            rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, size)
                .copied()
                .collect();
        build_tree(&mut sim, t, &subset, SimTime::ZERO);
        topics.push(t);
    }
    sim.run_until(SimTime::from_micros(180 * 1_000_000));

    let mut rows = Vec::new();
    let mut all_levels: Vec<Vec<usize>> = Vec::new();
    for (k, &t) in topics.iter().enumerate() {
        let levels = totoro::level_census(&sim, t);
        rows.push(vec![
            k.to_string(),
            levels.len().saturating_sub(1).to_string(),
            levels
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        ]);
        all_levels.push(levels);
    }
    markdown_table(
        "Fig 5d: per-level node counts of 17 fanout-8 trees",
        &["tree", "depth", "nodes per level (root..leaves)"],
        &rows,
    );
    csv_block(
        "fig5d",
        &["tree", "depth", "levels"],
        &rows,
    );

    // Load-balance check over interior load: how concentrated are
    // forwarder duties?
    let roles = role_census(&sim, &topics);
    let agg_loads: Vec<f64> = roles.iter().map(|r| r.aggregator as f64).collect();
    let s = stats(&agg_loads);
    println!(
        "\nforwarder load: mean {:.2}, sd {:.2}, max {:.0} across {n} nodes",
        s.mean, s.sd, s.max
    );
}
